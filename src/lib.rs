//! # TAHOMA — physical-representation-based predicate optimization
//!
//! A from-scratch Rust reproduction of *"Physical Representation-based
//! Predicate Optimization for a Visual Analytics Database"* (Anderson,
//! Cafarella, Ros, Wenisch — ICDE 2019).
//!
//! This facade crate re-exports the whole workspace so applications depend
//! on one crate:
//!
//! * [`imagery`] — images, physical representations, transforms, codecs,
//!   synthetic corpora;
//! * [`nn`] — the CNN substrate (training + inference + FLOPs);
//! * [`costmodel`] — deployment scenarios and cost profilers;
//! * [`zoo`] — the 360-model design space, surrogate and real trainers;
//! * [`core`] — thresholds, cascades, Pareto frontiers, ALC, selection,
//!   query processing (the paper's contribution);
//! * [`video`] — temporally coherent streams and difference detection;
//! * [`noscope`] — the NoScope-style baseline and TAHOMA+DD;
//! * [`serve`] — the concurrent query service (shared executor, plan
//!   cache, cross-query batch coalescing).
//!
//! ## Quickstart
//!
//! ```
//! use tahoma::prelude::*;
//!
//! // 1. Build the model repository for one predicate (surrogate-backed).
//! let pred = PredicateSpec::for_kind(ObjectKind::Fence);
//! let cfg = SurrogateBuildConfig {
//!     n_config: 150,
//!     n_eval: 200,
//!     seed: 7,
//!     variants: Some(paper_variants().into_iter().step_by(24).collect()),
//!     ..Default::default()
//! };
//! let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
//!
//! // 2. System initialization: thresholds, cascades, simulation.
//! let system = TahomaSystem::initialize_paper_main(repo);
//!
//! // 3. Query time: pick a cascade for the deployment scenario.
//! let profiler = AnalyticProfiler::paper_testbed(Scenario::Camera);
//! let chosen = system
//!     .select(&profiler, Constraints { max_accuracy_loss: Some(0.05), max_throughput_loss: None })
//!     .expect("a cascade satisfies the constraints");
//! assert!(chosen.throughput > 0.0);
//! ```

pub use tahoma_core as core;
pub use tahoma_costmodel as costmodel;
pub use tahoma_imagery as imagery;
pub use tahoma_mathx as mathx;
pub use tahoma_nn as nn;
pub use tahoma_noscope as noscope;
pub use tahoma_serve as serve;
pub use tahoma_video as video;
pub use tahoma_zoo as zoo;

/// The names an application typically needs.
pub mod prelude {
    pub use tahoma_core::pipeline::{Frontier, SelectedCascade, TahomaSystem};
    pub use tahoma_core::query::{Corpus, CorpusItem, ItemScorer, Query, QueryProcessor};
    pub use tahoma_core::selector::Constraints;
    pub use tahoma_core::{
        alc, build_cascades, pareto_frontier, BuilderConfig, Cascade, DecisionThresholds,
        ThresholdTable, PAPER_PRECISION_SETTINGS,
    };
    pub use tahoma_costmodel::{
        AnalyticProfiler, CostProfiler, DeviceProfile, MeasuredProfiler, Scenario, ScenarioCosts,
        StorageProfile,
    };
    pub use tahoma_imagery::{
        ColorMode, Dataset, DatasetBundle, DatasetSpec, Image, ObjectKind, Representation,
    };
    pub use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
    pub use tahoma_zoo::variant::paper_variants;
    pub use tahoma_zoo::{
        ArchSpec, ModelId, ModelKind, ModelRepository, ModelVariant, PredicateSpec, SurrogateScorer,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let pred = PredicateSpec::for_kind(ObjectKind::Acorn);
        assert_eq!(pred.kind.name(), "acorn");
        let rep = Representation::new(30, ColorMode::Gray);
        assert_eq!(rep.value_count(), 900);
        let dev = DeviceProfile::k80();
        assert!(dev.infer_fps(1_000_000, 900) > 1000.0);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of proptest's surface the workspace's property tests
//! use: the `proptest! { #![proptest_config(..)] #[test] fn t(x in strategy)
//! { .. } }` macro form, numeric-range strategies, tuple strategies,
//! `prop::collection::vec`, and `prop_assert!`/`prop_assert_eq!`. Cases are
//! generated from a deterministic per-test RNG (seeded by the test name), so
//! failures are reproducible run-to-run. There is no shrinking: a failing
//! case reports its case index and message and panics immediately.

use std::fmt;
use std::ops::Range;

/// Deterministic generator driving strategy sampling (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derive a per-test seed from the test's name.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, n). Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below() requires n > 0");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// A failed property assertion; carries the formatted message.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the case count is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy just samples.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u128;
                assert!(span > 0, "empty integer range strategy");
                let off = (rng.next_u64() as u128) % span;
                self.start + off as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Fixed-choice strategy over a cloned slice of values.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` with length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + if span == 0 { 0 } else { rng.below(span) };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Names imported by `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };

    /// Namespace mirror of proptest's `prop::` path.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Property assertion: evaluates to an early `Err(TestCaseError)` return on
/// failure (the enclosing generated closure returns `TestCaseResult`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality property assertion; the second form appends a formatted
/// context message, mirroring real proptest's API.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?}): {}",
            stringify!($left),
            stringify!($right),
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// The `proptest!` block macro: expands each `fn name(arg in strategy, ..)
/// { body }` into a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("{} failed at case {case}/{}: {e}", stringify!($name), config.cases);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0.25f64..0.75, n in 3u64..9, k in 1usize..4) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..4).contains(&k));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec((0.0f32..1.0, 1.0f64..2.0), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (a, b) in v {
                prop_assert!((0.0..1.0).contains(&a));
                prop_assert!((1.0..2.0).contains(&b));
                prop_assert_eq!(a.is_nan(), false);
            }
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

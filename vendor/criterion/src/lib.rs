//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot fetch crates.io, so this crate reimplements
//! the slice of criterion's API the workspace benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — over a plain wall-clock
//! measurement loop: a warm-up to estimate per-iteration time, then
//! `sample_size` samples sized to a target sample duration, reporting the
//! median (and throughput when configured). It prints results instead of
//! producing HTML reports; there is no statistical regression machinery.
//!
//! Two CLI extensions beyond real criterion's surface (both used by the CI
//! bench-trend pipeline):
//!
//! * `--json <path>` — write every measured result as a machine-readable
//!   JSON array (`[{"id": ..., "sec_per_iter": ..., "iters_per_sample":
//!   ...}]`) when the process finishes (`criterion_main!` calls
//!   [`finalize`]);
//! * a positional argument filters benchmarks by substring of their full
//!   `group/id` name, mirroring real criterion — non-matching benchmarks
//!   are skipped entirely (useful to run just `gemm_threads` on multi-core
//!   runners).

use std::fmt;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Per-sample target duration; samples run enough iterations to fill it.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);
/// Warm-up budget before measuring.
const WARMUP: Duration = Duration::from_millis(80);
/// Quick-mode (`--quick`, mirroring real criterion's flag) equivalents:
/// enough to smoke-test that every benchmark runs and produces a sane
/// number, nowhere near enough for stable medians.
const QUICK_TARGET_SAMPLE: Duration = Duration::from_millis(3);
const QUICK_WARMUP: Duration = Duration::from_millis(5);
const QUICK_SAMPLES: usize = 3;

/// Throughput annotation for a benchmark, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Measurement loop handle passed to benchmark closures.
pub struct Bencher {
    samples_wanted: usize,
    target_sample: Duration,
    warmup: Duration,
    /// Median seconds per iteration, filled by [`Bencher::iter`].
    sec_per_iter: Option<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(samples_wanted: usize, target_sample: Duration, warmup: Duration) -> Bencher {
        Bencher {
            samples_wanted,
            target_sample,
            warmup,
            sec_per_iter: None,
            iters_per_sample: 0,
        }
    }

    /// Measure a closure: warm up, choose an iteration count per sample,
    /// record `sample_size` samples, and keep the median.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 1 || (warm_start.elapsed() < self.warmup && warm_iters < 1_000_000) {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters =
            ((self.target_sample.as_secs_f64() / est.max(1e-9)) as u64).clamp(1, 10_000_000);

        let mut samples = Vec::with_capacity(self.samples_wanted);
        for _ in 0..self.samples_wanted {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.sec_per_iter = Some(samples[samples.len() / 2]);
        self.iters_per_sample = iters;
    }
}

/// Process-wide CLI configuration, parsed once. `--bench`/`--test` (and
/// any other flags cargo forwards) are ignored; the first non-flag
/// argument is the benchmark name filter.
struct CliConfig {
    quick: bool,
    json: Option<PathBuf>,
    filter: Option<String>,
}

fn cli_config() -> &'static CliConfig {
    static CONFIG: OnceLock<CliConfig> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let mut config = CliConfig {
            quick: false,
            json: None,
            filter: None,
        };
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => config.quick = true,
                "--json" => {
                    // The value must be a path, not another flag — a
                    // swallowed flag would both misconfigure the run and
                    // write a file literally named like the flag.
                    match args.peek() {
                        Some(v) if !v.starts_with('-') => {
                            config.json = args.next().map(PathBuf::from);
                        }
                        _ => eprintln!("warning: --json needs a path argument; ignoring"),
                    }
                }
                a if a.starts_with('-') => {}
                a => config.filter = Some(a.to_string()),
            }
        }
        config
    })
}

/// Whether the name filter (if any) lets this benchmark run.
fn filter_allows(full_id: &str) -> bool {
    cli_config()
        .filter
        .as_deref()
        .is_none_or(|f| full_id.contains(f))
}

/// One measured result, retained for the `--json` report.
struct RecordedResult {
    id: String,
    sec_per_iter: f64,
    iters_per_sample: u64,
}

fn recorded() -> &'static Mutex<Vec<RecordedResult>> {
    static RESULTS: OnceLock<Mutex<Vec<RecordedResult>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Write the `--json` report if one was requested. `criterion_main!` calls
/// this after every group has run; harmless to call with no results or no
/// `--json` flag.
pub fn finalize() {
    let Some(path) = cli_config().json.as_ref() else {
        return;
    };
    let results = recorded().lock().expect("results mutex");
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        // Benchmark ids are plain identifiers/slashes; escape the two JSON
        // specials anyway so a stray id cannot corrupt the file.
        let id = r.id.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "  {{\"id\": \"{id}\", \"sec_per_iter\": {:e}, \"iters_per_sample\": {}}}{}\n",
            r.sec_per_iter,
            r.iters_per_sample,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create json output directory");
        }
    }
    std::fs::write(path, out).expect("write json report");
}

fn format_time(sec: f64) -> String {
    if sec < 1e-6 {
        format!("{:.2} ns", sec * 1e9)
    } else if sec < 1e-3 {
        format!("{:.2} µs", sec * 1e6)
    } else if sec < 1.0 {
        format!("{:.2} ms", sec * 1e3)
    } else {
        format!("{sec:.3} s")
    }
}

fn report(group: Option<&str>, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let sec = b
        .sec_per_iter
        .unwrap_or_else(|| panic!("benchmark {full} never called Bencher::iter"));
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / sec),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.2} MiB/s", n as f64 / sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{full:<48} time: [{:>10}]{rate}   ({} iters/sample)",
        format_time(sec),
        b.iters_per_sample
    );
    recorded()
        .lock()
        .expect("results mutex")
        .push(RecordedResult {
            id: full,
            sec_per_iter: sec,
            iters_per_sample: b.iters_per_sample,
        });
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    target_sample: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            target_sample: TARGET_SAMPLE,
            warmup: WARMUP,
        }
    }
}

impl Criterion {
    /// Honor the CLI: `--quick` (smoke-mode measurement, as in real
    /// criterion: the CI bench job uses it so kernel regressions fail
    /// loudly without paying full measurement time), `--json <path>`
    /// (machine-readable report, written by [`finalize`]), and a
    /// positional benchmark-name filter; other arguments are ignored.
    pub fn configure_from_args(mut self) -> Criterion {
        if cli_config().quick {
            self.sample_size = QUICK_SAMPLES;
            self.target_sample = QUICK_TARGET_SAMPLE;
            self.warmup = QUICK_WARMUP;
        }
        self
    }

    /// Default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Run one standalone benchmark (skipped when a name filter excludes
    /// it).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        if !filter_allows(id) {
            return self;
        }
        let mut b = Bencher::new(self.sample_size, self.target_sample, self.warmup);
        f(&mut b);
        report(None, id, &b, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let (target_sample, warmup) = (self.target_sample, self.warmup);
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            target_sample,
            warmup,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    target_sample: Duration,
    warmup: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Throughput annotation applied to subsequently run benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group (skipped when a name filter excludes
    /// it).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        if !filter_allows(&format!("{}/{}", self.name, id.id)) {
            return self;
        }
        let mut b = Bencher::new(self.sample_size, self.target_sample, self.warmup);
        f(&mut b);
        report(Some(&self.name), &id.id, &b, self.throughput);
        self
    }

    /// Run one benchmark with an input value (skipped when a name filter
    /// excludes it).
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        if !filter_allows(&format!("{}/{}", self.name, id.id)) {
            return self;
        }
        let mut b = Bencher::new(self.sample_size, self.target_sample, self.warmup);
        f(&mut b, input);
        report(Some(&self.name), &id.id, &b, self.throughput);
        self
    }

    /// Close the group (separator line, mirroring criterion's summary).
    pub fn finish(self) {
        println!();
    }
}

/// Prevent the optimizer from eliding a value. Re-exported for parity with
/// criterion's own `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from benchmark groups. Finishes by writing the `--json`
/// report when one was requested.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(5), &5, |b, x| b.iter(|| x * 2));
        g.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with("s"));
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the call shape the workspace
//! uses (`scope(|s| { s.spawn(move |_| ...); })`), implemented on top of
//! `std::thread::scope` (stabilized long after crossbeam pioneered the
//! pattern). Differences from the real crate: a panic in an unjoined child
//! propagates as a panic out of `scope` rather than as an `Err`, which is
//! equivalent for callers that `.expect()` the result — as all callers here
//! do.

pub mod thread {
    use std::any::Any;

    /// Error type of [`scope`]: the payload of a panicked child thread.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle; spawned closures receive a copy of it (and may spawn
    /// further threads through it, though the workspace never does).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope itself,
        /// mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&me)),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_disjoint_chunks() {
        let mut data = vec![0u32; 64];
        super::thread::scope(|scope| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                scope.spawn(move |_| {
                    for v in chunk {
                        *v = i as u32;
                    }
                });
            }
        })
        .expect("threads do not panic");
        assert_eq!(data[0], 0);
        assert_eq!(data[63], 3);
    }

    #[test]
    fn join_returns_value() {
        let out = super::thread::scope(|scope| {
            let h = scope.spawn(|_| 21 * 2);
            h.join().expect("no panic")
        })
        .expect("scope ok");
        assert_eq!(out, 42);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! Only the two core traits are provided — enough for `tahoma_mathx::DetRng`
//! to keep its `rand`-compatible surface without pulling the real crate into
//! an offline build. No generators or distributions live here.

/// A source of random bits, matching `rand::RngCore`'s shape.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
        fn seed_from_u64(state: u64) -> Self {
            Counter(state)
        }
    }

    #[test]
    fn traits_are_implementable() {
        let mut c = Counter::seed_from_u64(41);
        assert_eq!(c.next_u64(), 42);
        let mut buf = [0u8; 3];
        Counter::from_seed([0; 8]).fill_bytes(&mut buf);
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(Counter::seed_from_u64(0).next_u32(), 1);
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of the `bytes` API it actually uses: [`BytesMut`] as a growable
//! write buffer, [`Bytes`] as a cheaply clonable frozen buffer, [`Buf`] as a
//! little-endian cursor over `&[u8]`, and [`BufMut`] for the `put_*` writers.
//! Semantics match the real crate for this subset; nothing else is provided.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer (`Arc<[u8]>` under the hood).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying more than once.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian read cursor. Implemented for `&[u8]`, which advances in
/// place exactly like the real crate's blanket impl.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Read a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Little-endian writers over a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

// The real crate provides this blanket-style impl too; the segment store
// frames records into a reusable `Vec<u8>` scratch through it.
impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(b"HDR!");
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_f32_le(1.5);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(&r[..4], b"HDR!");
        r.advance(4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clones_share_storage() {
        let b: Bytes = vec![1u8, 2, 3].into();
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}

//! One-shot kernel-tier calibration: microbenchmark every SIMD tier of
//! every op class on this CPU, print the measured table, and show the
//! policy a serving process would install (and could save to disk for
//! `TAHOMA_KERNEL_POLICY=@path` forcing).
//!
//! ```text
//! cargo run --release --example kernel_calibration
//! ```

fn main() {
    let cal = tahoma_costmodel::kernels::calibrate();
    print!("{}", cal.table());
    println!("\nwinning policy (serialize/save for TAHOMA_KERNEL_POLICY=@path):");
    print!("{}", cal.policy.serialize());
}

//! Retrospective analytics over an archived traffic-camera corpus — the
//! ARCHIVE deployment scenario plus the SQL query layer (paper §III, §IV).
//!
//! Story: a fleet engineer wants historical frames from Detroit showing a
//! fence (a stand-in for the paper's "delivery van with a unique logo"
//! investigation). Frames are stored compressed on SSD, so every classified
//! image pays load + decode before any representation can be built.
//!
//! ```text
//! cargo run --release --example traffic_archive
//! ```

use std::collections::BTreeMap;
use tahoma::core::evaluator::CostContext;
use tahoma::core::query::SurrogateItemScorer;
use tahoma::prelude::*;

fn main() {
    let kind = ObjectKind::Fence;
    let pred = PredicateSpec::for_kind(kind);
    let cfg = SurrogateBuildConfig {
        n_config: 400,
        n_eval: 600,
        seed: 1207,
        variants: Some(paper_variants().into_iter().step_by(4).collect()),
        ..Default::default()
    };
    let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
    let scorer = SurrogateScorer {
        pred,
        params: cfg.params,
        seed: cfg.seed,
    };
    let system = TahomaSystem::initialize_paper_main(repo);

    // The archived corpus: 20k frames across four cities.
    let corpus = Corpus::synthetic(20_000, 0.22, 99);
    println!("corpus: {} archived frames", corpus.len());

    // Parse the analyst's query.
    let sql = "SELECT * FROM frames WHERE contains_object(fence) \
               AND location = 'Detroit' AND camera < 6";
    let query = Query::parse(sql).expect("query parses");
    println!("query: {sql}");
    println!(
        "plan: {} metadata predicate(s) first, then contains_object({}) via cascade\n",
        query.metadata.len(),
        kind
    );

    // Scenario-aware selection under ARCHIVE at a 5% accuracy budget.
    let archive = AnalyticProfiler::paper_testbed(Scenario::Archive);
    let aware = system
        .select(
            &archive,
            Constraints {
                max_accuracy_loss: Some(0.05),
                max_throughput_loss: None,
            },
        )
        .expect("feasible");

    // What a scenario-oblivious planner (INFER-ONLY habits) would have run.
    let infer_only = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
    let oblivious = system
        .select(
            &infer_only,
            Constraints {
                max_accuracy_loss: Some(0.05),
                max_throughput_loss: None,
            },
        )
        .expect("feasible");

    let cost = CostContext::build(&system.repo, &archive);
    let processor = QueryProcessor::new(&system.repo, &system.thresholds, &cost);
    let item_scorer = SurrogateItemScorer {
        scorer: &scorer,
        repo: &system.repo,
    };

    for (label, cascade) in [
        ("scenario-AWARE", aware.cascade),
        ("oblivious", oblivious.cascade),
    ] {
        let mut cascades = BTreeMap::new();
        cascades.insert(kind, cascade);
        let result = processor
            .execute(&query, &corpus, &cascades, &item_scorer)
            .expect("query executes");
        let rel = &result.relations[0];
        println!("{label} cascade: {}", system.describe(&cascade));
        println!(
            "  classified {} Detroit frames in {:.2} simulated s  ({:.1} fps)",
            result.metadata_survivors, rel.simulated_time_s, rel.throughput_fps
        );
        println!(
            "  matches: {}   relation accuracy vs ground truth: {:.3}",
            result.matched_ids.len(),
            rel.accuracy
        );
        println!(
            "  per-level decisions: {:?}\n",
            &rel.level_histogram[..cascade.depth()]
        );
    }

    println!(
        "Under ARCHIVE the full-frame load+decode (~{:.1} ms/frame) dominates;\n\
         scenario awareness narrows but never flips the ordering (Table III's point).",
        archive.per_image_fixed_s() * 1e3
    );
}

//! Mini SQL console over a synthetic visual corpus (paper §IV: content-based
//! queries decompose into metadata predicates plus binary content
//! predicates).
//!
//! ```text
//! cargo run --release --example sql_console
//! cargo run --release --example sql_console -- \
//!     "SELECT * FROM frames WHERE contains_object(scorpion) AND camera < 3"
//! ```

use std::collections::BTreeMap;
use tahoma::core::evaluator::CostContext;
use tahoma::core::query::SurrogateItemScorer;
use tahoma::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries: Vec<String> = if args.is_empty() {
        vec![
            "SELECT * FROM frames WHERE contains_object(fence)".to_string(),
            "SELECT * FROM frames WHERE contains_object(fence) AND location = 'Detroit'"
                .to_string(),
            "SELECT * FROM frames WHERE contains_object(komondor) AND \
             contains_object(fence) AND timestamp >= 1700100000"
                .to_string(),
        ]
    } else {
        args
    };

    // One corpus, one scenario, one initialized system per queried category.
    let corpus = Corpus::synthetic(8_000, 0.25, 5);
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    println!("corpus: {} frames | scenario: ONGOING\n", corpus.len());

    // Cache initialized systems per predicate kind.
    let mut systems: BTreeMap<ObjectKind, (tahoma::core::pipeline::TahomaSystem, SurrogateScorer)> =
        BTreeMap::new();

    for sql in &queries {
        println!("tahoma> {sql}");
        let query = match Query::parse(sql) {
            Ok(q) => q,
            Err(e) => {
                println!("  error: {e}\n");
                continue;
            }
        };
        // Initialize a system per content predicate on demand.
        for &kind in &query.content {
            systems.entry(kind).or_insert_with(|| {
                let pred = PredicateSpec::for_kind(kind);
                let cfg = SurrogateBuildConfig {
                    n_config: 300,
                    n_eval: 400,
                    seed: 31 ^ kind.index() as u64,
                    variants: Some(paper_variants().into_iter().step_by(8).collect()),
                    ..Default::default()
                };
                let scorer = SurrogateScorer {
                    pred,
                    params: cfg.params,
                    seed: cfg.seed,
                };
                let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
                (
                    tahoma::core::pipeline::TahomaSystem::initialize_paper_main(repo),
                    scorer,
                )
            });
        }
        if query.content.is_empty() {
            let survivors = corpus
                .items
                .iter()
                .filter(|i| query.metadata.iter().all(|p| p.holds(i)))
                .count();
            println!("  {survivors} rows (metadata only)\n");
            continue;
        }
        // Execute each content predicate with its own selected cascade.
        // (Multi-predicate planning in concert is the paper's future work;
        // we run them independently and intersect, as §IV describes.)
        let mut matched: Option<Vec<u64>> = None;
        let mut survivors = 0usize;
        for &kind in &query.content {
            let (system, scorer) = &systems[&kind];
            let chosen = system
                .select(
                    &profiler,
                    Constraints {
                        max_accuracy_loss: Some(0.02),
                        max_throughput_loss: None,
                    },
                )
                .expect("feasible cascade");
            let cost = CostContext::build(&system.repo, &profiler);
            let processor = QueryProcessor::new(&system.repo, &system.thresholds, &cost);
            let single = Query {
                table: query.table.clone(),
                metadata: query.metadata.clone(),
                content: vec![kind],
            };
            let mut cascades = BTreeMap::new();
            cascades.insert(kind, chosen.cascade);
            let scorer = SurrogateItemScorer {
                scorer,
                repo: &system.repo,
            };
            let result = processor
                .execute(&single, &corpus, &cascades, &scorer)
                .expect("query executes");
            survivors = result.metadata_survivors;
            let rel = &result.relations[0];
            println!(
                "  contains_object({kind}): cascade [{}] -> {:.0} fps, relation accuracy {:.3}",
                chosen.description, rel.throughput_fps, rel.accuracy
            );
            matched = Some(match matched {
                None => result.matched_ids,
                Some(prev) => {
                    let set: std::collections::HashSet<u64> =
                        result.matched_ids.into_iter().collect();
                    prev.into_iter().filter(|id| set.contains(id)).collect()
                }
            });
        }
        let matched = matched.unwrap_or_default();
        println!(
            "  {} rows match (of {survivors} after metadata filter); first ids: {:?}\n",
            matched.len(),
            &matched[..matched.len().min(8)]
        );
    }
}

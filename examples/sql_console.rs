//! Mini SQL console over a synthetic visual corpus (paper §IV: content-based
//! queries decompose into metadata predicates plus binary content
//! predicates).
//!
//! ```text
//! cargo run --release --example sql_console
//! cargo run --release --example sql_console -- \
//!     "SELECT * FROM frames WHERE contains_object(scorpion) AND camera < 3"
//! ```
//!
//! With `--connect`, the console becomes a client for a running
//! `tahoma-serve` instance instead of executing locally — and doubles as a
//! small load-test tool (the CI smoke job drives it this way):
//!
//! ```text
//! cargo run --release --example sql_console -- --connect 127.0.0.1:7343 \
//!     --clients 4 --repeat 8 [--shutdown] [SQL...]
//! ```
//!
//! Every (client, repeat) response for the same SQL must be identical
//! (modulo the `plan=hit|miss` field); any divergence exits non-zero.
//!
//! With `--stream`, the client registers the SQL as a *standing*
//! continuous query over a live stream and drives its sliding window
//! tick by tick (the CI stream-smoke job's path):
//!
//! ```text
//! cargo run --release --example sql_console -- --connect 127.0.0.1:7343 \
//!     --stream coral --range 32 --step 8 --ticks 6 [--shutdown] [SQL]
//! ```
//!
//! The client reconstructs the matched set purely from the per-tick
//! `added`/`removed` deltas and checks its FNV hash against the server's
//! `sum=` on every tick; the final `DELTAS` must report `agree=yes` (the
//! server's own incremental-vs-rescan check) and the same hash. Any
//! mismatch exits non-zero.

use std::collections::BTreeMap;
use tahoma::core::evaluator::CostContext;
use tahoma::core::query::SurrogateItemScorer;
use tahoma::prelude::*;

fn default_queries() -> Vec<String> {
    vec![
        "SELECT * FROM frames WHERE contains_object(fence)".to_string(),
        "SELECT * FROM frames WHERE contains_object(fence) AND location = 'Detroit'".to_string(),
        "SELECT * FROM frames WHERE contains_object(komondor) AND \
         contains_object(fence) AND timestamp >= 1700100000"
            .to_string(),
    ]
}

/// Client mode: speak the tahoma-serve line protocol over TCP.
mod client {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Instant;

    pub struct Options {
        pub addr: String,
        pub clients: usize,
        pub repeat: usize,
        pub shutdown: bool,
        pub queries: Vec<String>,
        /// When set, register the first query as a standing continuous
        /// query over this stream instead of running ad-hoc queries.
        pub stream: Option<String>,
        pub range: u64,
        pub step: u64,
        pub ticks: u64,
    }

    /// One request line, with bounded retry on admission-control `BUSY`.
    fn ask(addr: &str, line: &str) -> Result<String, String> {
        for attempt in 0..32 {
            let mut conn = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
            conn.write_all(format!("{line}\n").as_bytes())
                .map_err(|e| format!("send: {e}"))?;
            let mut resp = String::new();
            BufReader::new(&mut conn)
                .read_line(&mut resp)
                .map_err(|e| format!("recv: {e}"))?;
            let resp = resp.trim_end().to_string();
            if resp == "BUSY" {
                // Shed at admission; back off briefly and retry.
                std::thread::sleep(std::time::Duration::from_millis(2 << attempt.min(5)));
                continue;
            }
            return Ok(resp);
        }
        Err("server still BUSY after 32 attempts".to_string())
    }

    /// Extract a `key=value` field from a response line.
    fn field<'a>(resp: &'a str, key: &str) -> Result<&'a str, String> {
        let prefix = format!("{key}=");
        resp.split_whitespace()
            .find_map(|tok| tok.strip_prefix(prefix.as_str()))
            .ok_or_else(|| format!("missing {key}= in: {resp}"))
    }

    fn id_list(spec: &str) -> Result<Vec<u64>, String> {
        if spec == "-" {
            return Ok(Vec::new());
        }
        spec.split(',')
            .map(|s| s.parse().map_err(|_| format!("bad id '{s}'")))
            .collect()
    }

    /// Standing-query mode: REGISTER, then drive `ticks` window slides,
    /// reconstructing the matched set from the wire deltas alone and
    /// verifying it against the server's hash at every step.
    pub fn run_stream(opts: &Options, stream: &str) -> Result<(), String> {
        let ping = ask(&opts.addr, "PING")?;
        if ping != "PONG" {
            return Err(format!("unexpected PING response: {ping}"));
        }
        let sql = opts
            .queries
            .first()
            .ok_or("standing mode needs one SQL query")?;
        let resp = ask(
            &opts.addr,
            &format!(
                "REGISTER {stream} RANGE {} STEP {} {sql}",
                opts.range, opts.step
            ),
        )?;
        if !resp.starts_with("OK ") {
            return Err(format!("REGISTER failed: {resp}"));
        }
        let qid: u64 = field(&resp, "qid")?
            .parse()
            .map_err(|e| format!("bad qid: {e}"))?;
        println!("{resp}");
        let mut rebuilt: Vec<u64> = Vec::new();
        for t in 1..=opts.ticks {
            let resp = ask(&opts.addr, &format!("TICK {qid}"))?;
            if !resp.starts_with("OK ") {
                return Err(format!("TICK {t} failed: {resp}"));
            }
            let removed = id_list(field(&resp, "removed")?)?;
            let added = id_list(field(&resp, "added")?)?;
            rebuilt.retain(|id| !removed.contains(id));
            rebuilt.extend(&added);
            let sum = u64::from_str_radix(field(&resp, "sum")?, 16)
                .map_err(|e| format!("bad sum: {e}"))?;
            let local = tahoma::serve::protocol::fnv1a64(&rebuilt);
            if local != sum {
                return Err(format!(
                    "tick {t}: delta replay hash {local:016x} != server sum {sum:016x}\n  {resp}"
                ));
            }
            println!("{resp}");
        }
        let status = ask(&opts.addr, &format!("DELTAS {qid}"))?;
        if !status.starts_with("OK ") {
            return Err(format!("DELTAS failed: {status}"));
        }
        println!("{status}");
        if field(&status, "agree")? != "yes" {
            return Err(format!("server incremental != rescan: {status}"));
        }
        let sum =
            u64::from_str_radix(field(&status, "sum")?, 16).map_err(|e| format!("bad sum: {e}"))?;
        let local = tahoma::serve::protocol::fnv1a64(&rebuilt);
        if local != sum {
            return Err(format!(
                "final delta replay hash {local:016x} != server sum {sum:016x}"
            ));
        }
        println!(
            "delta replay verified: {} matched ids reconstructed over {} ticks",
            rebuilt.len(),
            opts.ticks
        );
        if opts.shutdown {
            let bye = ask(&opts.addr, "SHUTDOWN")?;
            if bye != "BYE" {
                return Err(format!("unexpected SHUTDOWN response: {bye}"));
            }
            println!("server shut down");
        }
        Ok(())
    }

    pub fn run(opts: &Options) -> Result<(), String> {
        if let Some(stream) = &opts.stream {
            return run_stream(opts, &stream.clone());
        }
        let ping = ask(&opts.addr, "PING")?;
        if ping != "PONG" {
            return Err(format!("unexpected PING response: {ping}"));
        }
        for sql in &opts.queries {
            // `clients` threads each issue the query `repeat` times over
            // their own connections, concurrently.
            let request = format!("QUERY {sql}");
            let mut all: Vec<(String, f64)> = Vec::new();
            let results: Vec<Result<Vec<(String, f64)>, String>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..opts.clients)
                    .map(|_| {
                        let request = &request;
                        scope.spawn(move || {
                            let mut mine = Vec::new();
                            for _ in 0..opts.repeat {
                                let t = Instant::now();
                                let resp = ask(&opts.addr, request)?;
                                mine.push((resp, t.elapsed().as_secs_f64()));
                            }
                            Ok(mine)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for r in results {
                all.extend(r?);
            }
            // All responses must agree modulo the plan=hit|miss field.
            let canon = |s: &str| s.replace("plan=miss", "plan=hit");
            let first = &all[0].0;
            if !first.starts_with("OK ") {
                return Err(format!("query failed: {first}"));
            }
            if let Some((bad, _)) = all.iter().find(|(r, _)| canon(r) != canon(first)) {
                return Err(format!(
                    "responses diverged for {sql:?}:\n  {first}\n  {bad}"
                ));
            }
            let mut lat: Vec<f64> = all.iter().map(|&(_, s)| s).collect();
            lat.sort_by(f64::total_cmp);
            let q = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize] * 1e3;
            println!(
                "{} x{}: {}  (p50 {:.2} ms, p95 {:.2} ms)",
                sql,
                all.len(),
                first,
                q(0.50),
                q(0.95)
            );
        }
        let stats = ask(&opts.addr, "STATS")?;
        println!("{stats}");
        if opts.shutdown {
            let bye = ask(&opts.addr, "SHUTDOWN")?;
            if bye != "BYE" {
                return Err(format!("unexpected SHUTDOWN response: {bye}"));
            }
            println!("server shut down");
        }
        Ok(())
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Client mode: --connect ADDR [--clients N] [--repeat R] [--shutdown].
    if args.first().map(String::as_str) == Some("--connect") {
        let mut opts = client::Options {
            addr: String::new(),
            clients: 1,
            repeat: 1,
            shutdown: false,
            queries: Vec::new(),
            stream: None,
            range: 32,
            step: 8,
            ticks: 6,
        };
        let mut it = args.into_iter().skip(1);
        opts.addr = it.next().unwrap_or_else(|| {
            eprintln!("--connect needs HOST:PORT");
            std::process::exit(2);
        });
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--clients" => opts.clients = it.next().and_then(|v| v.parse().ok()).unwrap_or(1),
                "--repeat" => opts.repeat = it.next().and_then(|v| v.parse().ok()).unwrap_or(1),
                "--stream" => opts.stream = it.next(),
                "--range" => opts.range = it.next().and_then(|v| v.parse().ok()).unwrap_or(32),
                "--step" => opts.step = it.next().and_then(|v| v.parse().ok()).unwrap_or(8),
                "--ticks" => opts.ticks = it.next().and_then(|v| v.parse().ok()).unwrap_or(6),
                "--shutdown" => opts.shutdown = true,
                _ => opts.queries.push(arg),
            }
        }
        if opts.queries.is_empty() {
            opts.queries = default_queries();
        }
        if let Err(e) = client::run(&opts) {
            eprintln!("client error: {e}");
            std::process::exit(1);
        }
        return;
    }

    let queries: Vec<String> = if args.is_empty() {
        default_queries()
    } else {
        args
    };

    // One corpus, one scenario, one initialized system per queried category.
    let corpus = Corpus::synthetic(8_000, 0.25, 5);
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    println!("corpus: {} frames | scenario: ONGOING\n", corpus.len());

    // Cache initialized systems per predicate kind.
    let mut systems: BTreeMap<ObjectKind, (tahoma::core::pipeline::TahomaSystem, SurrogateScorer)> =
        BTreeMap::new();

    for sql in &queries {
        println!("tahoma> {sql}");
        let query = match Query::parse(sql) {
            Ok(q) => q,
            Err(e) => {
                println!("  error: {e}\n");
                continue;
            }
        };
        // Initialize a system per content predicate on demand.
        for &kind in &query.content {
            systems.entry(kind).or_insert_with(|| {
                let pred = PredicateSpec::for_kind(kind);
                let cfg = SurrogateBuildConfig {
                    n_config: 300,
                    n_eval: 400,
                    seed: 31 ^ kind.index() as u64,
                    variants: Some(paper_variants().into_iter().step_by(8).collect()),
                    ..Default::default()
                };
                let scorer = SurrogateScorer {
                    pred,
                    params: cfg.params,
                    seed: cfg.seed,
                };
                let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
                (
                    tahoma::core::pipeline::TahomaSystem::initialize_paper_main(repo),
                    scorer,
                )
            });
        }
        if query.content.is_empty() {
            let survivors = corpus
                .items
                .iter()
                .filter(|i| query.metadata.iter().all(|p| p.holds(i)))
                .count();
            println!("  {survivors} rows (metadata only)\n");
            continue;
        }
        // Execute each content predicate with its own selected cascade.
        // (Multi-predicate planning in concert is the paper's future work;
        // we run them independently and intersect, as §IV describes.)
        let mut matched: Option<Vec<u64>> = None;
        let mut survivors = 0usize;
        for &kind in &query.content {
            let (system, scorer) = &systems[&kind];
            let chosen = system
                .select(
                    &profiler,
                    Constraints {
                        max_accuracy_loss: Some(0.02),
                        max_throughput_loss: None,
                    },
                )
                .expect("feasible cascade");
            let cost = CostContext::build(&system.repo, &profiler);
            let processor = QueryProcessor::new(&system.repo, &system.thresholds, &cost);
            let single = Query {
                table: query.table.clone(),
                metadata: query.metadata.clone(),
                content: vec![kind],
            };
            let mut cascades = BTreeMap::new();
            cascades.insert(kind, chosen.cascade);
            let scorer = SurrogateItemScorer {
                scorer,
                repo: &system.repo,
            };
            let result = processor
                .execute(&single, &corpus, &cascades, &scorer)
                .expect("query executes");
            survivors = result.metadata_survivors;
            let rel = &result.relations[0];
            println!(
                "  contains_object({kind}): cascade [{}] -> {:.0} fps, relation accuracy {:.3}",
                chosen.description, rel.throughput_fps, rel.accuracy
            );
            matched = Some(match matched {
                None => result.matched_ids,
                Some(prev) => {
                    let set: std::collections::HashSet<u64> =
                        result.matched_ids.into_iter().collect();
                    prev.into_iter().filter(|id| set.contains(id)).collect()
                }
            });
        }
        let matched = matched.unwrap_or_default();
        println!(
            "  {} rows match (of {survivors} after metadata filter); first ids: {:?}\n",
            matched.len(),
            &matched[..matched.len().min(8)]
        );
    }
}

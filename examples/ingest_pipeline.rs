//! Ingest-time materialization pipeline — the paper's §III ONGOING scenario
//! and §V-A RDBMS-integration sketch, end to end:
//!
//! 1. frames are ingested: the representation store materializes the small
//!    physical representations models will want (real bytes, real codec);
//! 2. a database-style trigger classifies each new frame eagerly with a
//!    slow, accurate cascade, pre-materializing the predicate relation;
//! 3. a later multi-predicate query orders its predicates by
//!    cost-per-rejection (§IV future work) and is served almost entirely
//!    from the materialized store.
//!
//! ```text
//! cargo run --release --example ingest_pipeline
//! ```

use tahoma::core::evaluator::CostContext;
use tahoma::core::materialized::{read_through, IngestTrigger, MaterializedStore};
use tahoma::core::planner::{expected_conjunction_cost_s, order_predicates, PlannedPredicate};
use tahoma::core::query::{CorpusItem, SurrogateItemScorer};
use tahoma::imagery::{RepresentationStore, SceneParams, SceneRenderer};
use tahoma::prelude::*;

fn main() {
    // --- 1. Representation store: materialize small reps at ingest -------
    let reps = vec![
        Representation::new(30, ColorMode::Gray),
        Representation::new(60, ColorMode::Rgb),
    ];
    let rep_store = RepresentationStore::new(reps);
    let renderer = SceneRenderer::new(ObjectKind::Fence, SceneParams::default(), 99);
    for id in 0..24 {
        let (frame, _) = renderer.render(id, id % 3 == 0);
        rep_store.ingest(id, &frame).expect("ingest succeeds");
    }
    println!(
        "representation store: {} frames x {} reps = {} KB total \
         ({:.2}x one compressed full frame per frame)",
        rep_store.frames(),
        rep_store.representations().len(),
        rep_store.total_bytes() / 1024,
        rep_store.amplification_vs(60_000),
    );

    // --- 2. Trigger-based predicate materialization ----------------------
    let pred = PredicateSpec::for_kind(ObjectKind::Fence);
    let cfg = SurrogateBuildConfig {
        n_config: 300,
        n_eval: 400,
        seed: 404,
        variants: Some(paper_variants().into_iter().step_by(8).collect()),
        ..Default::default()
    };
    let scorer = SurrogateScorer {
        pred,
        params: cfg.params,
        seed: cfg.seed,
    };
    let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
    let system = tahoma::core::pipeline::TahomaSystem::initialize_paper_main(repo);
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    let cost = CostContext::build(&system.repo, &profiler);
    let item_scorer = SurrogateItemScorer {
        scorer: &scorer,
        repo: &system.repo,
    };

    // The trigger can afford a slower, more accurate cascade than query
    // time would pick (§V-A).
    let accurate = system
        .select(
            &profiler,
            Constraints {
                max_accuracy_loss: Some(0.0),
                max_throughput_loss: None,
            },
        )
        .expect("feasible");
    println!(
        "\ntrigger cascade ({}): {:.0} fps @ accuracy {:.3}",
        accurate.description, accurate.throughput, accurate.accuracy
    );

    let corpus = Corpus::synthetic(5000, 0.25, 42);
    let mut mat_store = MaterializedStore::new();
    let mut trigger = IngestTrigger::new(
        &system.repo,
        &system.thresholds,
        &cost,
        ObjectKind::Fence,
        accurate.cascade,
    );
    for item in &corpus.items {
        trigger.on_insert(&mut mat_store, &item_scorer, item);
    }
    let (n, t) = trigger.stats();
    println!("trigger materialized {n} rows in {t:.1} simulated s (amortized at ingest)");

    // --- 3. Query time: served from the store ----------------------------
    let items: Vec<&CorpusItem> = corpus.items.iter().collect();
    let fast = system
        .select(
            &profiler,
            Constraints {
                max_accuracy_loss: Some(0.05),
                max_throughput_loss: None,
            },
        )
        .expect("feasible");
    let (rows, query_time) = read_through(
        &mut mat_store,
        &system.repo,
        &system.thresholds,
        &cost,
        ObjectKind::Fence,
        &fast.cascade,
        &item_scorer,
        &items,
    );
    let positives = rows.iter().filter(|r| r.value).count();
    println!(
        "query over {} frames: {positives} positives, {query_time:.3} simulated s \
         (all rows pre-materialized)",
        items.len()
    );

    // --- 4. Multi-predicate ordering (§IV future work) -------------------
    // Three predicates with different costs and selectivities; the planner
    // runs cheap, selective ones first.
    let plans = vec![
        PlannedPredicate {
            kind: ObjectKind::Fence,
            cascade: fast.cascade,
            expected_cost_s: 1.0 / fast.throughput,
            selectivity: positives as f64 / items.len() as f64,
        },
        PlannedPredicate {
            kind: ObjectKind::Komondor,
            cascade: accurate.cascade,
            expected_cost_s: 1.0 / accurate.throughput,
            selectivity: 0.25,
        },
        PlannedPredicate {
            kind: ObjectKind::Wallet,
            cascade: fast.cascade,
            expected_cost_s: 2.0 / fast.throughput,
            selectivity: 0.9, // rejects little: should run last
        },
    ];
    let naive_cost = expected_conjunction_cost_s(&plans);
    let ordered = order_predicates(plans);
    let planned_cost = expected_conjunction_cost_s(&ordered);
    println!("\nconjunctive plan order:");
    for p in &ordered {
        println!(
            "  contains_object({}) — {:.2} ms/item, selectivity {:.2}",
            p.kind,
            p.expected_cost_s * 1e3,
            p.selectivity
        );
    }
    println!(
        "expected per-item cost: {:.3} ms ordered vs {:.3} ms naive ({:.0}% saved)",
        planned_cost * 1e3,
        naive_cost * 1e3,
        (1.0 - planned_cost / naive_cost) * 100.0
    );
}

//! Quickstart: initialize TAHOMA for one predicate, inspect the
//! accuracy/throughput frontier under two deployment scenarios, and select
//! cascades under user constraints.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tahoma::prelude::*;

fn main() {
    // --- System initialization (paper Fig. 2, left half) ----------------
    // A surrogate-backed repository: 90 of the paper's 360 models to keep
    // this example under a second. See `train_tiny_cnn` for the real
    // training path.
    let pred = PredicateSpec::for_kind(ObjectKind::Fence);
    let cfg = SurrogateBuildConfig {
        n_config: 400,
        n_eval: 600,
        seed: 42,
        variants: Some(paper_variants().into_iter().step_by(4).collect()),
        ..Default::default()
    };
    let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
    println!(
        "repository: {} models for contains_object({})",
        repo.len(),
        pred.kind
    );

    let system = TahomaSystem::initialize_paper_main(repo);
    println!("cascade set: {} cascades simulated\n", system.n_cascades());

    // --- Query time: scenario-aware frontiers ---------------------------
    for scenario in [Scenario::InferOnly, Scenario::Camera] {
        let profiler = AnalyticProfiler::paper_testbed(scenario);
        let frontier = system.frontier(&profiler);
        println!(
            "{scenario}: {} Pareto-optimal cascades",
            frontier.points.len()
        );
        for p in frontier.points.iter().take(3) {
            println!(
                "  {:>9.1} fps @ accuracy {:.3}   {}",
                p.throughput,
                p.accuracy,
                system.describe(&system.outcomes.cascades[p.idx])
            );
        }
        println!("  ...");
    }

    // --- Constraint-driven selection (U_acc from §V-A) ------------------
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Camera);
    for loss in [0.0, 0.05, 0.10] {
        let chosen = system
            .select(
                &profiler,
                Constraints {
                    max_accuracy_loss: Some(loss),
                    max_throughput_loss: None,
                },
            )
            .expect("feasible");
        println!(
            "\nU_acc = {:>4.0}% loss -> {:>8.1} fps @ accuracy {:.3}\n  plan: {}",
            loss * 100.0,
            chosen.throughput,
            chosen.accuracy,
            chosen.description
        );
    }

    // --- Versus the expensive reference ---------------------------------
    let resnet = system.repo.resnet.expect("resnet present");
    let resnet_acc = system.repo.eval_accuracy(resnet);
    let resnet_fps = 1.0 / system.repo.entry(resnet).infer_s;
    let matched = system
        .select_matching_model(
            &AnalyticProfiler::paper_testbed(Scenario::InferOnly),
            resnet,
        )
        .expect("feasible");
    println!(
        "\nResNet50 alone: {resnet_fps:.1} fps @ accuracy {resnet_acc:.3}\n\
         TAHOMA at >= that accuracy (INFER-ONLY): {:.0} fps ({:.0}x)\n  plan: {}",
        matched.throughput,
        matched.throughput / resnet_fps,
        matched.description
    );
}

//! The real training path, end to end: render a synthetic dataset, train an
//! actual mini-zoo of CNNs with `tahoma-nn`, and run the *same* TAHOMA
//! optimizer (thresholds, cascades, Pareto, selection) over the really
//! trained models — no surrogate anywhere.
//!
//! This is the scaled-down honest counterpart of the paper-scale surrogate
//! experiments (DESIGN.md §2.4): it demonstrates that the qualitative
//! structure the surrogate encodes (deeper nets and richer inputs score
//! higher; thresholds carve out high-precision regions; cascades beat
//! single models) emerges from real gradient descent.
//!
//! ```text
//! cargo run --release --example train_tiny_cnn
//! ```

use tahoma::prelude::*;
use tahoma::zoo::trainer::{build_real_repository, RealTrainConfig};
use tahoma::zoo::variant::cross_variants;

fn main() {
    // 1. Render a labeled dataset: 32x32 scenes with planted pinwheels.
    let spec = DatasetSpec {
        n_train: 240,
        n_config: 120,
        n_eval: 120,
        ..DatasetSpec::tiny(ObjectKind::Pinwheel, 32, 7)
    };
    let bundle = spec.generate();
    println!("dataset: {bundle}");

    // 2. A mini design space: 2 architectures x 3 representations.
    let archs = [
        ArchSpec {
            conv_layers: 1,
            conv_nodes: 4,
            dense_nodes: 8,
        },
        ArchSpec {
            conv_layers: 2,
            conv_nodes: 8,
            dense_nodes: 16,
        },
    ];
    let reps = [
        Representation::new(12, ColorMode::Gray),
        Representation::new(16, ColorMode::Rgb),
        Representation::new(32, ColorMode::Rgb),
    ];
    let variants = cross_variants(&archs, &reps);
    println!("training {} real CNNs with tahoma-nn ...", variants.len());

    let cfg = RealTrainConfig {
        epochs: 30,
        batch_size: 16,
        lr: 0.005,
        early_stop_loss: 0.05,
        seed: 11,
    };
    let t0 = std::time::Instant::now();
    let (repo, outcomes) = build_real_repository(&bundle, &variants, &cfg, &DeviceProfile::k80())
        .expect("training succeeds");
    println!("trained in {:.1}s:", t0.elapsed().as_secs_f64());
    for o in &outcomes {
        println!(
            "  {:<24} train acc {:.3}  ({} epochs)  eval acc {:.3}",
            o.variant.tag(),
            o.train_accuracy,
            o.epochs_run,
            repo.eval_accuracy(o.variant.id),
        );
    }

    // 3. The same optimizer the paper-scale experiments use, on real models.
    let builder = BuilderConfig {
        pool: repo.specialized_ids(),
        reference: None,
        n_settings: PAPER_PRECISION_SETTINGS.len(),
        max_pool_depth: 2,
        with_reference_terminal: false,
    };
    let system =
        tahoma::core::pipeline::TahomaSystem::initialize(repo, &PAPER_PRECISION_SETTINGS, &builder);
    println!(
        "\ncascade set over real models: {} cascades",
        system.n_cascades()
    );

    let profiler = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
    let frontier = system.frontier(&profiler);
    println!("Pareto frontier (INFER-ONLY pricing):");
    for p in &frontier.points {
        println!(
            "  {:>9.0} fps @ accuracy {:.3}  {}",
            p.throughput,
            p.accuracy,
            system.describe(&system.outcomes.cascades[p.idx])
        );
    }

    // 4. Throughput check: the batched im2col+GEMM inference path on a
    //    freshly built model, per-image vs. 32-image minibatches.
    let arch = archs[1];
    let rep = reps[2];
    let mut model = arch.cnn_spec(rep).build(99).expect("bench model builds");
    let input = vec![0.5f32; rep.value_count()];
    let batch32: Vec<f32> = input
        .iter()
        .cycle()
        .take(32 * rep.value_count())
        .copied()
        .collect();
    let time_per_image = |f: &mut dyn FnMut() -> usize| {
        let t0 = std::time::Instant::now();
        let mut images = 0usize;
        while t0.elapsed().as_millis() < 200 {
            images += f();
        }
        t0.elapsed().as_secs_f64() / images as f64
    };
    let single = time_per_image(&mut || {
        let _ = model.predict_proba(&input);
        1
    });
    let batched = time_per_image(&mut || model.predict_proba_batch(&batch32, 32).len());
    println!(
        "\ninference on {} @ {}px rgb: {:.0} img/s per-image, {:.0} img/s batch-32",
        arch.tag(),
        rep.size,
        1.0 / single,
        1.0 / batched,
    );

    // 5. Does cascading real models beat the best single real model?
    let best_single = system
        .outcomes
        .cascades
        .iter()
        .zip(&system.outcomes.outcomes)
        .filter(|(c, _)| c.depth() == 1)
        .map(|(_, o)| o.accuracy)
        .fold(0.0f32, f32::max);
    let best_cascade = frontier.most_accurate().expect("nonempty frontier");
    println!(
        "\nbest single model accuracy: {best_single:.3}; best cascade accuracy: {:.3}",
        best_cascade.accuracy
    );
}

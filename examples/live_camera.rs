//! Live camera analytics at the edge — the CAMERA deployment scenario plus
//! the video substrate (paper §III issue 4, §VII-C machinery).
//!
//! Story: a surveillance camera feeds frames straight into memory on an
//! edge box; only transform + inference costs exist. We watch a temporally
//! coherent stream with a difference detector in front of TAHOMA's selected
//! cascade, and show how the optimal plan changes when the edge accelerator
//! replaces the datacenter GPU ("the highest-payoff query plan may change by
//! the moment", §I).
//!
//! ```text
//! cargo run --release --example live_camera
//! ```

use tahoma::costmodel::ScenarioCosts;
use tahoma::noscope::{run_with_dd, TahomaDdSystem, VideoDataset};
use tahoma::prelude::*;
use tahoma::video::{DifferenceDetector, FrameSkipper, VideoStream};

fn main() {
    // A jackson-like busy stream.
    let dataset = VideoDataset::jackson(2024, 45_000);
    let frames = VideoStream::new(dataset.stream.clone()).take_frames(dataset.n_frames);
    println!(
        "stream '{}': {} frames, {:.1}% positive",
        dataset.stream.name,
        frames.len(),
        frames.iter().filter(|f| f.label).count() as f64 / frames.len() as f64 * 100.0
    );

    // TAHOMA behind NoScope's difference detector, targeting 90% accuracy.
    let build_cfg = SurrogateBuildConfig {
        n_config: 400,
        n_eval: 600,
        seed: 77,
        variants: Some(paper_variants().into_iter().step_by(4).collect()),
        ..Default::default()
    };
    let system = TahomaDdSystem::build(&dataset, build_cfg, 0.90);
    println!(
        "selected cascade (expected accuracy {:.3}): {}\n",
        system.expected_accuracy(),
        system.description()
    );

    let mut dd = DifferenceDetector::new(dataset.dd_threshold);
    let report = run_with_dd(&frames, FrameSkipper::paper_default(), &mut dd, &system);
    println!(
        "sampled {} frames (1 of 30): processed {}, reused {:.1}%",
        report.frames,
        report.processed,
        report.reuse_rate * 100.0
    );
    println!(
        "measured accuracy {:.3}, simulated throughput {:.0} fps\n",
        report.accuracy, report.throughput_fps
    );

    // Deployment diversity: the same models on an edge accelerator.
    // The edge box reads frames from local memory (fast ingest) but has
    // ~8x less arithmetic throughput, so the representation tradeoff
    // shifts: tiny inputs get *faster* (no PCIe staging), big inputs get
    // slower (compute-bound).
    let k80 = DeviceProfile::k80();
    let edge = DeviceProfile::edge_tpu();
    let _ = ScenarioCosts::new(Scenario::Camera); // transform costs shared by both devices
    println!("inference throughput of two candidate plans, K80 vs edge accelerator:");
    let rep_small = Representation::new(30, ColorMode::Gray);
    let rep_big = Representation::new(120, ColorMode::Rgb);
    let arch = ArchSpec {
        conv_layers: 2,
        conv_nodes: 16,
        dense_nodes: 32,
    };
    let mut ratios = Vec::new();
    for (name, rep) in [("30x30 gray", rep_small), ("120x120 rgb", rep_big)] {
        let flops = arch.flops(rep);
        let k80_fps = k80.infer_fps(flops, rep.value_count());
        let edge_fps = edge.infer_fps(flops, rep.value_count());
        ratios.push(edge_fps / k80_fps);
        println!("  {name:>12}: K80 {k80_fps:>8.0} fps | edge {edge_fps:>8.0} fps");
    }
    println!(
        "\nedge/K80 ratio: {:.2}x for the tiny representation vs {:.2}x for the big one —\n\
         the compute-bound edge deployment rewards small physical representations even\n\
         more, which is why cascade selection must be re-run per deployment (§VI).",
        ratios[0], ratios[1]
    );
}

//! Hard-kill durability: SIGKILL `tahoma-serve` while it is ingesting the
//! persistent store, then reopen the directory and check that open-time
//! recovery (a) comes back clean — every surviving record passes CRC —
//! and (b) every survivor is byte-identical to the record a clean,
//! uninterrupted ingest of the same deterministic corpus produces. A
//! torn tail may be truncated; nothing may be silently corrupted.

use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use tahoma_imagery::{ObjectKind, RepresentationStore};
use tahoma_serve::fixture::{nn_service, NnFixtureConfig};

const CORPUS: usize = 512;
const SEED: u64 = 0x7A40;

fn dir_bytes(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

#[test]
fn sigkill_mid_ingest_recovers_with_byte_identical_survivors() {
    let root = std::env::temp_dir().join(format!("tahoma-hardkill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let victim_dir = root.join("victim");
    let ref_dir = root.join("reference");

    // Launch the real server binary pointed at the victim store and
    // SIGKILL it as soon as the ingest has visibly written segment bytes
    // — squarely mid-ingest for a corpus this size.
    let mut child = Command::new(env!("CARGO_BIN_EXE_tahoma-serve"))
        .args([
            "--backend",
            "nn",
            "--addr",
            "127.0.0.1:0",
            "--kinds",
            "fence,wallet",
            "--corpus",
            &CORPUS.to_string(),
            "--seed",
            &SEED.to_string(),
            "--store-dir",
        ])
        .arg(&victim_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tahoma-serve");
    let deadline = Instant::now() + Duration::from_secs(120);
    while dir_bytes(&victim_dir) < 256 * 1024 {
        assert!(
            Instant::now() < deadline,
            "ingest never wrote segment bytes"
        );
        if let Ok(Some(status)) = child.try_wait() {
            panic!("server exited before the kill: {status}");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // Clean reference ingest of the identical deterministic corpus.
    drop(nn_service(&NnFixtureConfig {
        kinds: vec![ObjectKind::Fence, ObjectKind::Wallet],
        corpus_n: CORPUS,
        seed: SEED,
        store_dir: Some(ref_dir.clone()),
        ..Default::default()
    }));
    let (reference, ref_report) = RepresentationStore::open(&ref_dir).expect("open reference");
    assert_eq!(ref_report.reinitialized_shards, 0);

    // Reopen the killed store: recovery must succeed, and the full CRC
    // sweep must find zero bad survivors (torn tails were truncated).
    let (survivor, report) = RepresentationStore::open(&victim_dir).expect("recovery failed");
    let verified = survivor
        .verify()
        .expect("CRC sweep found a corrupt survivor");
    assert_eq!(verified, report.records, "verify() missed records");

    let keys = survivor.segments().expect("persistent").keys();
    assert!(
        !keys.is_empty(),
        "kill landed before any complete record; nothing to compare"
    );
    assert!(
        (keys.len() as u64) < (CORPUS as u64) * 3,
        "kill landed after ingest finished; not a mid-ingest test (got {} records)",
        keys.len()
    );
    for (id, rep) in keys {
        let survivor_bytes = survivor
            .with_blob(id, rep, |b| b.to_vec())
            .expect("survivor read errored")
            .expect("indexed record unreadable");
        let reference_bytes = reference
            .with_blob(id, rep, |b| b.to_vec())
            .expect("reference read errored")
            .expect("survivor record absent from clean ingest");
        assert_eq!(
            survivor_bytes, reference_bytes,
            "record ({id}, {rep:?}) diverged from the clean ingest"
        );
    }

    drop(survivor);
    drop(reference);
    let _ = std::fs::remove_dir_all(&root);
}

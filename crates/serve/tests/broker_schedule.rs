//! Seeded schedule-perturbation harness for the coalescing broker
//! (`tahoma_serve::sched`).
//!
//! Interleaving bugs in the leader/follower protocol hide behind "it
//! passed this run": the OS happens to schedule submitters so that joins
//! land before seals and nobody observes the racy window. This harness
//! drives the broker's injected yield points
//! ([`tahoma_serve::sched::point`]) from a per-thread seeded RNG, so each
//! of 1000 seeds explores a different deterministic pattern of yields and
//! spins at the protocol's decision sites (submit, join, append, seal,
//! run, publish, wait). The invariant under test is the broker's whole
//! contract: under every perturbed schedule, every submitter gets scores
//! bitwise identical to a serial [`SharedModelZoo::infer`] call on its
//! own pack.
//!
//! A second test covers the failure path the same way: a leader whose
//! zoo call panics must propagate the panic to every follower of that
//! batch — never wedge them on the condvar — and leave the broker
//! reusable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tahoma_core::exec::{InferDispatch, SharedModelZoo};
use tahoma_imagery::{ColorMode, Representation};
use tahoma_nn::InferScratch;
use tahoma_serve::{sched, Broker};
use tahoma_zoo::{ArchSpec, ModelId};

const THREADS: usize = 3;
const SEEDS: u64 = 1000;
const ROW_LEN: usize = 12 * 12; // 12x12 gray input

fn tiny_zoo() -> SharedModelZoo {
    let rep = Representation::new(12, ColorMode::Gray);
    let arch = ArchSpec {
        conv_layers: 1,
        conv_nodes: 4,
        dense_nodes: 8,
    };
    let mut zoo = SharedModelZoo::new();
    zoo.register(
        ModelId(0),
        rep,
        arch.cnn_spec(rep).build(41).expect("net 0"),
    );
    zoo.register(
        ModelId(1),
        rep,
        arch.cnn_spec(rep).build(42).expect("net 1"),
    );
    zoo
}

/// Thread `t`'s fixed input pack: `t + 1` rows of deterministic noise.
fn pack_for(t: usize) -> (Vec<f32>, usize) {
    let n = t + 1;
    let mut rng = tahoma_mathx::DetRng::new(0xC0FFEE ^ t as u64);
    let rows = (0..n * ROW_LEN)
        .map(|_| rng.normal(0.0, 1.0) as f32)
        .collect();
    (rows, n)
}

/// The model thread `t` targets in a round: even seeds converge all
/// threads on one model (maximum merge pressure), odd seeds split them
/// across both models (concurrent independent batches).
fn model_for(seed: u64, t: usize) -> ModelId {
    if seed.is_multiple_of(2) {
        ModelId(0)
    } else {
        ModelId((t % 2) as u32)
    }
}

#[test]
fn thousand_seeds_bitwise_identical_to_serial() {
    let zoo = Arc::new(tiny_zoo());
    let packs: Vec<(Vec<f32>, usize)> = (0..THREADS).map(pack_for).collect();
    // Serial reference, one pack at a time — what every perturbed
    // concurrent round must reproduce exactly.
    let mut scratch = InferScratch::coalescing();
    let expected: Vec<[Vec<f32>; 2]> = packs
        .iter()
        .map(|(rows, n)| {
            [
                zoo.infer(ModelId(0), rows, *n, &mut scratch),
                zoo.infer(ModelId(1), rows, *n, &mut scratch),
            ]
        })
        .collect();

    let active = Arc::new(AtomicUsize::new(THREADS));
    let broker =
        Broker::new(Arc::clone(&zoo), Arc::clone(&active)).with_window(Duration::from_micros(200));

    for seed in 0..SEEDS {
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let broker = &broker;
                let packs = &packs;
                let expected = &expected;
                s.spawn(move || {
                    let _perturb = sched::install(seed.wrapping_mul(31) ^ t as u64);
                    let (rows, n) = &packs[t];
                    let model = model_for(seed, t);
                    let scores = broker.infer(model, rows, *n);
                    assert_eq!(
                        scores.len(),
                        *n,
                        "seed {seed} thread {t}: wrong score count"
                    );
                    let want = &expected[t][model.0 as usize];
                    for (i, (got, want)) in scores.iter().zip(want).enumerate() {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "seed {seed} thread {t} row {i}: {got} != serial {want}"
                        );
                    }
                });
            }
        });
    }

    let stats = broker.stats();
    assert_eq!(stats.submits, SEEDS * THREADS as u64);
    // Across 1000 perturbed rounds with all threads converging on one
    // model every other round, real cross-submission merges must occur —
    // otherwise the harness only ever exercised the solo path.
    assert!(
        stats.merged_calls > 0,
        "no merged batches across {SEEDS} seeds: {stats:?}"
    );
}

/// A panicking zoo call (here: an unregistered model) must re-raise on the
/// leader, panic — not wedge — every follower of the batch, and leave the
/// broker usable for the next query.
#[test]
fn leader_panic_reaches_followers_and_broker_survives() {
    let zoo = Arc::new(tiny_zoo());
    let packs: Vec<(Vec<f32>, usize)> = (0..2).map(pack_for).collect();
    let active = Arc::new(AtomicUsize::new(2));
    // A long window so both submitters reliably land in the same batch
    // (the leader seals early once both are aboard).
    let broker =
        Broker::new(Arc::clone(&zoo), Arc::clone(&active)).with_window(Duration::from_millis(50));

    for seed in 0..16u64 {
        let outcomes: Vec<std::thread::Result<Vec<f32>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|t| {
                    let broker = &broker;
                    let packs = &packs;
                    s.spawn(move || {
                        let _perturb = sched::install(seed ^ (t as u64) << 8);
                        let (rows, n) = &packs[t];
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            broker.infer(ModelId(99), rows, *n)
                        }))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("harness thread must not die"))
                .collect()
        });
        for (t, out) in outcomes.iter().enumerate() {
            assert!(
                out.is_err(),
                "seed {seed} thread {t}: inference on an unregistered model \
                 must panic, not return"
            );
        }
    }

    // The broker's bookkeeping survived 16 panicked batches: a healthy
    // query scores correctly and the open map holds no leftover batch.
    active.store(1, Ordering::SeqCst);
    let (rows, n) = &packs[1];
    let scores = broker.infer(ModelId(1), rows, *n);
    let mut scratch = InferScratch::coalescing();
    assert_eq!(scores, zoo.infer(ModelId(1), rows, *n, &mut scratch));
}

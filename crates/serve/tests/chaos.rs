//! Chaos campaign: ≥1000 seeded fault schedules through the full serve
//! fixture — ad-hoc and standing queries, both store tiers, plus a TCP
//! phase with protocol-layer faults.
//!
//! Invariants asserted for every schedule (the tentpole proof,
//! RELIABILITY.md):
//!
//! * no panic escapes a request boundary;
//! * every response is correct-or-explicit-error — an `Ok` carries results
//!   and an `Err` renders a non-empty, classified message;
//! * results after transient-fault retries are bitwise identical to the
//!   fault-free run (same matched ids, same order-sensitive FNV sums);
//! * degradation is explicit and sticky where designed (standing queries
//!   report `state=degraded`, never silently wrong windows).
//!
//! Faults are armed process-wide, so every test here serializes on one
//! campaign lock; the file itself only compiles under `fault-inject`.
#![cfg(feature = "fault-inject")]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};
use tahoma_faults::{injected_total, install, FaultPlan};
use tahoma_imagery::ObjectKind;
use tahoma_serve::fixture::{nn_service, NnFixtureConfig};
use tahoma_serve::{
    serve, Deadline, ExecPolicy, QueryService, ServeError, ServerConfig, StreamRegistry,
};

/// One installed fault plan at a time: the arm flag is process-global.
fn campaign_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

const QUERIES: &[&str] = &[
    "SELECT * FROM frames WHERE contains_object(fence)",
    "SELECT * FROM frames WHERE contains_object(wallet) AND camera < 4",
    "SELECT * FROM frames WHERE contains_object(fence) AND contains_object(wallet)",
];
const STREAM_SQL: &str = "SELECT * FROM frames WHERE contains_object(fence)";
const STREAM_SEED: u64 = 0xBEEF;
const TICKS: usize = 2;

fn small_fixture(store_dir: Option<std::path::PathBuf>) -> QueryService {
    nn_service(&NnFixtureConfig {
        kinds: vec![ObjectKind::Fence, ObjectKind::Wallet],
        corpus_n: 32,
        seed: 0x7A40,
        store_dir,
        ..Default::default()
    })
}

/// Per-tick fault-free reference for the standing-query script.
struct TickBase {
    matched: usize,
    sum: u64,
    added: Vec<u64>,
    removed: Vec<u64>,
}

/// The fault-free run every schedule must reproduce bitwise.
struct Baseline {
    adhoc: Vec<Vec<u64>>,
    ticks: Vec<TickBase>,
    final_sum: u64,
    final_matched: usize,
}

/// A fresh registry per run: same registry seed + same registration order
/// means the standing query gets the same qid and the same frames, so the
/// faulty run's window is comparable tick for tick.
fn fresh_standing(service: &QueryService) -> (StreamRegistry, u64) {
    let registry = StreamRegistry::new(STREAM_SEED);
    let r = registry
        .register(service, "coral", 8, 2, STREAM_SQL)
        .expect("baseline register");
    (registry, r.qid)
}

fn baseline(service: &QueryService) -> Baseline {
    let adhoc = QUERIES
        .iter()
        .map(|sql| {
            service
                .execute_with(sql, ExecPolicy::default())
                .expect("fault-free query")
                .matched_ids
        })
        .collect();
    let (registry, qid) = fresh_standing(service);
    let ticks = (0..TICKS)
        .map(|_| {
            let t = registry.tick(service, qid).expect("fault-free tick");
            TickBase {
                matched: t.matched,
                sum: t.sum,
                added: t.deltas.added,
                removed: t.deltas.removed,
            }
        })
        .collect();
    let s = registry.status(service, qid).expect("fault-free status");
    assert!(s.agree && !s.degraded, "fault-free stream must be healthy");
    Baseline {
        adhoc,
        ticks,
        final_sum: s.sum,
        final_matched: s.matched,
    }
}

/// Drive the fixed request script under one seeded fault schedule and
/// check every invariant. Returns (faults_injected, client_retries,
/// stream_degraded).
fn run_schedule(service: &QueryService, seed: u64, base: &Baseline) -> (u64, u64, bool) {
    // Sweep the injection pressure with the seed: 10‰ .. 100‰ per site.
    let rate = 10 + (seed % 7) as u16 * 15;
    let armed = install(FaultPlan::new(seed).with_uniform_rate(rate));
    let mut client_retries = 0u64;

    for (qi, sql) in QUERIES.iter().enumerate() {
        let mut settled = false;
        for _ in 0..8 {
            let res = catch_unwind(AssertUnwindSafe(|| {
                service.execute_with(sql, ExecPolicy::default())
            }))
            .unwrap_or_else(|_| panic!("panic escaped request boundary (seed {seed} query {qi})"));
            match res {
                Ok(out) => {
                    assert_eq!(
                        out.matched_ids, base.adhoc[qi],
                        "seed {seed} query {qi}: results diverged from fault-free run"
                    );
                    settled = true;
                    break;
                }
                Err(e) => {
                    assert!(
                        !e.to_string().is_empty(),
                        "seed {seed} query {qi}: empty error"
                    );
                    client_retries += 1;
                }
            }
        }
        assert!(settled, "seed {seed} query {qi}: client retries exhausted");
    }

    let (registry, qid) = fresh_standing(service);
    let mut done = 0usize;
    let mut degraded = false;
    let mut attempts = 0;
    while done < TICKS && !degraded {
        attempts += 1;
        assert!(attempts <= 40, "seed {seed}: tick retries exhausted");
        let res = catch_unwind(AssertUnwindSafe(|| registry.tick(service, qid)))
            .unwrap_or_else(|_| panic!("panic escaped tick boundary (seed {seed})"));
        match res {
            Ok(t) => {
                let b = &base.ticks[done];
                assert_eq!(t.deltas.tick, done as u64 + 1, "seed {seed}: tick count");
                assert_eq!(
                    (t.matched, t.sum),
                    (b.matched, b.sum),
                    "seed {seed} tick {done}: window diverged from fault-free run"
                );
                assert_eq!(t.deltas.added, b.added, "seed {seed} tick {done}: added");
                assert_eq!(
                    t.deltas.removed, b.removed,
                    "seed {seed} tick {done}: removed"
                );
                done += 1;
            }
            Err(e) => {
                let msg = e.to_string();
                if msg.contains("DEGRADED") {
                    degraded = true;
                } else {
                    // The only other tick-time failure is a parked-frame
                    // ingest fault; retrying the tick must lose nothing.
                    assert!(
                        msg.contains("ingest"),
                        "seed {seed}: unexpected tick error: {msg}"
                    );
                    client_retries += 1;
                }
            }
        }
    }
    let status = catch_unwind(AssertUnwindSafe(|| registry.status(service, qid)))
        .unwrap_or_else(|_| panic!("panic escaped status boundary (seed {seed})"));
    match status {
        Ok(s) => {
            if degraded {
                assert!(
                    s.degraded && !s.agree,
                    "seed {seed}: quarantined stream must report state=degraded"
                );
            } else {
                assert!(!s.degraded, "seed {seed}: healthy stream marked degraded");
                assert_eq!(s.ticks, TICKS as u64, "seed {seed}: status ticks");
                assert_eq!(
                    (s.matched, s.sum),
                    (base.final_matched, base.final_sum),
                    "seed {seed}: final window diverged from fault-free run"
                );
                assert!(s.agree, "seed {seed}: incremental != rescan after faults");
            }
        }
        Err(e) => assert!(!e.to_string().is_empty(), "seed {seed}: empty status error"),
    }
    // Per-plan injection totals are sampled before the guard drops (the
    // drop disarms and clears the plan's counters).
    let injected = injected_total();
    drop(armed);
    (injected, client_retries, degraded)
}

fn campaign(service: &QueryService, seeds: std::ops::Range<u64>, tag: &str) {
    let base = baseline(service);
    let n = seeds.end - seeds.start;
    let mut injected = 0u64;
    let mut retries = 0u64;
    let mut degraded = 0u64;
    for seed in seeds {
        let (i, r, d) = run_schedule(service, seed, &base);
        injected += i;
        retries += r;
        degraded += u64::from(d);
    }
    // The campaign must actually have exercised the fault paths, not
    // trivially passed with injection disarmed or misconfigured.
    assert!(
        injected >= n,
        "{tag}: only {injected} faults injected across {n} schedules"
    );
    let stats = service.stats();
    assert!(
        stats.store.retries + stats.store.degraded_fetches > 0,
        "{tag}: no store-level fault handling observed"
    );
    println!(
        "{tag}: injected={injected} client_retries={retries} degraded_streams={degraded} \
         store_retries={} degraded_fetches={} quarantined={} failovers={}",
        stats.store.retries,
        stats.store.degraded_fetches,
        stats.store.quarantined,
        stats.broker.failovers,
    );
}

#[test]
fn chaos_ram_tier_768_schedules() {
    let _campaign = campaign_lock();
    let service = small_fixture(None);
    campaign(&service, 0..768, "ram");
}

#[test]
fn chaos_persistent_tier_256_schedules() {
    let _campaign = campaign_lock();
    let dir = std::env::temp_dir().join(format!("tahoma-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = small_fixture(Some(dir.clone()));
    campaign(&service, 1000..1256, "persistent");
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deadlines: an already-expired budget answers `TIMEOUT` (a clean,
/// well-formed stop), and a generous one answers identically to the
/// fault-free run.
#[test]
fn deadlines_timeout_cleanly_and_generous_budgets_change_nothing() {
    let _campaign = campaign_lock();
    let service = small_fixture(None);
    let base = service
        .execute_with(QUERIES[0], ExecPolicy::default())
        .expect("fault-free")
        .matched_ids;
    let expired = ExecPolicy {
        deadline: Some(Deadline::in_ms(0)),
        ..ExecPolicy::default()
    };
    match service.execute_with(QUERIES[0], expired) {
        Err(ServeError::Timeout { budget_ms }) => assert_eq!(budget_ms, 0),
        other => panic!("expired deadline must TIMEOUT, got {other:?}"),
    }
    let generous = ExecPolicy {
        deadline: Some(Deadline::in_ms(600_000)),
        ..ExecPolicy::default()
    };
    let out = service
        .execute_with(QUERIES[0], generous)
        .expect("generous deadline");
    assert_eq!(out.matched_ids, base);
    assert!(service.stats().timeouts >= 1);
}

/// TCP phase: protocol-layer faults (dropped reads, failed writes,
/// stalls) on top of the full stack. Connections may die mid-script —
/// the client reconnects — but every line that does arrive must be a
/// well-formed response, and successful `QUERY` responses must match the
/// fault-free wire bytes (modulo the plan-cache hit/miss marker).
#[test]
fn chaos_tcp_64_schedules() {
    let _campaign = campaign_lock();
    let service = Arc::new(small_fixture(None));
    let handle = serve(Arc::clone(&service), ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    let normalize = |line: &str| {
        line.replace(" plan=hit", " plan=?")
            .replace(" plan=miss", " plan=?")
    };
    let ask = |line: &str| -> Option<String> {
        let mut conn = TcpStream::connect(addr).ok()?;
        conn.write_all(line.as_bytes()).ok()?;
        conn.write_all(b"\n").ok()?;
        let mut reader = BufReader::new(conn);
        let mut resp = String::new();
        match reader.read_line(&mut resp) {
            Ok(n) if n > 0 => Some(resp.trim_end().to_string()),
            _ => None,
        }
    };

    // Fault-free wire baseline.
    let query_line = format!("QUERY {}", QUERIES[0]);
    let base = normalize(&ask(&query_line).expect("fault-free wire query"));
    assert!(base.starts_with("OK n="), "unexpected baseline: {base}");
    let wrapped = normalize(&ask(&format!("DEADLINE 600000 {query_line}")).expect("wrapped"));
    assert_eq!(wrapped, base, "a generous DEADLINE must not change results");
    let oversized = format!("QUERY {}", "x".repeat(20_000));
    let over_resp = ask(&oversized).expect("oversized line answered");
    assert!(
        over_resp.starts_with("ERR") && over_resp.contains("8192"),
        "oversized line must be rejected in bounds: {over_resp}"
    );

    let mut dropped = 0u64;
    let mut timeouts = 0u64;
    for seed in 2000..2064u64 {
        let rate = 20 + (seed % 5) as u16 * 20;
        let armed = install(FaultPlan::new(seed).with_uniform_rate(rate));
        let script = [
            "PING",
            query_line.as_str(),
            "DEADLINE 1 SELECT nonsense",
            &oversized,
            "STATS",
        ];
        for line in script {
            match ask(line) {
                None => dropped += 1, // injected disconnect; reconnect next line
                Some(resp) => {
                    assert!(
                        ["OK", "ERR", "TIMEOUT", "PONG", "BUSY", "BYE"]
                            .iter()
                            .any(|p| resp.starts_with(p)),
                        "seed {seed}: malformed response {resp:?}"
                    );
                    if line == query_line {
                        assert_eq!(
                            normalize(&resp),
                            base,
                            "seed {seed}: wire results diverged under faults"
                        );
                    }
                }
            }
        }
        // A tight deadline on a real query must answer TIMEOUT or finish
        // with the exact fault-free bytes — never a partial result.
        if let Some(resp) = ask(&format!("DEADLINE 1 {query_line}")) {
            if resp.starts_with("TIMEOUT") {
                assert!(resp.contains("budget_ms=1"), "seed {seed}: {resp}");
                timeouts += 1;
            } else {
                assert_eq!(normalize(&resp), base, "seed {seed}: tight-deadline result");
            }
        } else {
            dropped += 1;
        }
        drop(armed);
    }
    println!("tcp: dropped={dropped} timeouts={timeouts}");
    handle.shutdown();
    handle.join();
}

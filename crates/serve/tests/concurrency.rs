//! Concurrency invariants of the query service.
//!
//! The contract under test: a [`QueryService`] shared by any number of
//! threads returns, for every query, results bitwise identical to a serial
//! run with every optimization disabled — plan caching and broker
//! coalescing change cost, never answers.

use std::sync::{Arc, OnceLock};
use std::time::Duration;
use tahoma_imagery::ObjectKind;
use tahoma_serve::fixture::{nn_service, surrogate_service, NnFixtureConfig};
use tahoma_serve::{serve, ExecPolicy, QueryService, ServerConfig};

const QUERIES: &[&str] = &[
    "SELECT * FROM frames WHERE contains_object(fence)",
    "SELECT * FROM frames WHERE contains_object(wallet)",
    "SELECT * FROM frames WHERE contains_object(fence) AND contains_object(wallet)",
    "SELECT * FROM frames WHERE contains_object(fence) AND location = 'Detroit'",
    "SELECT * FROM frames WHERE contains_object(wallet) AND camera < 4",
    "SELECT * FROM frames WHERE location = 'Flint'",
];

const UNCACHED_SERIAL: ExecPolicy = ExecPolicy {
    use_plan_cache: false,
    coalesce: false,
    deadline: None,
};

fn nn_fixture() -> Arc<QueryService> {
    static SERVICE: OnceLock<Arc<QueryService>> = OnceLock::new();
    Arc::clone(SERVICE.get_or_init(|| {
        Arc::new(nn_service(&NnFixtureConfig {
            corpus_n: 96,
            // A wide window forces real cross-query merges on slow runners.
            window: Duration::from_millis(2),
            ..Default::default()
        }))
    }))
}

/// Serial reference answers with every optimization off.
fn reference_answers(service: &QueryService) -> Vec<Vec<u64>> {
    QUERIES
        .iter()
        .map(|sql| {
            service
                .execute_with(sql, UNCACHED_SERIAL)
                .expect("reference query")
                .matched_ids
        })
        .collect()
}

/// N threads hammer one shared service with coalescing and plan caching
/// on; every answer must be bitwise identical to the serial reference.
#[test]
fn concurrent_coalesced_results_match_serial() {
    let service = nn_fixture();
    let expected = Arc::new(reference_answers(&service));
    let threads = 6;
    let rounds = 2;
    std::thread::scope(|s| {
        for t in 0..threads {
            let service = Arc::clone(&service);
            let expected = Arc::clone(&expected);
            s.spawn(move || {
                for r in 0..rounds {
                    // Stagger the query mix per thread so different queries
                    // overlap in flight (the broker's merge case).
                    for (qi, sql) in QUERIES
                        .iter()
                        .enumerate()
                        .cycle()
                        .skip(t + r)
                        .take(QUERIES.len())
                    {
                        let out = service.execute(sql).expect("concurrent query");
                        assert_eq!(
                            out.matched_ids, expected[qi],
                            "thread {t} round {r} diverged on {sql:?}"
                        );
                    }
                }
            });
        }
    });
    let stats = service.stats();
    assert!(stats.queries >= (threads * rounds * QUERIES.len()) as u64);
    // The 2ms window plus 8 threads must have produced at least one real
    // cross-query merge (the coalescing path, not just the fast path).
    assert!(
        stats.broker.merged_calls > 0,
        "no batches merged under 8-thread load: {stats:?}"
    );
}

/// Same service, coalescing disabled per query: concurrency alone must
/// not change answers either.
#[test]
fn concurrent_uncoalesced_results_match_serial() {
    let service = nn_fixture();
    let expected = Arc::new(reference_answers(&service));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let service = Arc::clone(&service);
            let expected = Arc::clone(&expected);
            s.spawn(move || {
                for (qi, sql) in QUERIES.iter().enumerate() {
                    let out = service
                        .execute_with(
                            sql,
                            ExecPolicy {
                                use_plan_cache: true,
                                coalesce: false,
                                deadline: None,
                            },
                        )
                        .expect("concurrent query");
                    assert_eq!(out.matched_ids, expected[qi], "diverged on {sql:?}");
                }
            });
        }
    });
}

/// The persistent segment tier must be invisible in answers: a service
/// whose frame store lives on disk returns bitwise-identical results to
/// the RAM-backed fixture — including after a simulated restart that
/// reopens the store directory (recovery + CRC verification, no
/// re-ingest) — and stays identical under concurrent load.
#[test]
fn persistent_store_service_matches_ram_and_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("tahoma-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let expected = Arc::new(reference_answers(&nn_fixture()));
    let persist_cfg = NnFixtureConfig {
        corpus_n: 96,
        window: Duration::from_millis(2),
        store_dir: Some(dir.clone()),
        ..Default::default()
    };

    // First build: fresh ingest onto the segment tier.
    {
        let service = nn_service(&persist_cfg);
        let got = reference_answers(&service);
        assert_eq!(got, *expected, "persistent tier diverged from RAM");
    }

    // "Restart": a fresh service finds a compatible store in the
    // directory and reopens it instead of re-ingesting; concurrent
    // clients must still see the RAM-identical answers.
    let service = Arc::new(nn_service(&persist_cfg));
    std::thread::scope(|s| {
        for t in 0..4 {
            let service = Arc::clone(&service);
            let expected = Arc::clone(&expected);
            s.spawn(move || {
                for (qi, sql) in QUERIES.iter().enumerate() {
                    let out = service.execute(sql).expect("concurrent query");
                    assert_eq!(
                        out.matched_ids, expected[qi],
                        "thread {t}: reopened store diverged on {sql:?}"
                    );
                }
            });
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full-stack smoke: TCP server, concurrent protocol clients, shutdown.
#[test]
fn server_protocol_roundtrip_with_concurrent_clients() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let service = Arc::new(surrogate_service(
        &[ObjectKind::Fence, ObjectKind::Wallet],
        256,
        0xBEEF,
    ));
    let handle = serve(
        service,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 3,
            queue_cap: 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    let ask = |lines: &[&str]| -> Vec<String> {
        let mut conn = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut out = Vec::new();
        for line in lines {
            conn.write_all(format!("{line}\n").as_bytes())
                .expect("send");
            let mut resp = String::new();
            reader.read_line(&mut resp).expect("recv");
            out.push(resp.trim_end().to_string());
        }
        out
    };

    assert_eq!(ask(&["PING"]), ["PONG"]);
    assert!(ask(&["BOGUS"])[0].starts_with("ERR"));

    // The canonical answer for one query, then the same query from 6
    // concurrent clients: every response line must be identical (same
    // count, same id hash).
    let sql = "QUERY SELECT * FROM frames WHERE contains_object(fence) AND camera < 6";
    let first = ask(&[sql]).remove(0);
    assert!(first.starts_with("OK "), "unexpected response: {first}");
    let echoes: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                s.spawn(|| {
                    let mut conn = TcpStream::connect(addr).expect("connect");
                    conn.write_all(format!("{sql}\n").as_bytes()).expect("send");
                    let mut reader = BufReader::new(conn);
                    let mut resp = String::new();
                    reader.read_line(&mut resp).expect("recv");
                    resp.trim_end().to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let strip_plan = |line: &str| line.replace("plan=miss", "plan=hit");
    for echo in &echoes {
        assert_eq!(
            strip_plan(echo),
            strip_plan(&first),
            "client answers diverged"
        );
    }

    let stats = ask(&["STATS"]).remove(0);
    assert!(stats.starts_with("OK queries="), "bad stats line: {stats}");

    assert_eq!(ask(&["SHUTDOWN"]), ["BYE"]);
    handle.join();
}

mod plan_cache_props {
    use super::*;
    use proptest::prelude::*;

    fn surrogate_fixture() -> Arc<QueryService> {
        static SERVICE: OnceLock<Arc<QueryService>> = OnceLock::new();
        Arc::clone(SERVICE.get_or_init(|| {
            Arc::new(surrogate_service(
                &[ObjectKind::Fence, ObjectKind::Wallet, ObjectKind::Acorn],
                128,
                0x90,
            ))
        }))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A plan served from the cache is identical to planning the same
        /// predicate set from scratch, for every subset and ordering of
        /// the served kinds.
        #[test]
        fn cached_plan_equals_fresh_planning(bits in 1u8..8, swap in 0u8..2) {
            let service = surrogate_fixture();
            let all = [ObjectKind::Fence, ObjectKind::Wallet, ObjectKind::Acorn];
            let mut kinds: Vec<ObjectKind> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, &k)| k)
                .collect();
            if swap == 1 {
                kinds.reverse();
            }
            // Warm (or hit) the cache, then compare against a fresh plan.
            let (cached, _) = service.plan_for(&kinds, true).expect("cached planning");
            let (fresh, hit) = service.plan_for(&kinds, false).expect("fresh planning");
            prop_assert!(!hit);
            prop_assert_eq!(cached.entries.len(), fresh.entries.len());
            for (c, f) in cached.entries.iter().zip(fresh.entries.iter()) {
                prop_assert_eq!(c.0, f.0);
                prop_assert_eq!(c.1.cascade, f.1.cascade);
                prop_assert_eq!(c.1.accuracy.to_bits(), f.1.accuracy.to_bits());
                prop_assert_eq!(c.1.throughput.to_bits(), f.1.throughput.to_bits());
            }
            // And a second cached call returns the very same allocation.
            let (again, hit) = service.plan_for(&kinds, true).expect("repeat planning");
            prop_assert!(hit);
            prop_assert!(Arc::ptr_eq(&cached, &again));
        }
    }
}

//! Property tests for the wire protocol's input edge: randomized byte
//! soup, hostile fragments, and shuffled verb grammar must never panic
//! `parse_request` (or the SQL parser behind `QUERY`), and every valid
//! round-trip the generator can build must parse back to itself.
//!
//! The oversized-line / resync behaviour of the bounded reader is covered
//! by unit tests in `server.rs`; this file owns the grammar surface.

use proptest::prelude::*;
use tahoma_core::query::Query;
use tahoma_serve::protocol::{parse_request, Request};

/// splitmix64 — deterministic fragment picker (the vendored proptest has
/// no string strategies, so string shapes derive from integer seeds).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Fragments chosen to stress every branch of the grammar: real verbs,
/// near-miss keywords, numbers at parse boundaries, whitespace runs,
/// quotes, and non-ASCII (valid UTF-8 — invalid UTF-8 is rejected one
/// layer down, before the parser ever sees it).
const FRAGMENTS: &[&str] = &[
    "QUERY",
    "QUERYU",
    "query",
    "DEADLINE",
    "REGISTER",
    "RANGE",
    "STEP",
    "TICK",
    "DELTAS",
    "PING",
    "STATS",
    "SHUTDOWN",
    "SELECT",
    "*",
    "FROM",
    "frames",
    "WHERE",
    "contains_object(fence)",
    "contains_object(",
    "0",
    "1",
    "18446744073709551615",
    "18446744073709551616",
    "-1",
    "9.5",
    "coral",
    "''",
    "\"unterminated",
    "\t",
    "   ",
    "\u{3053}\u{3093}",
    "\r",
    "((((",
    ";",
];

fn soup(seed: u64, words: usize) -> String {
    (0..words)
        .map(|i| FRAGMENTS[(mix(seed ^ (i as u64) << 17) % FRAGMENTS.len() as u64) as usize])
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// Whatever line the soup generator emits, `parse_request` returns —
    /// Ok or Err, never a panic — and an Err is a non-empty message
    /// (it is shipped to the client verbatim after `ERR `).
    #[test]
    fn parse_request_total_on_fragment_soup(seed in 0u64..1_000_000, words in 0usize..12) {
        let line = soup(seed, words);
        if let Err(msg) = parse_request(&line) {
            prop_assert!(!msg.is_empty());
        }
    }

    /// Same totality bar for the SQL parser sitting behind `QUERY` — a
    /// request that survives the protocol layer hands its payload here.
    #[test]
    fn sql_parser_total_on_fragment_soup(seed in 0u64..1_000_000, words in 0usize..12) {
        let sql = soup(seed.wrapping_mul(3), words);
        let _ = Query::parse(&sql);
    }

    /// Raw byte soup squeezed into valid UTF-8: every 1-byte codepoint
    /// including controls and DEL. The parser must stay total.
    #[test]
    fn parse_request_total_on_control_bytes(seed in 0u64..1_000_000, len in 0usize..200) {
        let line: String = (0..len)
            .map(|i| (mix(seed ^ i as u64) % 128) as u8 as char)
            .collect();
        if let Err(msg) = parse_request(&line) {
            prop_assert!(!msg.is_empty());
        }
    }

    /// Structured round-trip: a well-formed DEADLINE-wrapped query parses
    /// to exactly the request the generator intended.
    #[test]
    fn deadline_roundtrip(ms in 1u64..1_000_000, seed in 0u64..1_000) {
        let sql = format!("SELECT * FROM frames WHERE q{seed}");
        let line = format!("DEADLINE {ms} QUERY {sql}");
        prop_assert_eq!(
            parse_request(&line),
            Ok(Request::Deadline { ms, inner: Box::new(Request::Query(sql)) })
        );
    }

    /// REGISTER grammar round-trip with randomized numerics and spacing.
    #[test]
    fn register_roundtrip(range in 1u64..10_000, step in 1u64..10_000, pad in 1usize..4) {
        let sp = " ".repeat(pad);
        let line = format!("REGISTER coral{sp}RANGE {range}{sp}STEP {step} SELECT * FROM frames");
        prop_assert_eq!(
            parse_request(&line),
            Ok(Request::Register {
                stream: "coral".to_string(),
                range,
                step,
                sql: "SELECT * FROM frames".to_string(),
            })
        );
    }
}

/// Deterministic spot checks for edges the soup may not hit every run.
#[test]
fn parse_request_rejects_hostile_edges_without_panicking() {
    for line in [
        "",
        " ",
        "DEADLINE",
        "DEADLINE 0 QUERY x",
        "DEADLINE 10 PING",
        "DEADLINE 10 DEADLINE 10 QUERY x",
        "DEADLINE 99999999999999999999 QUERY x",
        "REGISTER coral RANGE x STEP 2 SELECT 1",
        "REGISTER coral RANGE 8 STEP 2",
        "TICK -3",
        "DELTAS 99999999999999999999",
        "QUERY",
        "QUERYU \u{0}\u{1}\u{2}",
    ] {
        match parse_request(line) {
            Ok(req) => assert!(
                matches!(req, Request::QueryUncached(_)),
                "unexpected accept for {line:?}: {req:?}"
            ),
            Err(msg) => assert!(!msg.is_empty(), "empty ERR message for {line:?}"),
        }
    }
}

//! Concurrent query service: a shared-executor front door over the
//! vectorized cascade executor, with plan caching and cross-query batch
//! coalescing.
//!
//! The paper's system is presented as a *database service*: many analysts
//! issue content-based queries against one corpus, and the optimizer's
//! savings (cascades, physical-representation sharing, §IV's cost model)
//! accrue per query. Everything below the service layer in this repo was
//! single-query: one `VectorizedExecutor` run at a time against `&mut`
//! backends. This crate is the multi-tenant front door:
//!
//! * [`service::QueryService`] owns one shared corpus, one shared
//!   [`tahoma_imagery::RepresentationStore`], and one trained model zoo
//!   per served predicate, and executes SQL queries with `&self` — any
//!   number of threads serve queries concurrently against the same
//!   immutable plans and weights, with per-query mutable state checked out
//!   of a scratch pool ([`tahoma_core::exec::NnSessionScratch`]).
//! * [`plan_cache::PlanCache`] memoizes the planning prefix — per-kind
//!   cascade selection over the Pareto frontier plus the cross-predicate
//!   execution order — keyed on (predicate set, accuracy target). A repeat
//!   query skips straight to execution.
//! * [`broker::Broker`] implements cross-query batch coalescing: survivor
//!   packs from concurrent queries that target the same model are merged
//!   into a single batched GEMM inference call. This is §IV's batch
//!   pricing argument applied *across* queries: the cost model already
//!   prices inference per batch (fixed per-call overhead amortized over
//!   `batch_size` items), so two half-full packs cost nearly as much as
//!   one merged pack — merging them buys the second query's inference at
//!   marginal cost. Coalescing never changes results: the shared inference
//!   path pins the batched GEMM kernel
//!   ([`tahoma_nn::InferScratch::coalescing`]), whose per-row reduction
//!   order is independent of how many rows ride in the call, so a row's
//!   score is bitwise identical however packs are merged.
//! * [`server`] exposes the service over TCP with a line protocol
//!   ([`protocol`]), a fixed worker pool, and admission control: a bounded
//!   accept queue that sheds load with `BUSY` instead of queueing without
//!   bound.
//! * [`stream::StreamRegistry`] hosts *standing* continuous queries over
//!   live video streams (`REGISTER`/`TICK`/`DELTAS` on the same wire):
//!   each tick ingests the stream's next frames through the store's
//!   lattice-planned transcode path and slides a RANGE/STEP count window
//!   incrementally ([`tahoma_core::continuous`]), scoring only the
//!   entrants through the same per-kind backends — so standing-query
//!   packs coalesce with ad-hoc traffic in the broker.
//!
//! [`fixture`] builds ready-to-serve services (surrogate-backed and
//! real-NN-backed) shared by the `query_serve` bench, the concurrency
//! tests, the `tahoma-serve` binary, and the CI smoke job.
//!
//! Concurrency invariants in this crate are machine-checked: every
//! `Mutex` field carries a `// LOCK-ORDER: n` rank audited by
//! `tahoma-audit` (lint A6, policy in `SAFETY.md`), and [`sched`]
//! provides the seeded schedule-perturbation points the broker's
//! interleaving tests drive.
//!
//! The failure story — per-query deadlines, transient-error retry, the
//! degradation ladder, bounded protocol input, and the seeded
//! fault-injection chaos campaign that proves them — is documented in
//! `RELIABILITY.md` (injection sites audited by lint A7).

pub mod broker;
pub mod fixture;
pub mod plan_cache;
pub mod protocol;
pub mod sched;
pub mod server;
pub mod service;
pub mod stream;

pub use broker::Broker;
pub use plan_cache::{CachedPlan, PlanCache};
pub use server::{serve, ServerConfig, ServerHandle};
pub use service::{Deadline, ExecPolicy, QueryService, ServeError, ServeOutcome, ServiceStats};
pub use stream::{RegisterReport, StreamRegistry, StreamStatus, TickReport};

//! Standing continuous queries over live video streams.
//!
//! The serve-side half of `tahoma_core::continuous`: a [`StreamRegistry`]
//! holds every registered standing query, each pairing a
//! [`ContinuousExecutor`] (window state, carried decisions) with a
//! [`StreamIngest`] camera feed. A `TICK` request drives the paper's §III
//! ONGOING scenario end to end for one window slide:
//!
//! 1. the feed renders this tick's `STEP` arriving frames;
//! 2. each frame is materialized into the shared
//!    [`RepresentationStore`] through the lattice-planned transcode path
//!    (§V ingest-time materialization) — the same store ad-hoc `QUERY`
//!    traffic reads, so a standing query's NN cascades score the stored
//!    representations, not the raw frames;
//! 3. the window slides one `STEP` and only the entrants are scored,
//!    routed through `QueryService::eval_kind_pack` — the identical
//!    backend path ad-hoc queries use (per-kind thresholds, scratch
//!    pool, coalescing broker), so entrant packs from a tick can merge
//!    with concurrent ad-hoc packs into one batched GEMM call (§IV's
//!    batch pricing, across query classes).
//!
//! `DELTAS` reports the standing query's cumulative state and runs a
//! from-scratch window rescan through the same path; `agree=yes` on the
//! wire is the incremental ≡ rescan equivalence surfaced per query, which
//! the CI stream-smoke job asserts after driving real ticks.
//!
//! Frame ids are `qid << 32 | frame_idx`, so any number of streams share
//! the store without collisions; each registered query gets its own
//! deterministic stream instance (seeded from the registry seed and the
//! qid), its own camera id (`qid % 8`, addressable from SQL metadata
//! predicates), and a window advancing independently of every other
//! standing query — the ISSUE's multi-stream scenario is just two
//! `REGISTER` lines.

use crate::protocol::fnv1a64;
use crate::service::{QueryService, ServeError};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use tahoma_core::continuous::{ContinuousExecutor, TickDeltas, WindowSpec};
use tahoma_core::query::{CorpusItem, Query};
use tahoma_core::CoreError;
use tahoma_imagery::{ObjectKind, RepresentationStore, TranscodeEngine};
use tahoma_video::{IngestFrame, StreamConfig, StreamIngest};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Square raster side for rendered stream frames — matches the NN
/// fixture's corpus frames so stream and corpus ingest share the store's
/// cached transcode plan.
const SCENE_SIDE: usize = 64;

/// Synthetic capture-clock base and stride, mirroring `Corpus::synthetic`
/// so SQL timestamp predicates mean the same thing for stream items.
const STREAM_EPOCH: u64 = 1_700_000_000;
const FRAME_STRIDE_S: u64 = 30;

/// What `REGISTER` returns to the client.
#[derive(Debug, Clone)]
pub struct RegisterReport {
    /// Standing-query id, used by `TICK`/`DELTAS`.
    pub qid: u64,
    /// Stream the query was bound to.
    pub stream: String,
    /// Window width in arrivals.
    pub range: u64,
    /// Arrivals per tick.
    pub step: u64,
}

/// What one `TICK` returns: the slide's deltas plus the post-slide
/// matched-set summary (count and order-sensitive FNV over the ids, so a
/// client replaying the deltas can verify its reconstruction).
#[derive(Debug, Clone)]
pub struct TickReport {
    /// Standing-query id.
    pub qid: u64,
    /// Matched items in the window after this slide.
    pub matched: usize,
    /// `fnv1a64` over the matched ids, arrival order.
    pub sum: u64,
    /// The slide's result delta and work accounting.
    pub deltas: TickDeltas,
}

/// What `DELTAS` returns: cumulative standing-query state plus the
/// incremental-vs-rescan equivalence check run server-side.
#[derive(Debug, Clone)]
pub struct StreamStatus {
    /// Standing-query id.
    pub qid: u64,
    /// Ticks executed so far.
    pub ticks: u64,
    /// Current window coverage in arrival positions, `[start, end)`.
    pub window_start: u64,
    /// Exclusive window end.
    pub window_end: u64,
    /// Matched items currently in the window.
    pub matched: usize,
    /// Total cascade rows scored incrementally across all ticks.
    pub scored: u64,
    /// `fnv1a64` over the incrementally maintained matched ids.
    pub sum: u64,
    /// `fnv1a64` over a from-scratch rescan of the current window.
    pub rescan_sum: u64,
    /// Whether the incremental result set equals the rescan, id for id.
    pub agree: bool,
    /// Whether the standing query is quarantined: a tick evaluation
    /// failed twice in a row, the window froze at its last consistent
    /// state, and further `TICK`s are refused (re-`REGISTER` to recover).
    /// Encoded on the wire as ` state=degraded`; a degraded status skips
    /// the rescan (`rescan_sum=0`, `agree=no`).
    pub degraded: bool,
}

/// One standing query's mutable state: the window executor, its camera
/// feed, the transcode engine amortizing per-frame resize plans, and the
/// NN stores its frames materialize into.
struct StandingState {
    cx: ContinuousExecutor,
    feed: StreamIngest,
    engine: TranscodeEngine,
    /// Distinct representation stores behind the query's NN-backed kinds;
    /// every arriving frame is ingested into each (surrogate-only queries
    /// move no pixels and leave this empty).
    stores: Vec<Arc<RepresentationStore>>,
    /// Deduplicated content kinds, for broker interest registration.
    kinds: Vec<ObjectKind>,
    camera: u64,
    /// A rendered frame whose store materialization failed mid-tick; the
    /// next tick retries it before advancing the feed, so a transient
    /// ingest fault never loses a frame (the retried window is identical
    /// to the fault-free one).
    pending_frame: Option<IngestFrame>,
    /// Sticky quarantine reason: set when a tick evaluation failed twice
    /// in a row. A degraded query refuses further ticks and reports
    /// `state=degraded` via `DELTAS` (see RELIABILITY.md).
    degraded: Option<String>,
}

/// A registered standing query. Shared via `Arc` so the registry lock is
/// never held while a tick runs.
pub struct StandingQuery {
    stream_name: String,
    // One standing query's entire mutable state (window entries, stream
    // cursor, transcode engine); held across a whole tick, strictly below
    // the registry map (25) and above everything the tick reaches through
    // the service: scratch pools (30), broker (40/50/60), and store
    // ingest/fetch (65/66/70/71).
    // LOCK-ORDER: 27
    window: Mutex<StandingState>,
}

/// The server's table of standing queries. `register` binds a parsed SQL
/// query to a named stream and a RANGE/STEP window; `tick` and `status`
/// address entries by qid. All methods take `&self` — concurrent ticks of
/// *different* standing queries proceed in parallel (and coalesce in the
/// broker); ticks of the same query serialize on its state lock.
pub struct StreamRegistry {
    seed: u64,
    next_qid: AtomicU64,
    // LOCK-ORDER: 25 — registry map of standing queries; held only to
    // insert or clone an Arc, never across ingest, planning, or a tick
    // (the per-query state lock ranks above at 27).
    standing: Mutex<HashMap<u64, Arc<StandingQuery>>>,
}

impl StreamRegistry {
    /// A registry whose streams derive their frame sequences from `seed`.
    pub fn new(seed: u64) -> StreamRegistry {
        StreamRegistry {
            seed,
            next_qid: AtomicU64::new(1),
            standing: Mutex::new(HashMap::new()),
        }
    }

    /// Standing queries currently registered.
    pub fn len(&self) -> usize {
        lock(&self.standing).len()
    }

    /// True when no standing query is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Register `sql` as a standing query over the named stream with a
    /// `RANGE`/`STEP` count window. Planning happens once, here, through
    /// the service's plan cache; the selected cascades are pinned for the
    /// query's lifetime (re-registering picks up a new plan).
    pub fn register(
        &self,
        service: &QueryService,
        stream: &str,
        range: u64,
        step: u64,
        sql: &str,
    ) -> Result<RegisterReport, ServeError> {
        let query = Query::parse(sql).map_err(|e| ServeError::Query(e.to_string()))?;
        let window = WindowSpec::new(range, step).map_err(|e| ServeError::Query(e.to_string()))?;
        let mut kinds = query.content.clone();
        kinds.sort_unstable();
        kinds.dedup();
        let mut cascades = BTreeMap::new();
        if !kinds.is_empty() {
            let (plan, _) = service.plan_for(&query.content, true)?;
            for (kind, selected) in &plan.entries {
                cascades.insert(*kind, selected.cascade);
            }
        }
        let qid = self.next_qid.fetch_add(1, Ordering::Relaxed);
        // Each registration gets its own deterministic stream instance:
        // same registry seed + same registration order = same frames.
        let stream_seed = self.seed ^ qid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let config = match stream {
            "coral" => StreamConfig::coral(stream_seed),
            "jackson" => StreamConfig::jackson(stream_seed),
            other => {
                return Err(ServeError::Query(format!(
                    "unknown stream '{other}' (expected coral or jackson)"
                )))
            }
        };
        // The renderer plants the query's first content kind on positive
        // frames (a metadata-only standing query still needs pixels to
        // ingest; any kind will do).
        let scene_kind = kinds.first().copied().unwrap_or(ObjectKind::Fence);
        let cx = ContinuousExecutor::register(query, cascades, window)
            .map_err(|e| ServeError::Query(e.to_string()))?;
        let mut stores: Vec<Arc<RepresentationStore>> = Vec::new();
        for &kind in &kinds {
            if let Some(store) = service.nn_store(kind) {
                if !stores.iter().any(|s| Arc::ptr_eq(s, &store)) {
                    stores.push(store);
                }
            }
        }
        let feed = StreamIngest::new(config, scene_kind, SCENE_SIDE, qid << 32);
        let sq = Arc::new(StandingQuery {
            stream_name: stream.to_string(),
            window: Mutex::new(StandingState {
                cx,
                feed,
                engine: TranscodeEngine::new(),
                stores,
                kinds,
                camera: qid % 8,
                pending_frame: None,
                degraded: None,
            }),
        });
        lock(&self.standing).insert(qid, sq);
        Ok(RegisterReport {
            qid,
            stream: stream.to_string(),
            range,
            step,
        })
    }

    fn get(&self, qid: u64) -> Result<Arc<StandingQuery>, ServeError> {
        lock(&self.standing)
            .get(&qid)
            .cloned()
            .ok_or_else(|| ServeError::Query(format!("unknown standing query {qid}")))
    }

    /// Drive one window slide: ingest the tick's `STEP` arriving frames
    /// (render → store materialization → executor buffer), then tick the
    /// window, scoring only the entrants. Ingest tops up to the tick's
    /// window end and parks a frame whose materialization failed, so a
    /// tick that errored mid-way is simply retried with nothing lost.
    ///
    /// A failed window evaluation is retried once on the spot — the
    /// executor's tick is failure-atomic, so the retry replays the
    /// identical slide. If the retry also fails, the standing query is
    /// quarantined: its window freezes at the last consistent state,
    /// further `TICK`s answer an explicit `DEGRADED` error, and `DELTAS`
    /// reports `state=degraded` (the degradation ladder, RELIABILITY.md).
    pub fn tick(&self, service: &QueryService, qid: u64) -> Result<TickReport, ServeError> {
        let sq = self.get(qid)?;
        let mut st = lock(&sq.window);
        let st = &mut *st;
        if let Some(reason) = &st.degraded {
            return Err(ServeError::Exec(format!(
                "standing query {qid} is DEGRADED ({reason}); window frozen, re-REGISTER to recover"
            )));
        }
        let _interest = service.register_interest(&st.kinds, true);
        let need = (st.cx.ticks() + 1) * st.cx.window().step();
        while st.cx.arrived() < need {
            let arriving = match st.pending_frame.take() {
                Some(parked) => parked,
                None => st.feed.next_ingest(&mut st.engine),
            };
            for store in &st.stores {
                if let Err(e) = store.ingest(arriving.id, &arriving.image) {
                    // Park the frame: the next tick retries this exact
                    // ingest (re-appending already-written stores is
                    // idempotent — last record wins).
                    st.pending_frame = Some(arriving);
                    return Err(ServeError::Exec(format!("stream ingest: {e}")));
                }
            }
            let item = corpus_item(&arriving, st.feed.kind(), st.camera, &sq.stream_name);
            st.cx.ingest(item);
        }
        let mut retried = false;
        let deltas = loop {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                st.cx.tick(|kind, cascade, pack| {
                    // FAULT: one window evaluation dies (transient); the
                    // failure-atomic tick makes the in-place retry replay
                    // the identical slide.
                    if let Some(e) = tahoma_faults::transient_io(tahoma_faults::site::STREAM_TICK) {
                        return Err(CoreError::Window(format!("injected tick fault: {e}")));
                    }
                    service
                        .eval_kind_pack(kind, cascade, pack, true)
                        .map_err(|e| CoreError::Window(e.to_string()))
                })
            }));
            let failure = match attempt {
                Ok(Ok(d)) => break d,
                Ok(Err(e)) => e.to_string(),
                Err(_) => "window evaluation panicked".to_string(),
            };
            if !retried {
                retried = true;
                continue;
            }
            st.degraded = Some(failure.clone());
            return Err(ServeError::Exec(format!(
                "standing query {qid} DEGRADED: {failure} (tick failed twice; window frozen, \
                 re-REGISTER to recover)"
            )));
        };
        let matched = st.cx.matched();
        Ok(TickReport {
            qid,
            matched: matched.len(),
            sum: fnv1a64(&matched),
            deltas,
        })
    }

    /// Report a standing query's cumulative state and verify, server-side,
    /// that the incrementally maintained result set equals a from-scratch
    /// rescan of the current window through the same backend path.
    pub fn status(&self, service: &QueryService, qid: u64) -> Result<StreamStatus, ServeError> {
        let sq = self.get(qid)?;
        let st = lock(&sq.window);
        let _interest = service.register_interest(&st.kinds, true);
        let matched = st.cx.matched();
        // A quarantined query skips the rescan (the backend that failed
        // its ticks would likely fail it too) and reports itself
        // explicitly instead: state=degraded, agree=no.
        let (rescan_sum, agree) = if st.degraded.is_some() {
            (0, false)
        } else {
            let rescan = st
                .cx
                .rescan(|kind, cascade, pack| {
                    service
                        .eval_kind_pack(kind, cascade, pack, true)
                        .map_err(|e| CoreError::Window(e.to_string()))
                })
                .map_err(|e| ServeError::Exec(e.to_string()))?;
            (fnv1a64(&rescan), matched == rescan)
        };
        let ticks = st.cx.ticks();
        let window_end = ticks * st.cx.window().step();
        let window_start = window_end.saturating_sub(st.cx.window().range());
        Ok(StreamStatus {
            qid,
            ticks,
            window_start,
            window_end,
            matched: matched.len(),
            scored: st.cx.scored_total(),
            sum: fnv1a64(&matched),
            rescan_sum,
            agree,
            degraded: st.degraded.is_some(),
        })
    }
}

/// An arriving frame as a corpus item: ground truth comes from the stream
/// (the renderer planted `kind` iff the frame is positive), metadata from
/// the standing query's camera identity and the synthetic capture clock.
fn corpus_item(f: &IngestFrame, kind: ObjectKind, camera: u64, location: &str) -> CorpusItem {
    CorpusItem {
        id: f.id,
        location: location.to_string(),
        camera,
        timestamp: STREAM_EPOCH + f.frame.idx * FRAME_STRIDE_S,
        objects: if f.frame.label {
            vec![kind]
        } else {
            Vec::new()
        },
        difficulty: f.frame.difficulty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::surrogate_service;

    #[test]
    fn register_tick_deltas_reconstruct_and_rescan_agrees() {
        let service = surrogate_service(&[ObjectKind::Fence], 64, 0x5EED);
        let registry = StreamRegistry::new(0xCAFE);
        let r = registry
            .register(
                &service,
                "coral",
                12,
                4,
                "SELECT * FROM frames WHERE contains_object(fence)",
            )
            .expect("registers");
        assert_eq!((r.range, r.step), (12, 4));
        let mut rebuilt: Vec<u64> = Vec::new();
        for tick in 1..=6u64 {
            let t = registry.tick(&service, r.qid).expect("ticks");
            assert_eq!(t.deltas.tick, tick);
            rebuilt.retain(|id| !t.deltas.removed.contains(id));
            rebuilt.extend(&t.deltas.added);
            assert_eq!(rebuilt.len(), t.matched, "tick {tick}");
            assert_eq!(fnv1a64(&rebuilt), t.sum, "tick {tick} delta replay");
        }
        let s = registry.status(&service, r.qid).expect("status");
        assert_eq!(s.ticks, 6);
        assert_eq!((s.window_start, s.window_end), (12, 24));
        assert!(s.agree, "incremental != rescan");
        assert_eq!(s.sum, fnv1a64(&rebuilt));
        assert_eq!(s.sum, s.rescan_sum);
        // Incremental work is bounded by arrivals, not ticks * RANGE.
        assert!(s.scored <= 24);
    }

    #[test]
    fn two_streams_same_predicate_have_independent_windows() {
        let service = surrogate_service(&[ObjectKind::Fence], 64, 0x5EED);
        let registry = StreamRegistry::new(0xD1CE);
        let sql = "SELECT * FROM frames WHERE contains_object(fence)";
        let a = registry.register(&service, "coral", 8, 4, sql).expect("a");
        let b = registry
            .register(&service, "jackson", 16, 2, sql)
            .expect("b");
        assert_ne!(a.qid, b.qid);
        registry.tick(&service, a.qid).expect("a tick");
        let tb = registry.tick(&service, b.qid).expect("b tick");
        assert_eq!(tb.deltas.window_end, 2, "b's window advances alone");
        // Disjoint id spaces: b's ids carry its qid in the high bits.
        for id in &tb.deltas.added {
            assert_eq!(id >> 32, b.qid);
        }
        let sa = registry.status(&service, a.qid).expect("a status");
        let sb = registry.status(&service, b.qid).expect("b status");
        assert!(sa.agree && sb.agree);
        assert_eq!(sa.ticks, 1);
        assert_eq!(sb.window_end, 2);
    }

    #[test]
    fn bad_registrations_and_unknown_qids_error() {
        let service = surrogate_service(&[ObjectKind::Fence], 32, 1);
        let registry = StreamRegistry::new(0);
        let sql = "SELECT * FROM frames WHERE contains_object(fence)";
        assert!(registry.register(&service, "nosuch", 4, 2, sql).is_err());
        assert!(registry.register(&service, "coral", 0, 2, sql).is_err());
        assert!(registry
            .register(&service, "coral", 4, 2, "not sql at all")
            .is_err());
        assert!(registry
            .register(
                &service,
                "coral",
                4,
                2,
                "SELECT * FROM frames WHERE contains_object(acorn)"
            )
            .is_err());
        assert!(registry.tick(&service, 99).is_err());
        assert!(registry.status(&service, 99).is_err());
    }
}

//! TCP front end: fixed worker pool, bounded accept queue, load shedding.
//!
//! Admission control is deliberately simple and explicit: `workers`
//! threads each serve one connection at a time, and at most `queue_cap`
//! accepted connections wait in line. A connection arriving beyond that
//! gets a one-line `BUSY` and is closed — the server sheds load instead
//! of queueing without bound, so latency under overload stays flat for
//! the queries it does admit (and the shed count is visible via `STATS`).
//!
//! Shutdown is cooperative: any client sending `SHUTDOWN` gets `BYE`, the
//! stop flag flips, the acceptor is unblocked by a self-connection, and
//! every worker drains its current connection before exiting.
//! [`ServerHandle::join`] returns once all of that has happened.

use crate::protocol::{
    encode_outcome, encode_register, encode_serve_error, encode_stats, encode_stream_status,
    encode_tick, parse_request, Request,
};
use crate::service::{Deadline, ExecPolicy, QueryService, ServeError};
use crate::stream::StreamRegistry;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Connection-serving worker threads.
    pub workers: usize,
    /// Bounded accept queue: connections waiting beyond this are shed
    /// with `BUSY`.
    pub queue_cap: usize,
    /// Seed for the standing-query stream registry: registered streams
    /// derive their deterministic frame sequences from it, so two servers
    /// booted with the same seed serve identical streams.
    pub stream_seed: u64,
    /// Server-side deadline applied to every plain `QUERY`/`QUERYU` that
    /// the client did not wrap in an explicit `DEADLINE` verb. `None`
    /// (the default) leaves ad-hoc queries unbounded, matching the
    /// pre-deadline wire behaviour byte for byte.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 32,
            stream_seed: 0x57AE,
            default_deadline_ms: None,
        }
    }
}

/// Longest accepted request line in bytes, excluding the terminating
/// newline. Anything longer is answered with a one-line `ERR` and the
/// remainder of the oversized line is discarded so the connection resyncs
/// at the next newline — a client (or fuzzer) streaming garbage can never
/// grow server memory past this bound.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

struct Shared {
    service: Arc<QueryService>,
    streams: StreamRegistry,
    // LOCK-ORDER: 10 — held only to push/pop connections; query execution
    // (and every deeper lock) runs strictly after the guard is dropped.
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    queue_cap: usize,
    stop: AtomicBool,
    shed: AtomicU64,
    default_deadline_ms: Option<u64>,
}

/// A running server; dropping the handle does NOT stop it — send
/// `SHUTDOWN` (or call [`ServerHandle::shutdown`]) and [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections shed with `BUSY` so far.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Request shutdown from the owning process (equivalent to a client
    /// `SHUTDOWN`).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
    }

    /// Wait for the acceptor and every worker to exit.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Start serving `service` per `config`. Returns once the listener is
/// bound and the workers are up.
pub fn serve(service: Arc<QueryService>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        service,
        streams: StreamRegistry::new(config.stream_seed),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        queue_cap: config.queue_cap.max(1),
        stop: AtomicBool::new(false),
        shed: AtomicU64::new(0),
        default_deadline_ms: config.default_deadline_ms,
    });
    let mut threads = Vec::with_capacity(config.workers + 1);
    let mut spawn = |name: String, f: Box<dyn FnOnce() + Send>| -> std::io::Result<()> {
        threads.push(std::thread::Builder::new().name(name).spawn(f)?);
        Ok(())
    };
    let boot = || -> std::io::Result<()> {
        for i in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            spawn(
                format!("tahoma-serve-{i}"),
                Box::new(move || worker_loop(&shared)),
            )?;
        }
        let shared = Arc::clone(&shared);
        spawn(
            "tahoma-serve-accept".to_string(),
            Box::new(move || accept_loop(&listener, &shared)),
        )
    };
    if let Err(e) = boot() {
        // Partial boot: stop whatever did spawn before surfacing the
        // error, so no orphan worker outlives the failed `serve` call.
        shared.stop.store(true, Ordering::SeqCst);
        shared.queue_cv.notify_all();
        return Err(e);
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if q.len() >= shared.queue_cap {
            drop(q);
            shared.shed.fetch_add(1, Ordering::Relaxed);
            let mut s = stream;
            let _ = s.write_all(b"BUSY\n");
            continue;
        }
        q.push_back(stream);
        drop(q);
        shared.queue_cv.notify_one();
    }
    // Wake every worker so they observe `stop`.
    shared.queue_cv.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        };
        let Some(stream) = stream else { return };
        serve_connection(stream, shared);
        if shared.stop.load(Ordering::SeqCst) {
            // Drain whatever is already queued, then exit.
            let empty = shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty();
            if empty {
                shared.queue_cv.notify_all();
                return;
            }
        }
    }
}

/// One bounded read from the wire.
enum ReadLine {
    /// A complete, UTF-8-valid line within [`MAX_LINE_BYTES`].
    Line(String),
    /// The line overran [`MAX_LINE_BYTES`]; the overflow was discarded up
    /// to (and including) the next newline, so the stream is resynced.
    TooLong,
    /// Bytes arrived but they were not valid UTF-8.
    NotUtf8,
    /// EOF or a non-retryable read error: drop the connection.
    Closed,
}

/// Read one newline-terminated line without ever buffering more than
/// [`MAX_LINE_BYTES`] of it — the bounded-input replacement for
/// `BufRead::lines`, which would happily grow a `String` as fast as a
/// hostile client can stream bytes.
fn read_bounded_line<R: BufRead>(reader: &mut R) -> ReadLine {
    let mut buf: Vec<u8> = Vec::new();
    let mut over = false;
    loop {
        // FAULT: the client connection drops mid-request; the worker must
        // abandon the line and recycle cleanly, never block or panic.
        if tahoma_faults::fire(tahoma_faults::site::PROTO_READ) {
            return ReadLine::Closed;
        }
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadLine::Closed,
        };
        if available.is_empty() {
            // EOF. A partial final line (no trailing newline) is served if
            // intact; an oversized one was already discarded.
            return match (over, buf.is_empty()) {
                (true, _) => ReadLine::TooLong,
                (false, true) => ReadLine::Closed,
                (false, false) => finish_line(buf),
            };
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            if !over && buf.len() + pos <= MAX_LINE_BYTES {
                buf.extend_from_slice(&available[..pos]);
            } else {
                over = true;
            }
            reader.consume(pos + 1);
            return if over {
                ReadLine::TooLong
            } else {
                finish_line(buf)
            };
        }
        let n = available.len();
        if !over && buf.len() + n <= MAX_LINE_BYTES {
            buf.extend_from_slice(available);
        } else {
            over = true;
        }
        reader.consume(n);
    }
}

fn finish_line(buf: Vec<u8>) -> ReadLine {
    match String::from_utf8(buf) {
        Ok(mut line) => {
            if line.ends_with('\r') {
                line.pop();
            }
            ReadLine::Line(line)
        }
        Err(_) => ReadLine::NotUtf8,
    }
}

/// Write one response line. Injection point for a client that vanished
/// between request and response.
fn respond(writer: &mut TcpStream, response: &str) -> std::io::Result<()> {
    // FAULT: the response write fails (peer reset / partial write); the
    // worker drops the connection and moves on.
    if let Some(e) = tahoma_faults::transient_io(tahoma_faults::site::PROTO_WRITE) {
        return Err(e);
    }
    writer.write_all(format!("{response}\n").as_bytes())
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let Ok(peer_read) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer_read);
    let mut writer = stream;
    loop {
        let line = match read_bounded_line(&mut reader) {
            ReadLine::Closed => break,
            ReadLine::TooLong => {
                let msg = format!("ERR request line exceeds {MAX_LINE_BYTES} bytes");
                if respond(&mut writer, &msg).is_err() {
                    break;
                }
                continue;
            }
            ReadLine::NotUtf8 => {
                if respond(&mut writer, "ERR request is not valid UTF-8").is_err() {
                    break;
                }
                continue;
            }
            ReadLine::Line(line) => line,
        };
        // FAULT: a stalled peer (or scheduler hiccup) delays the worker
        // between read and dispatch — surfaces queue/deadline interplay.
        tahoma_faults::stall(tahoma_faults::site::PROTO_STALL);
        let response = match parse_request(&line) {
            Err(e) => format!("ERR {e}"),
            Ok(Request::Ping) => "PONG".to_string(),
            Ok(Request::Stats) => {
                encode_stats(&shared.service.stats(), shared.shed.load(Ordering::Relaxed))
            }
            Ok(Request::Shutdown) => {
                let _ = respond(&mut writer, "BYE");
                shared.stop.store(true, Ordering::SeqCst);
                // Self-kick: unblock the acceptor so it re-checks `stop`.
                if let Ok(addr) = writer.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                shared.queue_cv.notify_all();
                return;
            }
            Ok(Request::Query(sql)) => run_query(
                shared,
                &sql,
                ExecPolicy {
                    deadline: shared.default_deadline_ms.map(Deadline::in_ms),
                    ..ExecPolicy::default()
                },
            ),
            Ok(Request::QueryUncached(sql)) => run_query(
                shared,
                &sql,
                ExecPolicy {
                    use_plan_cache: false,
                    coalesce: false,
                    deadline: shared.default_deadline_ms.map(Deadline::in_ms),
                },
            ),
            Ok(Request::Deadline { ms, inner }) => {
                let deadline = Some(Deadline::in_ms(ms));
                match *inner {
                    Request::Query(sql) => run_query(
                        shared,
                        &sql,
                        ExecPolicy {
                            deadline,
                            ..ExecPolicy::default()
                        },
                    ),
                    Request::QueryUncached(sql) => run_query(
                        shared,
                        &sql,
                        ExecPolicy {
                            use_plan_cache: false,
                            coalesce: false,
                            deadline,
                        },
                    ),
                    // The parser only wraps QUERY/QUERYU; anything else here
                    // is a protocol bug, answered rather than panicked on.
                    _ => "ERR DEADLINE wraps QUERY or QUERYU only".to_string(),
                }
            }
            Ok(Request::Register {
                stream,
                range,
                step,
                sql,
            }) => guarded(|| {
                shared
                    .streams
                    .register(&shared.service, &stream, range, step, &sql)
                    .map(|r| encode_register(&r))
            }),
            Ok(Request::Tick(qid)) => guarded(|| {
                shared
                    .streams
                    .tick(&shared.service, qid)
                    .map(|t| encode_tick(&t))
            }),
            Ok(Request::Deltas(qid)) => guarded(|| {
                shared
                    .streams
                    .status(&shared.service, qid)
                    .map(|s| encode_stream_status(&s))
            }),
        };
        if respond(&mut writer, &response).is_err() {
            break;
        }
    }
}

fn run_query(shared: &Shared, sql: &str, policy: ExecPolicy) -> String {
    guarded(|| {
        shared
            .service
            .execute_with(sql, policy)
            .map(|o| encode_outcome(&o))
    })
}

/// Run one request handler, turning typed errors — and panics, which must
/// not take the worker thread down (a scoring panic is a deployment
/// misconfiguration, not a serving failure) — into single response lines.
/// [`ServeError::Timeout`] gets its own `TIMEOUT` verb via
/// [`encode_serve_error`]; everything else collapses to `ERR`.
fn guarded<F>(f: F) -> String
where
    F: FnOnce() -> Result<String, ServeError>,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(line)) => line,
        Ok(Err(e)) => encode_serve_error(&e),
        Err(_) => "ERR internal: request execution panicked".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::{finish_line, read_bounded_line, ReadLine, MAX_LINE_BYTES};
    use std::io::Cursor;

    fn read_all(bytes: &[u8]) -> Vec<ReadLine> {
        let mut reader = Cursor::new(bytes.to_vec());
        let mut out = Vec::new();
        loop {
            match read_bounded_line(&mut reader) {
                ReadLine::Closed => return out,
                other => out.push(other),
            }
        }
    }

    fn as_line(r: &ReadLine) -> Option<&str> {
        match r {
            ReadLine::Line(s) => Some(s),
            _ => None,
        }
    }

    #[test]
    fn short_lines_pass_through_and_crlf_is_stripped() {
        let got = read_all(b"PING\r\nSTATS\nlast-without-newline");
        assert_eq!(got.len(), 3);
        assert_eq!(as_line(&got[0]), Some("PING"));
        assert_eq!(as_line(&got[1]), Some("STATS"));
        assert_eq!(as_line(&got[2]), Some("last-without-newline"));
    }

    #[test]
    fn oversized_line_is_rejected_and_stream_resyncs() {
        let mut bytes = vec![b'x'; MAX_LINE_BYTES + 1];
        bytes.push(b'\n');
        bytes.extend_from_slice(b"PING\n");
        let got = read_all(&bytes);
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0], ReadLine::TooLong));
        assert_eq!(as_line(&got[1]), Some("PING"));
    }

    #[test]
    fn exactly_max_bytes_is_still_a_line() {
        let mut bytes = vec![b'y'; MAX_LINE_BYTES];
        bytes.push(b'\n');
        let got = read_all(&bytes);
        assert_eq!(got.len(), 1);
        assert_eq!(as_line(&got[0]).map(str::len), Some(MAX_LINE_BYTES));
    }

    #[test]
    fn oversized_line_truncated_by_eof_is_still_too_long() {
        let bytes = vec![b'z'; MAX_LINE_BYTES + 100];
        let got = read_all(&bytes);
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0], ReadLine::TooLong));
    }

    #[test]
    fn invalid_utf8_is_flagged_without_killing_the_connection() {
        let got = read_all(b"\xff\xfe garbage\nPING\n");
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0], ReadLine::NotUtf8));
        assert_eq!(as_line(&got[1]), Some("PING"));
    }

    #[test]
    fn finish_line_strips_one_trailing_cr_only() {
        match finish_line(b"a\r\r".to_vec()) {
            ReadLine::Line(s) => assert_eq!(s, "a\r"),
            _ => panic!("expected a line"),
        }
    }
}

//! TCP front end: fixed worker pool, bounded accept queue, load shedding.
//!
//! Admission control is deliberately simple and explicit: `workers`
//! threads each serve one connection at a time, and at most `queue_cap`
//! accepted connections wait in line. A connection arriving beyond that
//! gets a one-line `BUSY` and is closed — the server sheds load instead
//! of queueing without bound, so latency under overload stays flat for
//! the queries it does admit (and the shed count is visible via `STATS`).
//!
//! Shutdown is cooperative: any client sending `SHUTDOWN` gets `BYE`, the
//! stop flag flips, the acceptor is unblocked by a self-connection, and
//! every worker drains its current connection before exiting.
//! [`ServerHandle::join`] returns once all of that has happened.

use crate::protocol::{
    encode_outcome, encode_register, encode_stats, encode_stream_status, encode_tick,
    parse_request, Request,
};
use crate::service::{ExecPolicy, QueryService};
use crate::stream::StreamRegistry;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Connection-serving worker threads.
    pub workers: usize,
    /// Bounded accept queue: connections waiting beyond this are shed
    /// with `BUSY`.
    pub queue_cap: usize,
    /// Seed for the standing-query stream registry: registered streams
    /// derive their deterministic frame sequences from it, so two servers
    /// booted with the same seed serve identical streams.
    pub stream_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 32,
            stream_seed: 0x57AE,
        }
    }
}

struct Shared {
    service: Arc<QueryService>,
    streams: StreamRegistry,
    // LOCK-ORDER: 10 — held only to push/pop connections; query execution
    // (and every deeper lock) runs strictly after the guard is dropped.
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    queue_cap: usize,
    stop: AtomicBool,
    shed: AtomicU64,
}

/// A running server; dropping the handle does NOT stop it — send
/// `SHUTDOWN` (or call [`ServerHandle::shutdown`]) and [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections shed with `BUSY` so far.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Request shutdown from the owning process (equivalent to a client
    /// `SHUTDOWN`).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
    }

    /// Wait for the acceptor and every worker to exit.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Start serving `service` per `config`. Returns once the listener is
/// bound and the workers are up.
pub fn serve(service: Arc<QueryService>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        service,
        streams: StreamRegistry::new(config.stream_seed),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        queue_cap: config.queue_cap.max(1),
        stop: AtomicBool::new(false),
        shed: AtomicU64::new(0),
    });
    let mut threads = Vec::with_capacity(config.workers + 1);
    let mut spawn = |name: String, f: Box<dyn FnOnce() + Send>| -> std::io::Result<()> {
        threads.push(std::thread::Builder::new().name(name).spawn(f)?);
        Ok(())
    };
    let boot = || -> std::io::Result<()> {
        for i in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            spawn(
                format!("tahoma-serve-{i}"),
                Box::new(move || worker_loop(&shared)),
            )?;
        }
        let shared = Arc::clone(&shared);
        spawn(
            "tahoma-serve-accept".to_string(),
            Box::new(move || accept_loop(&listener, &shared)),
        )
    };
    if let Err(e) = boot() {
        // Partial boot: stop whatever did spawn before surfacing the
        // error, so no orphan worker outlives the failed `serve` call.
        shared.stop.store(true, Ordering::SeqCst);
        shared.queue_cv.notify_all();
        return Err(e);
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if q.len() >= shared.queue_cap {
            drop(q);
            shared.shed.fetch_add(1, Ordering::Relaxed);
            let mut s = stream;
            let _ = s.write_all(b"BUSY\n");
            continue;
        }
        q.push_back(stream);
        drop(q);
        shared.queue_cv.notify_one();
    }
    // Wake every worker so they observe `stop`.
    shared.queue_cv.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        };
        let Some(stream) = stream else { return };
        serve_connection(stream, shared);
        if shared.stop.load(Ordering::SeqCst) {
            // Drain whatever is already queued, then exit.
            let empty = shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty();
            if empty {
                shared.queue_cv.notify_all();
                return;
            }
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let Ok(peer_read) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(peer_read);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let response = match parse_request(&line) {
            Err(e) => format!("ERR {e}"),
            Ok(Request::Ping) => "PONG".to_string(),
            Ok(Request::Stats) => {
                encode_stats(&shared.service.stats(), shared.shed.load(Ordering::Relaxed))
            }
            Ok(Request::Shutdown) => {
                let _ = writer.write_all(b"BYE\n");
                shared.stop.store(true, Ordering::SeqCst);
                // Self-kick: unblock the acceptor so it re-checks `stop`.
                if let Ok(addr) = writer.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                shared.queue_cv.notify_all();
                return;
            }
            Ok(Request::Query(sql)) => run_query(shared, &sql, ExecPolicy::default()),
            Ok(Request::QueryUncached(sql)) => run_query(
                shared,
                &sql,
                ExecPolicy {
                    use_plan_cache: false,
                    coalesce: false,
                },
            ),
            Ok(Request::Register {
                stream,
                range,
                step,
                sql,
            }) => guarded(|| {
                shared
                    .streams
                    .register(&shared.service, &stream, range, step, &sql)
                    .map(|r| encode_register(&r))
            }),
            Ok(Request::Tick(qid)) => guarded(|| {
                shared
                    .streams
                    .tick(&shared.service, qid)
                    .map(|t| encode_tick(&t))
            }),
            Ok(Request::Deltas(qid)) => guarded(|| {
                shared
                    .streams
                    .status(&shared.service, qid)
                    .map(|s| encode_stream_status(&s))
            }),
        };
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .is_err()
        {
            break;
        }
    }
}

fn run_query(shared: &Shared, sql: &str, policy: ExecPolicy) -> String {
    guarded(|| {
        shared
            .service
            .execute_with(sql, policy)
            .map(|o| encode_outcome(&o))
    })
}

/// Run one request handler, turning typed errors — and panics, which must
/// not take the worker thread down (a scoring panic is a deployment
/// misconfiguration, not a serving failure) — into `ERR` lines.
fn guarded<F, E>(f: F) -> String
where
    F: FnOnce() -> Result<String, E>,
    E: std::fmt::Display,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(line)) => line,
        Ok(Err(e)) => format!("ERR {e}"),
        Err(_) => "ERR internal: request execution panicked".to_string(),
    }
}

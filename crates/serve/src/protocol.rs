//! The wire protocol: UTF-8 lines over TCP, one request per line.
//!
//! Requests:
//!
//! ```text
//! QUERY <sql>          execute under the service's default policy
//! QUERYU <sql>         execute uncached/uncoalesced (A/B baseline)
//! DEADLINE <ms> <QUERY|QUERYU ...>
//!                      execute with a server-side budget: past <ms>
//!                      milliseconds the query stops at the next predicate
//!                      boundary and answers TIMEOUT instead of OK
//! REGISTER <stream> RANGE <n> STEP <n> <sql>
//!                      register a standing continuous query over a live
//!                      stream (coral | jackson) with a sliding count
//!                      window; returns its qid
//! TICK <qid>           ingest the standing query's next STEP frames and
//!                      slide its window once; returns the result delta
//! DELTAS <qid>         cumulative standing-query state + server-side
//!                      incremental-vs-rescan equivalence check
//! PING                 liveness probe
//! STATS                service counters
//! SHUTDOWN             stop the server (connection gets BYE first)
//! ```
//!
//! Responses (one line each):
//!
//! ```text
//! OK n=<matches> survivors=<m> plan=<hit|miss> sum=<fnv64 of ids, hex>
//!    [degraded=<n>]    (only when n > 0: pack slots served through the
//!                       quarantine fallback — results still exact)
//! OK qid=<id> stream=<name> range=<n> step=<n>     (REGISTER)
//! OK qid=<id> tick=<t> window=<s>..<e> matched=<m> entered=<n> \
//!    scored=<n> sum=<hex> added=<ids|-> removed=<ids|->   (TICK)
//! OK qid=<id> ticks=<t> window=<s>..<e> matched=<m> scored=<n> \
//!    sum=<hex> rescan=<hex> agree=<yes|no> [state=degraded]  (DELTAS)
//! OK queries=... plan_hits=... plan_misses=... broker_calls=... \
//!    broker_merged=... broker_rows=... shed=... retries=... \
//!    timeouts=... degraded_fetches=... quarantined=... \
//!    broker_failovers=...                             (STATS)
//! PONG
//! BYE
//! BUSY                 shed at admission (queue full); retry later
//! TIMEOUT budget_ms=<n>   deadline expired (clean stop, not a failure)
//! ERR <message>
//! ```
//!
//! `sum` is an order-sensitive FNV-1a 64 over the matched ids, so clients
//! (and the CI smoke jobs) can verify that every replica of a query —
//! serial, concurrent, coalesced, or a standing window reconstructed
//! tick-by-tick from `added`/`removed` deltas — produced identical
//! results without shipping the id list. (`TICK` does ship the delta ids:
//! they are the standing query's output.)

use crate::service::{ServeOutcome, ServiceStats};
use crate::stream::{RegisterReport, StreamStatus, TickReport};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Execute SQL under the default policy.
    Query(String),
    /// Execute SQL with plan cache and coalescing disabled.
    QueryUncached(String),
    /// Execute the wrapped query under a millisecond budget.
    Deadline {
        /// Budget in milliseconds.
        ms: u64,
        /// The wrapped request (`Query` or `QueryUncached` only).
        inner: Box<Request>,
    },
    /// Register a standing continuous query over a live stream.
    Register {
        /// Stream name (`coral` or `jackson`).
        stream: String,
        /// Window width in arrivals.
        range: u64,
        /// Arrivals per tick.
        step: u64,
        /// The standing SQL query.
        sql: String,
    },
    /// Slide a standing query's window one step.
    Tick(u64),
    /// Report a standing query's cumulative state.
    Deltas(u64),
    /// Liveness probe.
    Ping,
    /// Service counters.
    Stats,
    /// Stop the server.
    Shutdown,
}

/// Parse one request line. Errors are human-readable and become `ERR`
/// responses verbatim.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "QUERY" if !rest.is_empty() => Ok(Request::Query(rest.to_string())),
        "QUERYU" if !rest.is_empty() => Ok(Request::QueryUncached(rest.to_string())),
        "QUERY" | "QUERYU" => Err("empty query".to_string()),
        "DEADLINE" => parse_deadline(rest),
        "REGISTER" => parse_register(rest),
        "TICK" => parse_qid(rest).map(Request::Tick),
        "DELTAS" => parse_qid(rest).map(Request::Deltas),
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "" => Err("empty request".to_string()),
        other => Err(format!("unknown verb {other}")),
    }
}

/// Split the leading whitespace-delimited word off `s`.
fn split_word(s: &str) -> Option<(&str, &str)> {
    let t = s.trim_start();
    if t.is_empty() {
        return None;
    }
    match t.split_once(char::is_whitespace) {
        Some((w, rest)) => Some((w, rest)),
        None => Some((t, "")),
    }
}

fn parse_register(rest: &str) -> Result<Request, String> {
    const USAGE: &str = "usage: REGISTER <stream> RANGE <n> STEP <n> <sql>";
    let (stream, rest) = split_word(rest).ok_or(USAGE)?;
    let (kw_range, rest) = split_word(rest).ok_or(USAGE)?;
    let (range, rest) = split_word(rest).ok_or(USAGE)?;
    let (kw_step, rest) = split_word(rest).ok_or(USAGE)?;
    let (step, sql) = split_word(rest).ok_or(USAGE)?;
    if !kw_range.eq_ignore_ascii_case("RANGE") || !kw_step.eq_ignore_ascii_case("STEP") {
        return Err(USAGE.to_string());
    }
    let range: u64 = range.parse().map_err(|_| format!("bad RANGE '{range}'"))?;
    let step: u64 = step.parse().map_err(|_| format!("bad STEP '{step}'"))?;
    let sql = sql.trim();
    if sql.is_empty() {
        return Err("empty standing query".to_string());
    }
    Ok(Request::Register {
        stream: stream.to_string(),
        range,
        step,
        sql: sql.to_string(),
    })
}

fn parse_deadline(rest: &str) -> Result<Request, String> {
    const USAGE: &str = "usage: DEADLINE <ms> <QUERY|QUERYU ...>";
    let (ms, inner_line) = split_word(rest).ok_or(USAGE)?;
    let ms: u64 = ms.parse().map_err(|_| format!("bad deadline '{ms}' ms"))?;
    if ms == 0 {
        return Err("deadline must be >= 1 ms".to_string());
    }
    match parse_request(inner_line)? {
        inner @ (Request::Query(_) | Request::QueryUncached(_)) => Ok(Request::Deadline {
            ms,
            inner: Box::new(inner),
        }),
        _ => Err("DEADLINE wraps QUERY or QUERYU only".to_string()),
    }
}

fn parse_qid(rest: &str) -> Result<u64, String> {
    rest.trim()
        .parse()
        .map_err(|_| format!("bad standing-query id '{}'", rest.trim()))
}

/// Order-sensitive FNV-1a 64 over a sequence of ids.
pub fn fnv1a64(ids: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &id in ids {
        for byte in id.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Encode a successful query outcome. The `degraded=` field only appears
/// when the query actually degraded, so healthy responses are unchanged
/// byte for byte.
pub fn encode_outcome(out: &ServeOutcome) -> String {
    let mut line = format!(
        "OK n={} survivors={} plan={} sum={:016x}",
        out.matched_ids.len(),
        out.metadata_survivors,
        if out.plan_hit { "hit" } else { "miss" },
        fnv1a64(&out.matched_ids),
    );
    if out.degraded > 0 {
        line.push_str(&format!(" degraded={}", out.degraded));
    }
    line
}

/// Encode a service error: an expired deadline gets its own well-formed
/// `TIMEOUT` response (a clean stop, distinguishable from failure);
/// everything else is an `ERR` line.
pub fn encode_serve_error(e: &crate::service::ServeError) -> String {
    match e {
        crate::service::ServeError::Timeout { budget_ms } => {
            format!("TIMEOUT budget_ms={budget_ms}")
        }
        other => format!("ERR {other}"),
    }
}

/// Comma-joined id list, `-` when empty (so the line always has the same
/// field count).
fn encode_ids(ids: &[u64]) -> String {
    if ids.is_empty() {
        "-".to_string()
    } else {
        ids.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
    }
}

/// Encode a successful `REGISTER`.
pub fn encode_register(r: &RegisterReport) -> String {
    format!(
        "OK qid={} stream={} range={} step={}",
        r.qid, r.stream, r.range, r.step
    )
}

/// Encode a successful `TICK`: the slide's delta ids ride at the end of
/// the line so the fixed-position fields parse the same way every tick.
pub fn encode_tick(t: &TickReport) -> String {
    format!(
        "OK qid={} tick={} window={}..{} matched={} entered={} scored={} sum={:016x} \
         added={} removed={}",
        t.qid,
        t.deltas.tick,
        t.deltas.window_start,
        t.deltas.window_end,
        t.matched,
        t.deltas.entered,
        t.deltas.scored,
        t.sum,
        encode_ids(&t.deltas.added),
        encode_ids(&t.deltas.removed),
    )
}

/// Encode a successful `DELTAS`. The `state=degraded` marker only appears
/// on quarantined standing queries, so healthy status lines are unchanged.
pub fn encode_stream_status(s: &StreamStatus) -> String {
    let mut line = format!(
        "OK qid={} ticks={} window={}..{} matched={} scored={} sum={:016x} rescan={:016x} \
         agree={}",
        s.qid,
        s.ticks,
        s.window_start,
        s.window_end,
        s.matched,
        s.scored,
        s.sum,
        s.rescan_sum,
        if s.agree { "yes" } else { "no" },
    );
    if s.degraded {
        line.push_str(" state=degraded");
    }
    line
}

/// Encode the `STATS` response. `shed` is the server's admission-control
/// counter (the service itself never sheds).
pub fn encode_stats(stats: &ServiceStats, shed: u64) -> String {
    format!(
        "OK queries={} plan_hits={} plan_misses={} broker_calls={} broker_merged={} \
         broker_rows={} shed={} retries={} timeouts={} degraded_fetches={} quarantined={} \
         broker_failovers={}",
        stats.queries,
        stats.plan_hits,
        stats.plan_misses,
        stats.broker.calls,
        stats.broker.merged_calls,
        stats.broker.rows,
        shed,
        stats.store.retries,
        stats.timeouts,
        stats.store.degraded_fetches,
        stats.store.quarantined,
        stats.broker.failovers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_verbs_case_insensitively() {
        assert_eq!(
            parse_request("query SELECT * FROM f").unwrap(),
            Request::Query("SELECT * FROM f".into())
        );
        assert_eq!(parse_request("  PING  ").unwrap(), Request::Ping);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("NOPE x").is_err());
        assert!(parse_request("").is_err());
    }

    #[test]
    fn parses_streaming_verbs() {
        assert_eq!(
            parse_request("REGISTER coral RANGE 32 STEP 8 SELECT * FROM frames WHERE x = 1")
                .unwrap(),
            Request::Register {
                stream: "coral".into(),
                range: 32,
                step: 8,
                sql: "SELECT * FROM frames WHERE x = 1".into(),
            }
        );
        assert_eq!(
            parse_request("register jackson range 4 step 4 q").unwrap(),
            Request::Register {
                stream: "jackson".into(),
                range: 4,
                step: 4,
                sql: "q".into(),
            }
        );
        assert_eq!(parse_request("TICK 3").unwrap(), Request::Tick(3));
        assert_eq!(parse_request("DELTAS 7").unwrap(), Request::Deltas(7));
        assert!(parse_request("REGISTER coral RANGE 32 STEP 8").is_err());
        assert!(parse_request("REGISTER coral RANGE x STEP 8 q").is_err());
        assert!(parse_request("REGISTER coral STEP 8 RANGE 4 q").is_err());
        assert!(parse_request("TICK").is_err());
        assert!(parse_request("DELTAS x").is_err());
    }

    #[test]
    fn stream_encodings_are_one_line() {
        use tahoma_core::continuous::TickDeltas;
        let tick = encode_tick(&TickReport {
            qid: 2,
            matched: 2,
            sum: 0xABCD,
            deltas: TickDeltas {
                tick: 5,
                window_start: 8,
                window_end: 40,
                added: vec![3, 9],
                removed: vec![],
                matched: 2,
                entered: 8,
                scored: 8,
            },
        });
        assert_eq!(
            tick,
            "OK qid=2 tick=5 window=8..40 matched=2 entered=8 scored=8 \
             sum=000000000000abcd added=3,9 removed=-"
        );
        let mut st = StreamStatus {
            qid: 2,
            ticks: 5,
            window_start: 8,
            window_end: 40,
            matched: 2,
            scored: 40,
            sum: 1,
            rescan_sum: 1,
            agree: true,
            degraded: false,
        };
        let status = encode_stream_status(&st);
        assert!(status.ends_with("sum=0000000000000001 rescan=0000000000000001 agree=yes"));
        assert!(!tick.contains('\n') && !status.contains('\n'));
        st.degraded = true;
        assert!(encode_stream_status(&st).ends_with("agree=yes state=degraded"));
    }

    #[test]
    fn id_hash_is_order_sensitive_and_stable() {
        assert_ne!(fnv1a64(&[1, 2]), fnv1a64(&[2, 1]));
        assert_eq!(fnv1a64(&[]), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(&[1, 2, 3]), fnv1a64(&[1, 2, 3]));
    }

    #[test]
    fn outcome_encoding_is_one_line() {
        let mut out = ServeOutcome {
            matched_ids: vec![3, 5],
            metadata_survivors: 9,
            plan_hit: true,
            degraded: 0,
        };
        let line = encode_outcome(&out);
        assert!(line.starts_with("OK n=2 survivors=9 plan=hit sum="));
        assert!(!line.contains('\n'));
        assert!(!line.contains("degraded"), "healthy lines carry no marker");
        out.degraded = 3;
        assert!(encode_outcome(&out).ends_with(" degraded=3"));
    }

    #[test]
    fn deadline_wrapper_parses_and_validates() {
        assert_eq!(
            parse_request("DEADLINE 250 QUERY SELECT * FROM f").unwrap(),
            Request::Deadline {
                ms: 250,
                inner: Box::new(Request::Query("SELECT * FROM f".into())),
            }
        );
        assert_eq!(
            parse_request("deadline 9 queryu q").unwrap(),
            Request::Deadline {
                ms: 9,
                inner: Box::new(Request::QueryUncached("q".into())),
            }
        );
        assert!(parse_request("DEADLINE").is_err());
        assert!(parse_request("DEADLINE x QUERY q").is_err());
        assert!(parse_request("DEADLINE 0 QUERY q").is_err());
        assert!(parse_request("DEADLINE 5 PING").is_err());
        assert!(parse_request("DEADLINE 5 DEADLINE 5 QUERY q").is_err());
        assert!(parse_request("DEADLINE 5").is_err());
    }

    #[test]
    fn timeout_errors_get_their_own_response() {
        use crate::service::ServeError;
        assert_eq!(
            encode_serve_error(&ServeError::Timeout { budget_ms: 40 }),
            "TIMEOUT budget_ms=40"
        );
        let err = encode_serve_error(&ServeError::Query("bad sql".into()));
        assert!(err.starts_with("ERR "), "{err}");
    }
}

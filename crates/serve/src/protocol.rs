//! The wire protocol: UTF-8 lines over TCP, one request per line.
//!
//! Requests:
//!
//! ```text
//! QUERY <sql>          execute under the service's default policy
//! QUERYU <sql>         execute uncached/uncoalesced (A/B baseline)
//! PING                 liveness probe
//! STATS                service counters
//! SHUTDOWN             stop the server (connection gets BYE first)
//! ```
//!
//! Responses (one line each):
//!
//! ```text
//! OK n=<matches> survivors=<m> plan=<hit|miss> sum=<fnv64 of ids, hex>
//! OK queries=... plan_hits=... plan_misses=... broker_calls=... \
//!    broker_merged=... broker_rows=... shed=...      (STATS)
//! PONG
//! BYE
//! BUSY                 shed at admission (queue full); retry later
//! ERR <message>
//! ```
//!
//! `sum` is an order-sensitive FNV-1a 64 over the matched ids, so clients
//! (and the CI smoke job) can verify that every replica of a query —
//! serial, concurrent, coalesced — produced identical results without
//! shipping the id list.

use crate::service::{ServeOutcome, ServiceStats};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Execute SQL under the default policy.
    Query(String),
    /// Execute SQL with plan cache and coalescing disabled.
    QueryUncached(String),
    /// Liveness probe.
    Ping,
    /// Service counters.
    Stats,
    /// Stop the server.
    Shutdown,
}

/// Parse one request line. Errors are human-readable and become `ERR`
/// responses verbatim.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "QUERY" if !rest.is_empty() => Ok(Request::Query(rest.to_string())),
        "QUERYU" if !rest.is_empty() => Ok(Request::QueryUncached(rest.to_string())),
        "QUERY" | "QUERYU" => Err("empty query".to_string()),
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "" => Err("empty request".to_string()),
        other => Err(format!("unknown verb {other}")),
    }
}

/// Order-sensitive FNV-1a 64 over a sequence of ids.
pub fn fnv1a64(ids: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &id in ids {
        for byte in id.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Encode a successful query outcome.
pub fn encode_outcome(out: &ServeOutcome) -> String {
    format!(
        "OK n={} survivors={} plan={} sum={:016x}",
        out.matched_ids.len(),
        out.metadata_survivors,
        if out.plan_hit { "hit" } else { "miss" },
        fnv1a64(&out.matched_ids),
    )
}

/// Encode the `STATS` response. `shed` is the server's admission-control
/// counter (the service itself never sheds).
pub fn encode_stats(stats: &ServiceStats, shed: u64) -> String {
    format!(
        "OK queries={} plan_hits={} plan_misses={} broker_calls={} broker_merged={} \
         broker_rows={} shed={}",
        stats.queries,
        stats.plan_hits,
        stats.plan_misses,
        stats.broker.calls,
        stats.broker.merged_calls,
        stats.broker.rows,
        shed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_verbs_case_insensitively() {
        assert_eq!(
            parse_request("query SELECT * FROM f").unwrap(),
            Request::Query("SELECT * FROM f".into())
        );
        assert_eq!(parse_request("  PING  ").unwrap(), Request::Ping);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("NOPE x").is_err());
        assert!(parse_request("").is_err());
    }

    #[test]
    fn id_hash_is_order_sensitive_and_stable() {
        assert_ne!(fnv1a64(&[1, 2]), fnv1a64(&[2, 1]));
        assert_eq!(fnv1a64(&[]), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(&[1, 2, 3]), fnv1a64(&[1, 2, 3]));
    }

    #[test]
    fn outcome_encoding_is_one_line() {
        let line = encode_outcome(&ServeOutcome {
            matched_ids: vec![3, 5],
            metadata_survivors: 9,
            plan_hit: true,
        });
        assert!(line.starts_with("OK n=2 survivors=9 plan=hit sum="));
        assert!(!line.contains('\n'));
    }
}

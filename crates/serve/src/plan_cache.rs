//! Plan cache: memoized cascade selection keyed on (predicate set,
//! accuracy target).
//!
//! Cold planning for a query walks, per content predicate, the system's
//! precomputed cascade outcomes to build the scenario-priced Pareto
//! frontier and select the fastest cascade meeting the accuracy
//! constraint — work that is identical for every query naming the same
//! predicates at the same accuracy target. The cache stores the finished
//! plan behind an `Arc`, so a repeat query's planning phase is one
//! hash-map probe (the `query_serve` bench gates the speedup; the
//! property test in `tests/concurrency.rs` asserts a hit is identical to
//! planning from scratch).
//!
//! Keys quantize the accuracy target to millis: callers express targets
//! as "max accuracy loss" percentages and nothing in the pipeline
//! resolves finer than 0.1%, so the quantization cannot alias two
//! genuinely different targets.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use tahoma_core::pipeline::SelectedCascade;
use tahoma_imagery::ObjectKind;

/// Poison-recovering lock. A panic elsewhere in the service (a scoring
/// worker, a query thread) must not wedge the plan cache: the map holds
/// finished `Arc<CachedPlan>`s that are inserted whole, so there is no
/// partially-applied state to fear from a poisoned guard.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A fully planned query: one selected cascade per content predicate, in
/// execution order (cheapest predicate first, so the conjunction narrows
/// the survivor set before the expensive predicates run — the
/// cross-predicate analogue of planner-ordered short-circuiting).
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// Per-predicate selections, in execution order.
    pub entries: Vec<(ObjectKind, SelectedCascade)>,
}

type Key = (Vec<u8>, u32);

fn key(kinds: &[ObjectKind], acc_milli: u32) -> Key {
    let mut ks: Vec<u8> = kinds.iter().map(|k| k.index() as u8).collect();
    ks.sort_unstable();
    ks.dedup();
    (ks, acc_milli)
}

/// Concurrent (predicate set, accuracy target) → [`CachedPlan`] map.
#[derive(Default)]
pub struct PlanCache {
    // LOCK-ORDER: 20 — held only for map probes/inserts; never while
    // planning, executing, or taking any broker lock.
    map: Mutex<HashMap<Key, Arc<CachedPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Look up a plan; counts a hit or a miss.
    pub fn get(&self, kinds: &[ObjectKind], acc_milli: u32) -> Option<Arc<CachedPlan>> {
        let found = lock(&self.map).get(&key(kinds, acc_milli)).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a freshly built plan. First insertion wins: when two
    /// concurrent misses both plan (planning is deterministic, so the
    /// plans are equal), the loser adopts the winner's `Arc` — every
    /// caller ends up sharing one allocation.
    pub fn insert(
        &self,
        kinds: &[ObjectKind],
        acc_milli: u32,
        plan: CachedPlan,
    ) -> Arc<CachedPlan> {
        let mut map = lock(&self.map);
        Arc::clone(
            map.entry(key(kinds, acc_milli))
                .or_insert_with(|| Arc::new(plan)),
        )
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached plan count.
    pub fn len(&self) -> usize {
        lock(&self.map).len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_core::Cascade;

    fn plan(kinds: &[ObjectKind]) -> CachedPlan {
        CachedPlan {
            entries: kinds
                .iter()
                .map(|&k| {
                    (
                        k,
                        SelectedCascade {
                            cascade: Cascade::single(0),
                            accuracy: 0.9,
                            throughput: 100.0,
                            description: String::new(),
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn key_is_order_insensitive_and_deduped() {
        let cache = PlanCache::new();
        let ab = [ObjectKind::Acorn, ObjectKind::Fence];
        let ba = [ObjectKind::Fence, ObjectKind::Acorn, ObjectKind::Fence];
        cache.insert(&ab, 20, plan(&ab));
        assert!(cache.get(&ba, 20).is_some());
        assert!(cache.get(&ab, 21).is_none());
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn first_insert_wins() {
        let cache = PlanCache::new();
        let k = [ObjectKind::Wallet];
        let first = cache.insert(&k, 20, plan(&k));
        let second = cache.insert(&k, 20, plan(&k));
        assert!(Arc::ptr_eq(&first, &second));
    }
}

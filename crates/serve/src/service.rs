//! The shared-executor front door: one [`QueryService`] owns the corpus,
//! the representation store, and a model zoo per served predicate, and
//! executes SQL queries with `&self` from any number of threads.
//!
//! Per query, execution is the planning prefix (cascade selection per
//! content predicate — served from the [`PlanCache`] on repeat queries)
//! followed by per-predicate cascade execution through the vectorized
//! executor. Content predicates run cheapest-first over a progressively
//! narrowing survivor set: because every scoring backend is deterministic
//! per (model, item) — the NN path by batch-shape-invariant forced-GEMM
//! inference — an item pruned by one predicate can never re-enter another,
//! so narrowing changes cost, never results (the cross-predicate analogue
//! of the executor's planner-ordered short-circuiting).
//!
//! All mutable per-query state lives in scratch checked out of per-kind
//! pools; the store, zoos, thresholds, and cost tables are only ever
//! borrowed shared. Concurrent queries therefore return bitwise-identical
//! results to a serial run — with or without broker coalescing — which
//! `tests/concurrency.rs` asserts under load.

use crate::broker::{Broker, BrokerStats};
use crate::plan_cache::{CachedPlan, PlanCache};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use tahoma_core::evaluator::CostContext;
use tahoma_core::exec::{
    ExecOptions, NnSessionScratch, SharedModelZoo, SharedNnScorer, VectorizedExecutor,
};
use tahoma_core::pipeline::TahomaSystem;
use tahoma_core::query::{Corpus, CorpusItem, Query, QueryProcessor};
use tahoma_core::thresholds::ThresholdTable;
use tahoma_core::{Cascade, Constraints, SurrogateBatchScorer};
use tahoma_costmodel::AnalyticProfiler;
use tahoma_imagery::{ObjectKind, RepresentationStore};
use tahoma_zoo::SurrogateScorer;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Per-query execution switches (the protocol exposes them for A/B runs;
/// the defaults are what a production front door would run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Serve repeat plans from the [`PlanCache`].
    pub use_plan_cache: bool,
    /// Route NN inference through the coalescing [`Broker`].
    pub coalesce: bool,
    /// Server-side execution budget: past this deadline the query stops at
    /// the next predicate boundary with [`ServeError::Timeout`] (the
    /// protocol's `DEADLINE` wrapper and the server's default budget both
    /// land here; policy in RELIABILITY.md). `None` = unbounded.
    pub deadline: Option<Deadline>,
}

impl Default for ExecPolicy {
    fn default() -> ExecPolicy {
        ExecPolicy {
            use_plan_cache: true,
            coalesce: true,
            deadline: None,
        }
    }
}

/// A query's execution budget: the absolute expiry instant plus the
/// original budget (kept so the `TIMEOUT` response can say what ran out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    /// Absolute expiry.
    pub at: std::time::Instant,
    /// The budget this deadline was derived from, in milliseconds.
    pub budget_ms: u64,
}

impl Deadline {
    /// A deadline `budget_ms` from now.
    pub fn in_ms(budget_ms: u64) -> Deadline {
        Deadline {
            at: std::time::Instant::now() + std::time::Duration::from_millis(budget_ms),
            budget_ms,
        }
    }

    /// Whether the budget has run out.
    pub fn expired(&self) -> bool {
        std::time::Instant::now() >= self.at
    }
}

/// What a query returns to the client.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Ids satisfying every predicate, in corpus order.
    pub matched_ids: Vec<u64>,
    /// Items surviving the metadata filter (classified by the first
    /// content predicate).
    pub metadata_survivors: usize,
    /// Whether planning was served from the cache.
    pub plan_hit: bool,
    /// Pack slots this query served through the quarantine degradation
    /// path (transcode-from-source instead of the stored representation).
    /// Zero on a healthy store; surfaced on the wire as ` degraded=N`.
    pub degraded: u64,
}

/// Service-level error, stringly typed at the protocol boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The SQL failed to parse.
    Query(String),
    /// The query names a predicate this service was not configured for.
    UnservedKind(ObjectKind),
    /// No cascade satisfies the accuracy constraint.
    Planning(String),
    /// Cascade execution failed.
    Exec(String),
    /// The query's deadline expired before execution finished. Encoded on
    /// the wire as a `TIMEOUT` response, not an `ERR` — the budget ran
    /// out; nothing is wrong with the query or the service.
    Timeout {
        /// The budget that expired, in milliseconds.
        budget_ms: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Query(e) => write!(f, "query: {e}"),
            ServeError::UnservedKind(k) => write!(f, "predicate not served: {k}"),
            ServeError::Planning(e) => write!(f, "planning: {e}"),
            ServeError::Exec(e) => write!(f, "execution: {e}"),
            ServeError::Timeout { budget_ms } => {
                write!(f, "deadline exceeded after {budget_ms} ms budget")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Aggregated service counters (the `STATS` protocol verb).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Queries executed (successfully or not) since startup.
    pub queries: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses.
    pub plan_misses: u64,
    /// Broker counters summed over every served kind.
    pub broker: BrokerStats,
    /// Store reliability counters (retries, degraded fetches, quarantine
    /// size) summed over the distinct stores behind the served kinds.
    pub store: tahoma_imagery::ReliabilityStats,
    /// Queries stopped by an expired [`Deadline`].
    pub timeouts: u64,
}

enum KindBackend {
    /// Surrogate scoring (no pixels): per-query scorer over shared tables.
    Surrogate(SurrogateScorer),
    /// Real-NN scoring over the shared store and zoo.
    Nn(NnBackend),
}

struct NnBackend {
    store: Arc<RepresentationStore>,
    zoo: Arc<SharedModelZoo>,
    broker: Broker,
    /// Queries in flight that still owe this kind a cascade execution;
    /// shared with the broker, whose leaders seal early once every
    /// interested query has a pack aboard (and skip batching entirely
    /// when a kind has at most one interested query).
    active: Arc<AtomicUsize>,
    // LOCK-ORDER: 30 — session-scratch pool; held only to pop/push a
    // buffer, never across scoring (the broker's locks rank above).
    sessions: Mutex<Vec<NnSessionScratch>>,
}

struct KindState {
    system: TahomaSystem,
    cost: CostContext,
    /// Execution-time threshold override (the NN fixtures calibrate
    /// decision cuts from live score distributions rather than the
    /// surrogate config split); planning always uses the system's table.
    exec_thresholds: Option<ThresholdTable>,
    corpus: Arc<Corpus>,
    backend: KindBackend,
}

/// The concurrent query service. Construct, register kinds, then share
/// behind an `Arc` and call [`QueryService::execute`] from any thread.
pub struct QueryService {
    profiler: AnalyticProfiler,
    accuracy_loss: f64,
    kinds: BTreeMap<ObjectKind, KindState>,
    plan_cache: PlanCache,
    queries: AtomicU64,
    timeouts: AtomicU64,
}

/// Per-kind in-flight registrations held by one executing query.
/// Releases a kind as soon as its cascade entry completes — a query past
/// the fence predicate must not keep fence batch leaders waiting — and
/// releases everything on drop (error paths included).
pub(crate) struct InterestGuard {
    counters: Vec<(ObjectKind, Arc<AtomicUsize>)>,
}

impl InterestGuard {
    fn release(&mut self, kind: ObjectKind) {
        if let Some(pos) = self.counters.iter().position(|(k, _)| *k == kind) {
            let (_, c) = self.counters.swap_remove(pos);
            c.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Drop for InterestGuard {
    fn drop(&mut self) {
        for (_, c) in &self.counters {
            c.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl QueryService {
    /// A service pricing costs with `profiler` and planning every query at
    /// `accuracy_loss` maximum accuracy loss (the paper's `U_acc`).
    pub fn new(profiler: AnalyticProfiler, accuracy_loss: f64) -> QueryService {
        QueryService {
            profiler,
            accuracy_loss,
            kinds: BTreeMap::new(),
            plan_cache: PlanCache::new(),
            queries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        }
    }

    /// Serve `kind` with surrogate scoring.
    pub fn add_surrogate_kind(
        &mut self,
        kind: ObjectKind,
        system: TahomaSystem,
        scorer: SurrogateScorer,
        corpus: Arc<Corpus>,
    ) {
        let cost = CostContext::build(&system.repo, &self.profiler);
        self.kinds.insert(
            kind,
            KindState {
                system,
                cost,
                exec_thresholds: None,
                corpus,
                backend: KindBackend::Surrogate(scorer),
            },
        );
    }

    /// Serve `kind` with real-NN scoring over `store` and `zoo`. The
    /// broker is created here so it shares the kind's in-flight interest
    /// counter; `exec_thresholds`, when given, replaces the system's
    /// calibrated table at execution time only.
    #[allow(clippy::too_many_arguments)]
    pub fn add_nn_kind(
        &mut self,
        kind: ObjectKind,
        system: TahomaSystem,
        exec_thresholds: Option<ThresholdTable>,
        store: Arc<RepresentationStore>,
        zoo: SharedModelZoo,
        corpus: Arc<Corpus>,
        window: std::time::Duration,
        max_rows: usize,
    ) {
        let cost = CostContext::build(&system.repo, &self.profiler);
        let zoo = Arc::new(zoo);
        let active = Arc::new(AtomicUsize::new(0));
        let broker = Broker::new(Arc::clone(&zoo), Arc::clone(&active))
            .with_window(window)
            .with_max_rows(max_rows);
        self.kinds.insert(
            kind,
            KindState {
                system,
                cost,
                exec_thresholds,
                corpus,
                backend: KindBackend::Nn(NnBackend {
                    store,
                    zoo,
                    broker,
                    active,
                    sessions: Mutex::new(Vec::new()),
                }),
            },
        );
    }

    /// The predicates this service answers.
    pub fn served_kinds(&self) -> Vec<ObjectKind> {
        self.kinds.keys().copied().collect()
    }

    /// Items in the (first registered kind's) corpus.
    pub fn corpus_len(&self) -> usize {
        self.kinds
            .values()
            .next()
            .map_or(0, |st| st.corpus.items.len())
    }

    /// Aggregated counters.
    pub fn stats(&self) -> ServiceStats {
        let mut broker = BrokerStats::default();
        let mut store = tahoma_imagery::ReliabilityStats::default();
        // Kinds may share one store (the NN fixture does); sum each
        // distinct store's counters once.
        let mut seen_stores: Vec<*const RepresentationStore> = Vec::new();
        for st in self.kinds.values() {
            if let KindBackend::Nn(nn) = &st.backend {
                let b = nn.broker.stats();
                broker.submits += b.submits;
                broker.calls += b.calls;
                broker.merged_calls += b.merged_calls;
                broker.rows += b.rows;
                broker.failovers += b.failovers;
                let ptr = Arc::as_ptr(&nn.store);
                if !seen_stores.contains(&ptr) {
                    seen_stores.push(ptr);
                    let rs = nn.store.reliability_stats();
                    store.retries += rs.retries;
                    store.degraded_fetches += rs.degraded_fetches;
                    store.quarantined += rs.quarantined;
                }
            }
        }
        ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            plan_hits: self.plan_cache.hits(),
            plan_misses: self.plan_cache.misses(),
            broker,
            store,
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }

    /// Fail with [`ServeError::Timeout`] when the policy's deadline has
    /// expired. Checked at predicate boundaries: execution never abandons
    /// a cascade mid-flight (scratch and broker state stay consistent),
    /// so a `TIMEOUT` response is always a clean stop.
    fn check_deadline(&self, policy: &ExecPolicy) -> Result<(), ServeError> {
        if let Some(dl) = policy.deadline {
            if dl.expired() {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Timeout {
                    budget_ms: dl.budget_ms,
                });
            }
        }
        Ok(())
    }

    /// Plan the given predicate set: cascade selection per kind under the
    /// service's accuracy target, ordered cheapest-first. Returns the plan
    /// and whether it came from the cache. Public so the `query_serve`
    /// bench can measure cold vs cached planning in isolation.
    pub fn plan_for(
        &self,
        kinds: &[ObjectKind],
        use_cache: bool,
    ) -> Result<(Arc<CachedPlan>, bool), ServeError> {
        let acc_milli = (self.accuracy_loss * 1000.0).round() as u32;
        if use_cache {
            if let Some(plan) = self.plan_cache.get(kinds, acc_milli) {
                return Ok((plan, true));
            }
        }
        let mut uniq: Vec<ObjectKind> = kinds.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        let mut entries = Vec::with_capacity(uniq.len());
        for kind in uniq {
            let st = self
                .kinds
                .get(&kind)
                .ok_or(ServeError::UnservedKind(kind))?;
            let selected = st
                .system
                .select(
                    &self.profiler,
                    Constraints {
                        max_accuracy_loss: Some(self.accuracy_loss),
                        max_throughput_loss: None,
                    },
                )
                .map_err(|e| ServeError::Planning(e.to_string()))?;
            entries.push((kind, selected));
        }
        // Cheapest predicate first: the narrowing conjunction leaves the
        // slow cascades the smallest survivor sets.
        entries.sort_by(|a, b| b.1.throughput.total_cmp(&a.1.throughput));
        let plan = CachedPlan { entries };
        let plan = if use_cache {
            self.plan_cache.insert(kinds, acc_milli, plan)
        } else {
            Arc::new(plan)
        };
        Ok((plan, false))
    }

    /// Execute a SQL query under the default [`ExecPolicy`].
    pub fn execute(&self, sql: &str) -> Result<ServeOutcome, ServeError> {
        self.execute_with(sql, ExecPolicy::default())
    }

    /// Execute a SQL query with explicit policy switches.
    pub fn execute_with(&self, sql: &str, policy: ExecPolicy) -> Result<ServeOutcome, ServeError> {
        let query = Query::parse(sql).map_err(|e| ServeError::Query(e.to_string()))?;
        for &kind in &query.content {
            if !self.kinds.contains_key(&kind) {
                return Err(ServeError::UnservedKind(kind));
            }
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut interest = self.register_interest(&query.content, policy.coalesce);

        if query.content.is_empty() {
            // Metadata-only query: filter any kind's corpus (metadata is
            // shared across kinds by construction).
            let corpus = self
                .kinds
                .values()
                .next()
                .map(|st| Arc::clone(&st.corpus))
                .unwrap_or_default();
            let matched: Vec<u64> = corpus
                .items
                .iter()
                .filter(|it| query.metadata.iter().all(|p| p.holds(it)))
                .map(|it| it.id)
                .collect();
            return Ok(ServeOutcome {
                metadata_survivors: matched.len(),
                matched_ids: matched,
                plan_hit: false,
                degraded: 0,
            });
        }

        self.check_deadline(&policy)?;
        let (plan, plan_hit) = self.plan_for(&query.content, policy.use_plan_cache)?;
        let mut matched: Option<Vec<u64>> = None;
        let mut survivors = 0usize;
        let mut degraded = 0u64;
        for (i, (kind, selected)) in plan.entries.iter().enumerate() {
            // Predicate boundary: the cheapest place to stop a query whose
            // budget ran out (each entry is one whole cascade execution).
            self.check_deadline(&policy)?;
            // Plans only name kinds that were registered, but a cache
            // shared across reconfiguration could outlive that invariant —
            // surface a typed error instead of panicking the worker.
            let st = self
                .kinds
                .get(kind)
                .ok_or_else(|| ServeError::Exec(format!("planned kind {kind:?} is not served")))?;
            // Progressive narrowing: after the first predicate, only the
            // current conjunction survivors are classified.
            let narrowed;
            let corpus: &Corpus = match &matched {
                None => &st.corpus,
                Some(ids) => {
                    let keep: HashSet<u64> = ids.iter().copied().collect();
                    narrowed = Corpus {
                        items: st
                            .corpus
                            .items
                            .iter()
                            .filter(|it| keep.contains(&it.id))
                            .cloned()
                            .collect(),
                    };
                    &narrowed
                }
            };
            let single = Query {
                table: query.table.clone(),
                metadata: query.metadata.clone(),
                content: vec![*kind],
            };
            let mut cascades: BTreeMap<ObjectKind, Cascade> = BTreeMap::new();
            cascades.insert(*kind, selected.cascade);
            let thresholds = st.exec_thresholds.as_ref().unwrap_or(&st.system.thresholds);
            let processor = QueryProcessor::new(&st.system.repo, thresholds, &st.cost);
            let opts = ExecOptions {
                materialize_all: false,
            };
            let result = match &st.backend {
                KindBackend::Surrogate(sc) => {
                    let mut scorer = SurrogateBatchScorer::new(sc, &st.system.repo);
                    processor.execute_batched(&single, corpus, &cascades, &mut scorer, &opts)
                }
                KindBackend::Nn(nn) => {
                    let mut scratch = lock(&nn.sessions)
                        .pop()
                        .unwrap_or_else(NnSessionScratch::new);
                    // Scratch pools are shared across queries: the delta
                    // around this execution is this query's own degraded
                    // slot count.
                    let degraded_before = scratch.stats().degraded_fetches;
                    let result = {
                        let mut scorer = SharedNnScorer::new(&nn.store, &nn.zoo, &mut scratch);
                        if policy.coalesce {
                            scorer = scorer.with_dispatch(&nn.broker);
                        }
                        processor.execute_batched(&single, corpus, &cascades, &mut scorer, &opts)
                    };
                    degraded += scratch.stats().degraded_fetches - degraded_before;
                    lock(&nn.sessions).push(scratch);
                    result
                }
            }
            .map_err(|e| ServeError::Exec(e.to_string()))?;
            interest.release(*kind);
            if i == 0 {
                survivors = result.metadata_survivors;
            }
            // The narrowed corpus already restricts to prior survivors, so
            // this predicate's matches ARE the running intersection.
            matched = Some(result.matched_ids);
        }
        Ok(ServeOutcome {
            matched_ids: matched.unwrap_or_default(),
            metadata_survivors: survivors,
            plan_hit,
            degraded,
        })
    }

    /// Register interest with every NN kind in `kinds` (duplicates
    /// collapse), so the kinds' brokers know how many concurrent packs to
    /// expect. Standing-query ticks take the same guard ad-hoc queries do,
    /// which is what lets their packs coalesce with ad-hoc traffic.
    pub(crate) fn register_interest(&self, kinds: &[ObjectKind], coalesce: bool) -> InterestGuard {
        let mut interest = InterestGuard {
            counters: Vec::new(),
        };
        let mut uniq: Vec<ObjectKind> = kinds.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        for kind in uniq {
            if let Some(KindState {
                backend: KindBackend::Nn(nn),
                ..
            }) = self.kinds.get(&kind)
            {
                nn.active.fetch_add(1, Ordering::Relaxed);
                interest.counters.push((kind, Arc::clone(&nn.active)));
            }
        }
        if coalesce && !interest.counters.is_empty() {
            // Registration rendezvous: queries arriving together must all
            // be registered before any of them chooses between the broker's
            // idle fast path and batching. One yield lets same-instant
            // arrivals (burst clients, queued requests) reach their own
            // registration first; when nothing else is runnable it is a
            // few hundred nanoseconds.
            std::thread::yield_now();
        }
        interest
    }

    /// Score one pack through `kind`'s backend and return one pass flag
    /// per pack item. This is the continuous executor's evaluation seam:
    /// a standing query's tick routes each content predicate here, so
    /// entrant packs run through exactly the machinery ad-hoc queries use
    /// — same thresholds, same scratch pool, same coalescing broker —
    /// which is what makes incremental window results comparable to a
    /// `QUERY` over the same items.
    pub(crate) fn eval_kind_pack(
        &self,
        kind: ObjectKind,
        cascade: Cascade,
        pack: &[&CorpusItem],
        coalesce: bool,
    ) -> Result<Vec<bool>, ServeError> {
        let st = self
            .kinds
            .get(&kind)
            .ok_or(ServeError::UnservedKind(kind))?;
        let thresholds = st.exec_thresholds.as_ref().unwrap_or(&st.system.thresholds);
        let exec = VectorizedExecutor::new(&st.system.repo, thresholds, &st.cost);
        let rel = match &st.backend {
            KindBackend::Surrogate(sc) => {
                let mut scorer = SurrogateBatchScorer::new(sc, &st.system.repo);
                exec.run_cascade_batched(kind, cascade, pack, &mut scorer)
            }
            KindBackend::Nn(nn) => {
                let mut scratch = lock(&nn.sessions)
                    .pop()
                    .unwrap_or_else(NnSessionScratch::new);
                let rel = {
                    let mut scorer = SharedNnScorer::new(&nn.store, &nn.zoo, &mut scratch);
                    if coalesce {
                        scorer = scorer.with_dispatch(&nn.broker);
                    }
                    exec.run_cascade_batched(kind, cascade, pack, &mut scorer)
                };
                lock(&nn.sessions).push(scratch);
                rel
            }
        }
        .map_err(|e| ServeError::Exec(e.to_string()))?;
        Ok(rel.rows.iter().map(|r| r.value).collect())
    }

    /// The shared representation store behind `kind`'s NN backend, if any
    /// — the ingest target for stream frames whose standing query scores
    /// that kind with real networks (surrogate backends move no pixels).
    pub(crate) fn nn_store(&self, kind: ObjectKind) -> Option<Arc<RepresentationStore>> {
        match self.kinds.get(&kind).map(|st| &st.backend) {
            Some(KindBackend::Nn(nn)) => Some(Arc::clone(&nn.store)),
            _ => None,
        }
    }
}

//! Seeded schedule perturbation for concurrency tests.
//!
//! The broker's leader/follower protocol is lock-correct for *every*
//! interleaving, but the interleavings a quiet test box actually explores
//! are a thin slice: threads rarely get preempted inside the few
//! microseconds between a join and a seal. This module widens the slice
//! deterministically. Production code calls [`point`] at the protocol's
//! decision edges (join, append, seal, publish, wait); when a test has
//! installed a seed on the calling thread, the point mixes
//! `seed ^ site ^ counter` (splitmix64) and either yields, spins briefly,
//! or proceeds — so each seed reproduces one exact perturbation pattern,
//! and 1000 seeds explore 1000 different ones (`tests/broker_schedule.rs`
//! asserts results stay bitwise identical to serial under all of them).
//!
//! Cost when disarmed: one relaxed atomic load and a predictable branch —
//! nothing else. No thread-local is touched until a test arms the hooks,
//! and they are never armed outside tests.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Perturbation sites, used to decorrelate decisions across call sites.
/// The values are arbitrary but stable so a seed reproduces a schedule
/// even when new sites are added at the end.
pub mod site {
    /// Entry of `Broker::infer`, before the idle fast-path check.
    pub const SUBMIT: u32 = 1;
    /// Before taking the open map to join/open a batch.
    pub const JOIN: u32 = 2;
    /// Follower: after appending rows and waking the leader.
    pub const APPEND: u32 = 3;
    /// Leader: after the coalescing window, before sealing.
    pub const SEAL: u32 = 4;
    /// Leader: before the merged zoo call.
    pub const RUN: u32 = 5;
    /// Leader: after publishing scores and waking followers.
    pub const PUBLISH: u32 = 6;
    /// Follower: before blocking on batch completion.
    pub const WAIT: u32 = 7;
}

/// Process-wide arm flag: fast-path guard so un-instrumented processes
/// pay one relaxed load per point and never touch the thread-local.
static ARMED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Per-thread perturbation state: `Some((seed, counter))` once
    /// [`install`] ran on this thread.
    static STATE: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
}

/// Arm perturbation on the current thread with `seed`. Distinct threads
/// of one test should install distinct seeds (e.g. `seed ^ thread_rank`).
/// Returns a guard that disarms the thread when dropped, so seeds never
/// leak across tests sharing a pool thread.
#[must_use]
pub fn install(seed: u64) -> Installed {
    ARMED.store(true, Ordering::Relaxed);
    STATE.with(|s| s.set(Some((seed, 0))));
    Installed { _priv: () }
}

/// Guard returned by [`install`]; clears the thread's perturbation state
/// on drop.
pub struct Installed {
    _priv: (),
}

impl Drop for Installed {
    fn drop(&mut self) {
        STATE.with(|s| s.set(None));
    }
}

/// splitmix64 finalizer: decorrelates consecutive counters into
/// independent-looking decisions.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A perturbation point. No-op unless the current thread installed a
/// seed; otherwise deterministically yields, spins, or proceeds.
#[inline]
pub fn point(site: u32) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    STATE.with(|s| {
        let Some((seed, counter)) = s.get() else {
            return;
        };
        s.set(Some((seed, counter + 1)));
        let r = mix(seed ^ ((site as u64) << 32) ^ counter);
        match r % 8 {
            // Give up the slice entirely: forces another runnable thread
            // (leader or follower) to make progress here.
            0 | 1 => std::thread::yield_now(),
            // Short busy spin: shifts timing without a syscall, enough to
            // move a racing thread past its own edge.
            2 => {
                for _ in 0..(r >> 8) % 64 {
                    std::hint::spin_loop();
                }
            }
            _ => {}
        }
    });
}

//! Cross-query batch coalescing: merge survivor packs from concurrent
//! queries into single batched inference calls.
//!
//! The §IV cost model prices inference per *call*: a batched GEMM pass has
//! a fixed setup cost (packing, kernel dispatch, cache warm-up) amortized
//! over its rows, which is why the executor scores whole survivor packs at
//! once instead of items one by one. The same argument holds one level up:
//! when two concurrent queries each bring a half-full pack for the *same
//! model*, running them as one merged call pays the fixed cost once. The
//! broker implements this with a leader/follower protocol per model:
//!
//! 1. A query submitting rows for model `m` joins the open batch for `m`
//!    (or opens one, becoming its **leader**).
//! 2. The leader waits a short coalescing window for followers to join —
//!    skipped entirely when the service has at most one query in flight,
//!    so an idle server adds zero latency — then seals the batch, runs one
//!    [`SharedModelZoo::infer`] call over the concatenated rows, and
//!    publishes the scores.
//! 3. Followers block until the batch completes and slice out their rows'
//!    scores. A batch that reaches [`Broker`]'s row cap seals immediately.
//!
//! Coalescing is invisible in the results: the shared inference path pins
//! the batched GEMM kernel ([`InferScratch::coalescing`]), whose per-row
//! reduction order does not depend on how many rows ride in the call, so
//! every row's score is bitwise identical whether it was scored alone or
//! merged with strangers (asserted by `tests/concurrency.rs`).
//!
//! That same batch-shape invariance powers the broker's failure story:
//! when a leader's merged zoo call dies (a panic inside inference — or an
//! injected leader death, `tahoma_faults::site::BROKER_LEAD`), every
//! participant of the failed batch *re-executes its own rows solo* and
//! gets scores bitwise identical to the merged call it lost
//! (RELIABILITY.md's failover rung). Deterministic panics — an
//! unregistered model — re-raise on the solo retry, so real
//! configuration errors still propagate to every participant.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tahoma_core::exec::{InferDispatch, SharedModelZoo};
use tahoma_nn::InferScratch;
use tahoma_zoo::ModelId;

/// Poison-tolerant lock: broker bookkeeping stays usable after a leader's
/// inference panicked (the panic is re-raised on every participant; the
/// shared maps are never left mid-update because critical sections do not
/// call user code).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct BatchState {
    rows: Vec<f32>,
    sizes: Vec<usize>,
    sealed: bool,
    done: bool,
    failed: bool,
    scores: Vec<f32>,
}

struct Batch {
    // LOCK-ORDER: 50 — acquired after the broker's open map (the seal and
    // join paths nest map -> state), never before it.
    state: Mutex<BatchState>,
    cv: Condvar,
}

impl Batch {
    fn new() -> Batch {
        Batch {
            state: Mutex::new(BatchState {
                rows: Vec::new(),
                sizes: Vec::new(),
                sealed: false,
                done: false,
                failed: false,
                scores: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }
}

/// Counters a [`Broker`] accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// `infer` submissions received.
    pub submits: u64,
    /// Zoo inference calls actually issued.
    pub calls: u64,
    /// Inference calls that merged rows from more than one submission.
    pub merged_calls: u64,
    /// Total rows scored through the broker.
    pub rows: u64,
    /// Failed merged calls whose participants re-executed solo (one count
    /// per recovering participant, not per failed batch).
    pub failovers: u64,
}

/// Per-model-zoo coalescing broker. One instance serves one
/// [`SharedModelZoo`] (model ids are zoo-scoped); the service keeps one
/// broker per served predicate.
pub struct Broker {
    zoo: Arc<SharedModelZoo>,
    // LOCK-ORDER: 40 — the outer lock of the join/seal protocol; batch
    // state (rank 50) is taken while this is held, nothing else is.
    open: Mutex<HashMap<u32, Arc<Batch>>>,
    window: Duration,
    max_rows: usize,
    /// Queries in flight that still owe this broker's predicate a cascade
    /// execution (maintained by the service). Leaders skip the coalescing
    /// window when there is nobody to coalesce with and seal early once
    /// every interested query has a pack aboard.
    active: Arc<AtomicUsize>,
    // LOCK-ORDER: 60 — inference-scratch pool; popped/pushed with no
    // other broker lock held (zoo calls run outside every lock).
    scratch: Mutex<Vec<InferScratch>>,
    submits: AtomicU64,
    calls: AtomicU64,
    merged_calls: AtomicU64,
    rows: AtomicU64,
    failovers: AtomicU64,
}

impl Broker {
    /// Default coalescing window. This is a latency *bound*, not a fixed
    /// wait: leaders seal as soon as every interested query has a pack
    /// aboard, so the deadline only fires when a co-interested query is
    /// slow to bring its pack. Sized to the time a burst of queries needs
    /// to materialize their packs back-to-back on a loaded host, and on
    /// the order of one merged inference call.
    pub const DEFAULT_WINDOW: Duration = Duration::from_millis(2);

    /// Default cap on merged rows per inference call.
    pub const DEFAULT_MAX_ROWS: usize = 1024;

    /// Create a broker over `zoo`. `active` counts the in-flight queries
    /// interested in this broker's predicate.
    pub fn new(zoo: Arc<SharedModelZoo>, active: Arc<AtomicUsize>) -> Broker {
        Broker {
            zoo,
            open: Mutex::new(HashMap::new()),
            window: Broker::DEFAULT_WINDOW,
            max_rows: Broker::DEFAULT_MAX_ROWS,
            active,
            scratch: Mutex::new(Vec::new()),
            submits: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            merged_calls: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
        }
    }

    /// Override the coalescing window (0 disables waiting; packs still
    /// merge when they arrive while a leader holds the batch open).
    pub fn with_window(mut self, window: Duration) -> Broker {
        self.window = window;
        self
    }

    /// Override the merged-row cap.
    pub fn with_max_rows(mut self, max_rows: usize) -> Broker {
        self.max_rows = max_rows.max(1);
        self
    }

    /// Lifetime counters.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            submits: self.submits.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
            merged_calls: self.merged_calls.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
        }
    }

    /// One guarded zoo call. `inject` is true on first executions and
    /// false on failover re-executions: an injected death is transient by
    /// definition, so the recovery path must not re-draw it (a *real* zoo
    /// death is deterministic and reproduces on the retry regardless).
    fn run_zoo(
        &self,
        model: ModelId,
        rows: &[f32],
        n: usize,
        inject: bool,
    ) -> std::thread::Result<Vec<f32>> {
        let mut scratch = lock(&self.scratch)
            .pop()
            .unwrap_or_else(InferScratch::coalescing);
        let result = catch_unwind(AssertUnwindSafe(|| {
            // FAULT: the inference call dies — a panic inside the guarded
            // call, indistinguishable from a real zoo death; callers
            // recover through the solo-failover rung.
            if inject && tahoma_faults::fire(tahoma_faults::site::BROKER_LEAD) {
                panic!("injected fault: broker inference death (site BROKER_LEAD)");
            }
            self.zoo.infer(model, rows, n, &mut scratch)
        }));
        lock(&self.scratch).push(scratch);
        self.calls.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Leader path: give followers `window` to join, then seal the batch
    /// (taking it off the open map so later submissions start fresh), run
    /// one zoo call over the merged rows, and publish the scores.
    fn lead(&self, model: ModelId, batch: &Arc<Batch>) {
        if self.window > Duration::ZERO && self.active.load(Ordering::Relaxed) > 1 {
            // Poll in short slices: besides sealing and the deadline, stop
            // waiting as soon as every in-flight query has a pack in this
            // batch (nobody is left to join — each query submits at most
            // once per cascade level, then blocks on the result) or the
            // service goes (nearly) idle. Both conditions read the live
            // `active` counter, so a dying burst never strands the leader
            // in a dead window.
            const POLL: Duration = Duration::from_micros(50);
            let deadline = Instant::now() + self.window;
            let mut st = lock(&batch.state);
            while !st.sealed {
                let active = self.active.load(Ordering::Relaxed);
                if active <= 1 || st.sizes.len() >= active {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, _) = batch
                    .cv
                    .wait_timeout(st, (deadline - now).min(POLL))
                    .unwrap_or_else(|p| p.into_inner());
                st = g;
            }
        }
        crate::sched::point(crate::sched::site::SEAL);
        // Seal under the open-map lock (map -> batch lock order, same as
        // the join path) unless a row-cap join already did.
        {
            let mut open = lock(&self.open);
            let mut st = lock(&batch.state);
            if !st.sealed {
                st.sealed = true;
                if open.get(&model.0).is_some_and(|b| Arc::ptr_eq(b, batch)) {
                    open.remove(&model.0);
                }
            }
        }
        let (rows, sizes) = {
            let mut st = lock(&batch.state);
            (std::mem::take(&mut st.rows), st.sizes.clone())
        };
        let n: usize = sizes.iter().sum();
        self.rows.fetch_add(n as u64, Ordering::Relaxed);
        if sizes.len() > 1 {
            self.merged_calls.fetch_add(1, Ordering::Relaxed);
        }
        crate::sched::point(crate::sched::site::RUN);
        let result = self.run_zoo(model, &rows, n, true);
        let mut st = lock(&batch.state);
        match result {
            Ok(scores) => st.scores = scores,
            // Publish the failure instead of unwinding: every participant
            // (the leader included) sees `failed` in the common wait path
            // and re-executes its own rows solo — the failover rung. The
            // panic payload is intentionally dropped here; a deterministic
            // panic reproduces on the solo retry and re-raises there.
            Err(_) => st.failed = true,
        }
        st.done = true;
        batch.cv.notify_all();
        drop(st);
        crate::sched::point(crate::sched::site::PUBLISH);
    }
}

impl InferDispatch for Broker {
    fn infer(&self, model: ModelId, rows: &[f32], n: usize) -> Vec<f32> {
        self.submits.fetch_add(1, Ordering::Relaxed);
        crate::sched::point(crate::sched::site::SUBMIT);
        // Idle fast path: nobody to coalesce with — score directly, no
        // batch machinery, no window.
        if self.active.load(Ordering::Relaxed) <= 1 {
            self.rows.fetch_add(n as u64, Ordering::Relaxed);
            return match self.run_zoo(model, rows, n, true) {
                Ok(scores) => scores,
                // Same failover rung as a dead merged call: one
                // injection-free solo retry, then a reproducing (real)
                // panic re-raises to the request guard.
                Err(_) => {
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                    match self.run_zoo(model, rows, n, false) {
                        Ok(scores) => scores,
                        Err(p) => resume_unwind(p),
                    }
                }
            };
        }
        // Join (or open) the model's batch.
        crate::sched::point(crate::sched::site::JOIN);
        let (batch, my_index, leader) = {
            let mut open = lock(&self.open);
            match open.get(&model.0) {
                Some(b) => {
                    let b = Arc::clone(b);
                    let mut st = lock(&b.state);
                    debug_assert!(!st.sealed, "sealed batches leave the open map");
                    st.rows.extend_from_slice(rows);
                    st.sizes.push(n);
                    let idx = st.sizes.len() - 1;
                    if st.sizes.iter().sum::<usize>() >= self.max_rows {
                        st.sealed = true;
                        open.remove(&model.0);
                    }
                    // Wake the leader either way: it may now be able to
                    // seal early (all active queries joined).
                    b.cv.notify_all();
                    drop(st);
                    (b, idx, false)
                }
                None => {
                    let b = Arc::new(Batch::new());
                    {
                        let mut st = lock(&b.state);
                        st.rows.extend_from_slice(rows);
                        st.sizes.push(n);
                    }
                    open.insert(model.0, Arc::clone(&b));
                    (b, 0, true)
                }
            }
        };
        if leader {
            self.lead(model, &batch);
        } else {
            crate::sched::point(crate::sched::site::APPEND);
        }
        // Wait for completion (leaders are already done) and slice out our
        // scores.
        crate::sched::point(crate::sched::site::WAIT);
        let mut st = lock(&batch.state);
        while !st.done {
            st = batch.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if st.failed {
            // Failover: the merged call died; score our own rows solo.
            // Batch-shape invariance makes the recovered scores bitwise
            // identical to the merged call that failed, so the failover is
            // invisible in results. A panic that reproduces solo (e.g. an
            // unregistered model) re-raises here, reaching every
            // participant of the failed batch.
            drop(st);
            self.failovers.fetch_add(1, Ordering::Relaxed);
            self.rows.fetch_add(n as u64, Ordering::Relaxed);
            return match self.run_zoo(model, rows, n, false) {
                Ok(scores) => scores,
                Err(p) => resume_unwind(p),
            };
        }
        let off: usize = st.sizes[..my_index].iter().sum();
        st.scores[off..off + n].to_vec()
    }
}

//! The `tahoma-serve` binary: stand up a query service over a synthetic
//! fixture and serve the line protocol on TCP.
//!
//! ```text
//! tahoma-serve [--addr HOST:PORT] [--backend surrogate|nn]
//!              [--kinds fence,wallet,...] [--corpus N] [--seed S]
//!              [--workers N] [--queue N] [--store-dir DIR]
//!              [--verify-on-open] [--deadline-ms N]
//! ```
//!
//! `--store-dir` (NN backend only) backs the frame store with the
//! persistent mmap-backed segment tier under DIR; a compatible existing
//! store is reopened without re-ingesting. `--verify-on-open` sweeps every
//! stored record's CRC at boot and quarantines (rather than boot-fails on)
//! corrupt ones — they serve through the transcode-from-source degradation
//! path and are counted in `STATS`. `--deadline-ms` applies a server-side
//! deadline to every plain `QUERY`/`QUERYU` (clients can always set a
//! per-request one with the `DEADLINE` verb).
//!
//! Prints `listening on ADDR` once ready (the CI smoke job greps for it),
//! then runs until a client sends `SHUTDOWN`.

use std::process::exit;
use std::sync::Arc;
use tahoma_imagery::ObjectKind;
use tahoma_serve::fixture::{nn_service, surrogate_service, NnFixtureConfig};
use tahoma_serve::{serve, ServerConfig};

struct Args {
    addr: String,
    backend: String,
    kinds: Vec<ObjectKind>,
    corpus: usize,
    seed: u64,
    workers: usize,
    queue: usize,
    store_dir: Option<std::path::PathBuf>,
    verify_on_open: bool,
    deadline_ms: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tahoma-serve [--addr HOST:PORT] [--backend surrogate|nn] \
         [--kinds fence,wallet,...] [--corpus N] [--seed S] [--workers N] [--queue N] \
         [--store-dir DIR] [--verify-on-open] [--deadline-ms N]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7343".to_string(),
        backend: "surrogate".to_string(),
        kinds: vec![ObjectKind::Fence, ObjectKind::Wallet],
        corpus: 1024,
        seed: 0x7A40,
        workers: 4,
        queue: 32,
        store_dir: None,
        verify_on_open: false,
        deadline_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => args.addr = val(),
            "--backend" => args.backend = val(),
            "--kinds" => {
                args.kinds = val()
                    .split(',')
                    .map(|name| {
                        ObjectKind::from_name(name.trim()).unwrap_or_else(|| {
                            eprintln!("unknown object kind: {name}");
                            exit(2);
                        })
                    })
                    .collect();
            }
            "--corpus" => args.corpus = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue" => args.queue = val().parse().unwrap_or_else(|_| usage()),
            "--store-dir" => args.store_dir = Some(val().into()),
            "--verify-on-open" => args.verify_on_open = true,
            "--deadline-ms" => {
                let ms: u64 = val().parse().unwrap_or_else(|_| usage());
                if ms == 0 {
                    usage();
                }
                args.deadline_ms = Some(ms);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if args.kinds.is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    eprintln!(
        "building {} service: kinds={:?} corpus={} seed={}",
        args.backend, args.kinds, args.corpus, args.seed
    );
    let service = match args.backend.as_str() {
        "surrogate" => {
            if args.store_dir.is_some() || args.verify_on_open {
                eprintln!("--store-dir / --verify-on-open only apply to the nn backend");
                usage();
            }
            surrogate_service(&args.kinds, args.corpus, args.seed)
        }
        "nn" => nn_service(&NnFixtureConfig {
            kinds: args.kinds.clone(),
            corpus_n: args.corpus,
            seed: args.seed,
            store_dir: args.store_dir.clone(),
            verify_on_open: args.verify_on_open,
            ..Default::default()
        }),
        other => {
            eprintln!("unknown backend: {other}");
            usage();
        }
    };
    let handle = serve(
        Arc::new(service),
        ServerConfig {
            addr: args.addr,
            workers: args.workers,
            queue_cap: args.queue,
            stream_seed: args.seed,
            default_deadline_ms: args.deadline_ms,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("bind failed: {e}");
        exit(1);
    });
    println!("listening on {}", handle.addr());
    handle.join();
    eprintln!("shutdown complete");
}

//! Ready-to-serve service fixtures, shared by the `query_serve` bench,
//! `tests/concurrency.rs`, the `tahoma-serve` binary, and the CI smoke
//! job.
//!
//! Two backends:
//!
//! * [`surrogate_service`] — per-kind surrogate model families over the
//!   paper's variant grid, planned through the full paper cascade space.
//!   No pixels move; this is the cheap fixture for protocol/server tests
//!   and for exercising the plan cache over many predicates.
//! * [`nn_service`] — real CNN inference end to end: a shared
//!   [`RepresentationStore`] of raster frames, one two-level model zoo per
//!   kind, and decision cuts calibrated from each network's live score
//!   distribution (untrained weights cluster instead of separating, so the
//!   surrogate config split's calibration would never decide anything).
//!   This is the fixture coalescing is measured on.
//!
//! Both build every served kind over ONE shared corpus so metadata
//! predicates and cross-kind conjunctions are consistent, and both are
//! deterministic in `seed` — two services built with the same arguments
//! answer every query identically, which the concurrency tests lean on.

use crate::service::QueryService;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tahoma_core::exec::{BatchScorer, NnSessionScratch, ScorePack, SharedModelZoo, SharedNnScorer};
use tahoma_core::pipeline::TahomaSystem;
use tahoma_core::query::{Corpus, CorpusItem};
use tahoma_core::thresholds::{DecisionThresholds, ThresholdTable};
use tahoma_core::BuilderConfig;
use tahoma_costmodel::{AnalyticProfiler, DeviceProfile, Scenario};
use tahoma_imagery::{ColorMode, Image, ObjectKind, Representation, RepresentationStore};
use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
use tahoma_zoo::variant::{cross_variants, paper_variants};
use tahoma_zoo::{ArchSpec, ModelId, ModelKind, PredicateSpec, SurrogateScorer};

/// Accuracy-loss target every fixture service plans at (matches the SQL
/// console's default).
pub const ACCURACY_LOSS: f64 = 0.02;

/// Surrogate-backed service over `kinds`, all sharing one synthetic
/// corpus of `corpus_n` items.
pub fn surrogate_service(kinds: &[ObjectKind], corpus_n: usize, seed: u64) -> QueryService {
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    let mut service = QueryService::new(profiler, ACCURACY_LOSS);
    let corpus = Arc::new(Corpus::synthetic(corpus_n, 0.3, seed));
    for &kind in kinds {
        let pred = PredicateSpec::for_kind(kind);
        let cfg = SurrogateBuildConfig {
            n_config: 300,
            n_eval: 400,
            seed: seed ^ (0x51C0 + kind.index() as u64),
            variants: Some(paper_variants().into_iter().step_by(8).collect()),
            ..Default::default()
        };
        let scorer = SurrogateScorer {
            pred,
            params: cfg.params,
            seed: cfg.seed,
        };
        let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
        let system = TahomaSystem::initialize_paper_main(repo);
        service.add_surrogate_kind(kind, system, scorer, Arc::clone(&corpus));
    }
    service
}

/// Knobs for the real-NN fixture.
#[derive(Debug, Clone)]
pub struct NnFixtureConfig {
    /// Served predicates (each gets its own two-level zoo).
    pub kinds: Vec<ObjectKind>,
    /// Shared corpus size.
    pub corpus_n: usize,
    /// Per-kind object prevalence in the synthetic corpus.
    pub prevalence: f64,
    /// Root seed: frames, surrogate pricing, and network weights all
    /// derive from it.
    pub seed: u64,
    /// Broker coalescing window.
    pub window: Duration,
    /// Broker merged-row cap.
    pub max_rows: usize,
    /// When set, back the shared frame store with the persistent segment
    /// tier under this directory instead of RAM. A directory holding a
    /// compatible store (same representations, same corpus size — the
    /// frames are deterministic in `seed`) is reopened as-is, so a service
    /// can restart without re-ingesting; anything else is recreated from
    /// scratch.
    pub store_dir: Option<PathBuf>,
    /// Sweep every stored record's CRC at build time
    /// ([`RepresentationStore::verify_and_quarantine`]); corrupt records
    /// are quarantined — served via the transcode-from-source degradation
    /// path — instead of failing the boot. The `tahoma-serve` binary's
    /// `--verify-on-open` flag sets this.
    pub verify_on_open: bool,
}

impl Default for NnFixtureConfig {
    fn default() -> NnFixtureConfig {
        NnFixtureConfig {
            kinds: vec![ObjectKind::Fence, ObjectKind::Wallet],
            corpus_n: 384,
            prevalence: 0.35,
            seed: 0x7A40,
            window: crate::broker::Broker::DEFAULT_WINDOW,
            max_rows: crate::broker::Broker::DEFAULT_MAX_ROWS,
            store_dir: None,
            verify_on_open: false,
        }
    }
}

/// Deterministic synthetic raster frame (same construction as the
/// `query_exec` bench).
pub fn frame(seed: u64, size: usize) -> Image {
    Image::from_fn(size, size, ColorMode::Rgb, |c, y, x| {
        (((c as u64 * 31 + y as u64 * 7 + x as u64 * 3 + seed) % 13) as f32) / 13.0
    })
    .unwrap()
}

/// Decision cuts for one model from its live score distribution: three
/// progressively stricter settings (matching the fixture's three planner
/// precision settings), each deciding the tails and leaving the middle to
/// the next level.
fn quantile_cuts(scores: &mut [f32]) -> Vec<DecisionThresholds> {
    scores.sort_by(f32::total_cmp);
    let cut = |q: f64| scores[((scores.len() - 1) as f64 * q) as usize];
    [(0.35, 0.65), (0.30, 0.70), (0.20, 0.80)]
        .iter()
        .map(|&(lo, hi)| DecisionThresholds {
            p_low: cut(lo),
            p_high: cut(hi),
        })
        .collect()
}

/// Real-NN service: shared frame store, per-kind zoos with untrained CNNs
/// at two representation levels, live-calibrated execution thresholds,
/// coalescing brokers wired to `cfg.window`/`cfg.max_rows`.
pub fn nn_service(cfg: &NnFixtureConfig) -> QueryService {
    let rep0 = Representation::new(24, ColorMode::Gray);
    let rep1 = Representation::new(32, ColorMode::Rgb);
    // Full-resolution source frames are stored alongside the model inputs
    // so a quarantined (CRC-bad) model-input record can be re-derived by
    // transcoding — the degradation ladder's last store rung (RELIABILITY.md).
    let rep_src = Representation::new(64, ColorMode::Rgb);
    // Wide dense heads on purpose: the packed weight matrix is the per-call
    // fixed cost (§IV batch pricing) that cross-query coalescing amortizes,
    // so the serving fixture gives it realistic weight relative to per-row
    // compute (production detectors are far denser still).
    let arch0 = ArchSpec {
        conv_layers: 1,
        conv_nodes: 8,
        dense_nodes: 256,
    };
    let arch1 = ArchSpec {
        conv_layers: 2,
        conv_nodes: 8,
        dense_nodes: 320,
    };
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    let mut service = QueryService::new(profiler.clone(), ACCURACY_LOSS);
    let corpus = Arc::new(Corpus::synthetic(cfg.corpus_n, cfg.prevalence, cfg.seed));

    // One store serves every kind: frames are per item, not per predicate.
    // With `store_dir` set the reps live on the persistent segment tier; a
    // compatible directory is reopened (recovery + CRC verification)
    // instead of re-ingested, so reopen serves the exact bytes the
    // previous process wrote.
    let reps = vec![rep0, rep1, rep_src];
    let store = match &cfg.store_dir {
        None => RepresentationStore::new(reps),
        Some(dir) => match RepresentationStore::open(dir) {
            Ok((existing, _report))
                if existing.representations() == reps
                    && existing.frames() == corpus.items.len() as u64
                    && (cfg.verify_on_open || existing.verify().is_ok()) =>
            {
                existing
            }
            _ => RepresentationStore::persistent(reps, dir, 8).unwrap(),
        },
    };
    if store.frames() == 0 {
        for item in &corpus.items {
            store
                .ingest(item.id, &frame(item.id ^ cfg.seed, 64))
                .unwrap();
        }
        store.sync().unwrap();
    }
    if cfg.verify_on_open {
        // Quarantine rather than reject: CRC-bad records degrade to the
        // transcode-from-source path, and the count shows up in `STATS`.
        let _ = store.verify_and_quarantine();
    }
    let store = Arc::new(store);
    let items: Vec<&CorpusItem> = corpus.items.iter().collect();

    for (ki, &kind) in cfg.kinds.iter().enumerate() {
        // A surrogate repository supplies the (model id -> variant) table
        // and pricing; the scores come from the real networks below.
        let pred = PredicateSpec::for_kind(kind);
        let repo_cfg = SurrogateBuildConfig {
            n_config: 50,
            n_eval: 50,
            seed: cfg.seed ^ (ki as u64 + 1),
            variants: Some(
                cross_variants(&[arch0, arch1], &[rep0, rep1])
                    .into_iter()
                    .filter(|v| {
                        (v.input == rep0 && matches!(v.kind, ModelKind::Cnn(a) if a == arch0))
                            || (v.input == rep1
                                && matches!(v.kind, ModelKind::Cnn(a) if a == arch1))
                    })
                    .enumerate()
                    .map(|(i, mut v)| {
                        v.id = ModelId(i as u32);
                        v
                    })
                    .collect(),
            ),
            ..Default::default()
        };
        let repo = build_surrogate_repository(pred, &repo_cfg, &DeviceProfile::k80());
        let builder = BuilderConfig {
            pool: repo.specialized_ids(),
            reference: None,
            n_settings: 3,
            max_pool_depth: 2,
            with_reference_terminal: false,
        };
        let system = TahomaSystem::initialize(repo, &[0.93, 0.95, 0.99], &builder);

        let mut zoo = SharedModelZoo::new().with_source(rep_src);
        let net_seed = cfg.seed ^ (0xA11 + 2 * ki as u64);
        zoo.register(
            ModelId(0),
            rep0,
            arch0.cnn_spec(rep0).build(net_seed).expect("valid spec"),
        );
        zoo.register(
            ModelId(1),
            rep1,
            arch1
                .cnn_spec(rep1)
                .build(net_seed + 1)
                .expect("valid spec"),
        );

        // Execution-time threshold override calibrated from the live score
        // distributions (planning still uses the system's table).
        let mut per_model = Vec::with_capacity(system.repo.len());
        {
            let mut scratch = NnSessionScratch::new();
            let mut scorer = SharedNnScorer::new(&store, &zoo, &mut scratch);
            for id in 0..system.repo.len() {
                if zoo.input_rep(ModelId(id as u32)).is_none() {
                    // The appended reference entry has no network; it never
                    // appears in a planned cascade and must never decide.
                    per_model.push(vec![DecisionThresholds::never_decide(); 3]);
                    continue;
                }
                let mut scores = Vec::new();
                scorer.score_batch(
                    ModelId(id as u32),
                    ScorePack::standalone(&items),
                    &mut scores,
                );
                per_model.push(quantile_cuts(&mut scores));
            }
        }
        let exec_thresholds = ThresholdTable {
            settings: vec![0.93, 0.95, 0.99],
            per_model,
        };

        service.add_nn_kind(
            kind,
            system,
            Some(exec_thresholds),
            Arc::clone(&store),
            zoo,
            Arc::clone(&corpus),
            cfg.window,
            cfg.max_rows,
        );
    }
    service
}

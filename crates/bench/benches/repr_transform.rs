//! Criterion bench: the SIMD transcode engine vs the seed scalar pipeline.
//!
//! Per-kernel numbers for the three per-frame sweeps (separable resize,
//! RGB→gray luma, standardize) across every tier the host supports, plus
//! the end-to-end number the ONGOING scenario lives on: materializing the
//! full 20-representation `paper_set()` from one RGB frame (120px — the
//! reduced-scale serving shape — and 224px, the paper's full size),
//! scalar-reference loop vs lattice-planned engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tahoma_imagery::engine::{Kernel, TranscodeCosts, TranscodeEngine, TranscodePlan};
use tahoma_imagery::repr::apply_reference;
use tahoma_imagery::transform::{resize_bilinear_reference, standardize};
use tahoma_imagery::{ColorMode, Image, Representation};

fn frame(size: usize) -> Image {
    Image::from_fn(size, size, ColorMode::Rgb, |c, y, x| {
        ((c * 13 + y * 7 + x * 3) % 17) as f32 / 17.0
    })
    .unwrap()
}

/// Per-kernel-tier resize: 224px gray plane to 120px and 30px.
fn bench_resize_kernels(c: &mut Criterion) {
    let src = frame(224);
    let gray = Representation::new(224, ColorMode::Gray)
        .apply(&src)
        .unwrap();
    let mut group = c.benchmark_group("resize_224gray");
    for out in [120usize, 30] {
        group.bench_with_input(BenchmarkId::new("scalar_ref", out), &out, |b, &out| {
            b.iter(|| black_box(resize_bilinear_reference(&gray, out, out).unwrap()))
        });
        for kernel in Kernel::available() {
            let mut e = TranscodeEngine::with_kernel(kernel);
            group.bench_with_input(BenchmarkId::new(kernel.name(), out), &out, |b, &out| {
                b.iter(|| black_box(e.resize_bilinear(&gray, out, out).unwrap()))
            });
        }
        // `Auto` under the per-op-class policy: the heuristic default pins
        // the gathered horizontal pass to AVX2, so this line must track
        // the avx2 tier above, not the avx512 one (the ROADMAP gather
        // regression, fixed by policy).
        let mut e = TranscodeEngine::new();
        group.bench_with_input(BenchmarkId::new("auto_policy", out), &out, |b, &out| {
            b.iter(|| black_box(e.resize_bilinear(&gray, out, out).unwrap()))
        });
    }
    group.finish();
}

/// Per-kernel-tier luma reduction and standardize on a 224px frame.
fn bench_sweep_kernels(c: &mut Criterion) {
    let src = frame(224);
    let gray_rep = Representation::new(224, ColorMode::Gray);
    let mut group = c.benchmark_group("sweeps_224");
    group.bench_function("luma/scalar_ref", |b| {
        b.iter(|| {
            black_box(
                tahoma_imagery::transform::convert_mode_reference(&src, ColorMode::Gray).unwrap(),
            )
        })
    });
    for kernel in Kernel::available() {
        let mut e = TranscodeEngine::with_kernel(kernel);
        group.bench_function(format!("luma/{}", kernel.name()), |b| {
            b.iter(|| black_box(e.apply(&src, gray_rep).unwrap()))
        });
    }
    for kernel in Kernel::available() {
        let mut e = TranscodeEngine::with_kernel(kernel);
        group.bench_function(format!("standardize/{}", kernel.name()), |b| {
            b.iter(|| black_box(e.standardize(&src)))
        });
    }
    group.bench_function("standardize/thread_local_auto", |b| {
        b.iter(|| black_box(standardize(&src)))
    });
    group.finish();
}

/// End-to-end: the full paper_set materialized from one RGB frame.
fn bench_paper_set(c: &mut Criterion) {
    let reps = Representation::paper_set();
    let mut group = c.benchmark_group("paper_set_materialize");
    for src_size in [120usize, 224] {
        let src = frame(src_size);
        group.bench_with_input(BenchmarkId::new("scalar_ref", src_size), &src, |b, src| {
            b.iter(|| {
                for &rep in &reps {
                    black_box(apply_reference(src, rep).unwrap());
                }
            })
        });
        for kernel in Kernel::available() {
            let mut e = TranscodeEngine::with_kernel(kernel);
            let plan = TranscodePlan::new(src_size, src_size, &reps, &TranscodeCosts::default());
            group.bench_with_input(
                BenchmarkId::new(format!("engine_{}", kernel.name()), src_size),
                &src,
                |b, src| b.iter(|| black_box(e.apply_planned(src, &plan).unwrap())),
            );
        }
        // The unplanned engine path (per-rep apply): isolates the lattice's
        // contribution from the kernels'.
        let mut e = TranscodeEngine::new();
        group.bench_with_input(
            BenchmarkId::new("engine_auto_unplanned", src_size),
            &src,
            |b, src| {
                b.iter(|| {
                    for &rep in &reps {
                        black_box(e.apply(src, rep).unwrap());
                    }
                })
            },
        );
        // Steady-state serving: outputs recycled after each frame, so the
        // whole set materializes with zero large allocations.
        let mut e = TranscodeEngine::new();
        let plan = TranscodePlan::new(src_size, src_size, &reps, &TranscodeCosts::default());
        group.bench_with_input(
            BenchmarkId::new("engine_auto_recycled", src_size),
            &src,
            |b, src| {
                b.iter(|| {
                    let v = e.apply_planned(src, &plan).unwrap();
                    black_box(&v);
                    e.recycle(v);
                })
            },
        );
    }
    group.finish();
}

/// End-to-end ONGOING ingest: paper_set materialization + raw encoding per
/// frame through the representation store.
fn bench_store_ingest(c: &mut Criterion) {
    let src = frame(224);
    let mut group = c.benchmark_group("store_ingest_paper_set");
    group.bench_function("engine", |b| {
        let store = tahoma_imagery::RepresentationStore::new(Representation::paper_set());
        // Constant id: each iteration overwrites the same blobs, so the
        // store stays bounded and the loop measures steady-state ingest
        // rather than progressive map growth.
        b.iter(|| store.ingest(7, &src).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_resize_kernels,
    bench_sweep_kernels,
    bench_paper_set,
    bench_store_ingest
);
criterion_main!(benches);

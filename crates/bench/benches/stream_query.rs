//! Criterion bench: continuous standing queries over live video streams.
//!
//! Two families, five gated lines:
//!
//! * `stream_query/tick_r{64,256}` — one serve-level `TICK` end to end
//!   (render this tick's STEP frames, slide the window, score only the
//!   entrants through the service backend) at two window sizes. Because
//!   evaluation is incremental, per-tick cost — and so frames/s — should
//!   be flat in RANGE; the printed table reports frames/s at both sizes.
//! * `stream_query/two_streams_tick` — the multi-stream scenario: two
//!   camera streams (coral, jackson) carrying the same content predicate
//!   but separate windows, one tick of each per iteration.
//! * `stream_query/incremental_r2048_s256` vs `stream_query/rescan_r2048_s256`
//!   — the core window executor on a full RANGE=2048 window: advance one
//!   STEP=256 slide incrementally (ingest + score entrants only) vs
//!   re-evaluate the whole window from scratch. RANGE = 8xSTEP (the
//!   acceptance bar asks RANGE at least 4xSTEP), so incremental must
//!   come out at least 2x over the rescan (asserted below from
//!   interleaved medians, with every tick's incremental result checked
//!   identical to the rescan).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use tahoma_core::continuous::{ContinuousExecutor, WindowSpec};
use tahoma_core::evaluator::CostContext;
use tahoma_core::query::{Corpus, Query};
use tahoma_core::thresholds::calibrate_all;
use tahoma_core::{Cascade, SurrogateBatchScorer, VectorizedExecutor, PAPER_PRECISION_SETTINGS};
use tahoma_costmodel::{AnalyticProfiler, DeviceProfile, Scenario};
use tahoma_imagery::ObjectKind;
use tahoma_serve::fixture::surrogate_service;
use tahoma_serve::{QueryService, StreamRegistry};
use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
use tahoma_zoo::variant::paper_variants;
use tahoma_zoo::{ModelRepository, PredicateSpec, SurrogateScorer};

const SQL: &str = "SELECT * FROM frames WHERE contains_object(fence)";

fn serve_fixture() -> (QueryService, StreamRegistry) {
    (
        surrogate_service(&[ObjectKind::Fence], 128, 0x57E4),
        StreamRegistry::new(0x57AE),
    )
}

/// Serve-level ticks at two window sizes: the whole REGISTER/TICK path
/// minus the wire (frame rendering, window slide, entrant scoring through
/// the shared service backend).
fn bench_serve_ticks(c: &mut Criterion) {
    let (service, registry) = serve_fixture();
    let r64 = registry
        .register(&service, "coral", 64, 16, SQL)
        .expect("register r64");
    let r256 = registry
        .register(&service, "coral", 256, 16, SQL)
        .expect("register r256");

    let mut group = c.benchmark_group("stream_query");
    group.sample_size(10);
    group.bench_function("tick_r64", |b| {
        b.iter(|| black_box(registry.tick(&service, r64.qid).expect("tick")))
    });
    group.bench_function("tick_r256", |b| {
        b.iter(|| black_box(registry.tick(&service, r256.qid).expect("tick")))
    });
    group.finish();

    // Frames/s table from interleaved medians (round-robin so both window
    // sizes see the same machine state), plus the server-side equivalence
    // check after real ticks have run.
    let rounds = 9;
    let mut t64 = Vec::with_capacity(rounds);
    let mut t256 = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        black_box(registry.tick(&service, r64.qid).expect("tick"));
        t64.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(registry.tick(&service, r256.qid).expect("tick"));
        t256.push(t.elapsed().as_secs_f64());
    }
    t64.sort_by(f64::total_cmp);
    t256.sort_by(f64::total_cmp);
    eprintln!("stream_query serve ticks (STEP=16, interleaved medians):");
    eprintln!("  range | tick ms | frames/s");
    for (range, med) in [(64u64, t64[rounds / 2]), (256, t256[rounds / 2])] {
        eprintln!("  {:>5} | {:>7.3} | {:>8.0}", range, med * 1e3, 16.0 / med);
    }
    for report in [&r64, &r256] {
        let status = registry.status(&service, report.qid).expect("status");
        assert!(
            status.agree,
            "standing query {} (RANGE {}): incremental != rescan",
            report.qid, report.range
        );
    }
}

/// Two streams, same predicate, independent windows.
fn bench_two_streams(c: &mut Criterion) {
    let (service, registry) = serve_fixture();
    let coral = registry
        .register(&service, "coral", 64, 16, SQL)
        .expect("register coral");
    let jackson = registry
        .register(&service, "jackson", 128, 16, SQL)
        .expect("register jackson");

    let mut group = c.benchmark_group("stream_query");
    group.sample_size(10);
    group.bench_function("two_streams_tick", |b| {
        b.iter(|| {
            black_box(registry.tick(&service, coral.qid).expect("tick coral"));
            black_box(registry.tick(&service, jackson.qid).expect("tick jackson"));
        })
    });
    group.finish();

    let sc = registry.status(&service, coral.qid).expect("status coral");
    let sj = registry
        .status(&service, jackson.qid)
        .expect("status jackson");
    assert!(sc.agree && sj.agree, "a stream's window diverged");
    eprintln!(
        "stream_query two streams: coral window {}..{} ({} matched), \
         jackson window {}..{} ({} matched), both agree with rescan",
        sc.window_start, sc.window_end, sc.matched, sj.window_start, sj.window_end, sj.matched
    );
}

struct CoreFixture {
    repo: ModelRepository,
    scorer: SurrogateScorer,
    cost: CostContext,
    corpus: Corpus,
}

fn core_fixture() -> CoreFixture {
    let pred = PredicateSpec::for_kind(ObjectKind::Fence);
    let cfg = SurrogateBuildConfig {
        n_config: 150,
        n_eval: 200,
        seed: 0x5BE1,
        variants: Some(paper_variants().into_iter().step_by(17).collect()),
        ..Default::default()
    };
    let scorer = SurrogateScorer {
        pred,
        params: cfg.params,
        seed: cfg.seed,
    };
    let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    let cost = CostContext::build(&repo, &profiler);
    CoreFixture {
        repo,
        scorer,
        cost,
        corpus: Corpus::synthetic(4096, 0.3, 0x5C),
    }
}

const RANGE: u64 = 2048;
const STEP: u64 = 256;

fn standing_query(repo: &ModelRepository) -> (Query, BTreeMap<ObjectKind, Cascade>) {
    let query = Query {
        table: "frames".into(),
        metadata: Vec::new(),
        content: vec![ObjectKind::Fence],
    };
    // Depth-3 pool cascade (cheap -> mid -> strongest), the paper's
    // realistic standing-query shape: most per-tick cost is row scoring,
    // which is exactly what the incremental path scales down.
    let strongest = (repo.specialized_ids().len() - 1) as u16;
    let mid = (repo.len() / 2) as u16;
    let mut cascades = BTreeMap::new();
    cascades.insert(
        ObjectKind::Fence,
        Cascade::new(&[(0, 3), (mid, 2), (strongest, 0)]),
    );
    (query, cascades)
}

/// A window executor primed to a full RANGE-sized window, with `feed`
/// pointing at the next arrival.
fn primed(fx: &CoreFixture, exec: &VectorizedExecutor<'_>) -> (ContinuousExecutor, usize) {
    let (query, cascades) = standing_query(&fx.repo);
    let window = WindowSpec::new(RANGE, STEP).expect("window");
    let mut cx = ContinuousExecutor::register(query, cascades, window).expect("register");
    let mut scorer = SurrogateBatchScorer::new(&fx.scorer, &fx.repo);
    let mut fed = 0usize;
    for _ in 0..(RANGE / STEP) {
        for _ in 0..STEP {
            cx.ingest(fx.corpus.items[fed % fx.corpus.items.len()].clone());
            fed += 1;
        }
        cx.tick_batched(exec, &mut scorer).expect("prime tick");
    }
    (cx, fed)
}

/// Core incremental slide vs from-scratch window rescan on a full
/// RANGE=8xSTEP window. The rescan line does no ingest at all, so the
/// measured ratio *understates* the incremental path's advantage.
fn bench_incremental_vs_rescan(c: &mut Criterion) {
    let fx = core_fixture();
    let thresholds = calibrate_all(&fx.repo, &PAPER_PRECISION_SETTINGS);
    let exec = VectorizedExecutor::new(&fx.repo, &thresholds, &fx.cost);
    let (mut cx, mut fed) = primed(&fx, &exec);
    let mut scorer = SurrogateBatchScorer::new(&fx.scorer, &fx.repo);

    let mut group = c.benchmark_group("stream_query");
    group.bench_function("incremental_r2048_s256", |b| {
        b.iter(|| {
            for _ in 0..STEP {
                cx.ingest(fx.corpus.items[fed % fx.corpus.items.len()].clone());
                fed += 1;
            }
            black_box(cx.tick_batched(&exec, &mut scorer).expect("tick"))
        })
    });
    group.bench_function("rescan_r2048_s256", |b| {
        b.iter(|| black_box(cx.rescan_batched(&exec, &mut scorer).expect("rescan")))
    });
    group.finish();

    // Headline ratio from interleaved medians, with the equivalence
    // oracle checked on every round: the incremental result set must be
    // identical to the from-scratch re-evaluation at every slide.
    let rounds = 15;
    let mut inc = Vec::with_capacity(rounds);
    let mut res = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..STEP {
            cx.ingest(fx.corpus.items[fed % fx.corpus.items.len()].clone());
            fed += 1;
        }
        black_box(cx.tick_batched(&exec, &mut scorer).expect("tick"));
        inc.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let rescan = black_box(cx.rescan_batched(&exec, &mut scorer).expect("rescan"));
        res.push(t.elapsed().as_secs_f64());
        assert_eq!(rescan, cx.matched(), "incremental != rescan after a slide");
    }
    inc.sort_by(f64::total_cmp);
    res.sort_by(f64::total_cmp);
    let (im, rm) = (inc[rounds / 2], res[rounds / 2]);
    eprintln!(
        "stream_query incremental vs rescan (RANGE={RANGE} STEP={STEP}, interleaved medians): \
         incremental {:.1} µs / rescan {:.1} µs = {:.2}x",
        im * 1e6,
        rm * 1e6,
        rm / im,
    );
    assert!(
        rm / im >= 2.0,
        "incremental slide must be >= 2x faster than a full rescan at RANGE=8xSTEP \
         (got {:.2}x)",
        rm / im
    );
}

criterion_group!(
    benches,
    bench_serve_ticks,
    bench_two_streams,
    bench_incremental_vs_rescan
);
criterion_main!(benches);

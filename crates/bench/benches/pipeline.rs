//! Criterion bench: end-to-end system initialization (repository scoring +
//! threshold calibration + cascade enumeration + simulation) at reduced
//! scale — the paper's per-predicate "system initialization" phase.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tahoma_core::pipeline::TahomaSystem;
use tahoma_costmodel::DeviceProfile;
use tahoma_imagery::ObjectKind;
use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
use tahoma_zoo::PredicateSpec;

fn bench_pipeline(c: &mut Criterion) {
    let cfg = SurrogateBuildConfig {
        n_config: 250,
        n_eval: 400,
        seed: 3,
        variants: Some(
            tahoma_zoo::variant::paper_variants()
                .into_iter()
                .step_by(8)
                .collect(),
        ),
        ..Default::default()
    };
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("repository_build_45_models", |b| {
        b.iter(|| {
            black_box(build_surrogate_repository(
                PredicateSpec::for_kind(ObjectKind::Fence),
                &cfg,
                &DeviceProfile::k80(),
            ))
        })
    });
    let repo = build_surrogate_repository(
        PredicateSpec::for_kind(ObjectKind::Fence),
        &cfg,
        &DeviceProfile::k80(),
    );
    group.bench_function("system_initialize_45_models", |b| {
        b.iter(|| black_box(TahomaSystem::initialize_paper_main(repo.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

//! Criterion bench: the measured per-op-class kernel policy.
//!
//! Three views:
//!
//! * a one-shot `costmodel::kernels::calibrate()` whose table and winning
//!   policy are printed up front (the same measurement a serving process
//!   runs at start-up);
//! * `kernel_class`: every (op class, tier) calibration workload measured
//!   criterion-style — the machine-readable per-class trend signal the CI
//!   bench-trend job archives (`--json`);
//! * `policy_dispatch`: hot paths dispatched through `Kernel::Auto` after
//!   `calibrate_and_install()`, pinned against the acceptance bar — Auto
//!   must run the measured winner (e.g. the 224→120 gray resize at the
//!   AVX2 gather tier's time, not the AVX-512 gather's).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tahoma_costmodel::kernels;
use tahoma_imagery::engine::{Kernel as IKernel, TranscodeEngine};
use tahoma_imagery::{ColorMode, Image, Representation};
use tahoma_mathx::simd_policy::{OpClass, SimdTier};
use tahoma_nn::gemm::Kernel as NKernel;
use tahoma_nn::kernels as nn_kernels;

/// The tiers whose workloads can run on this CPU, per class (mirrors the
/// calibration's tier sets).
fn tiers_for(class: OpClass) -> Vec<SimdTier> {
    match class {
        OpClass::Gemm | OpClass::GemmWideK | OpClass::Matvec | OpClass::Relu | OpClass::Pool => {
            NKernel::available().into_iter().map(|k| k.tier()).collect()
        }
        _ => IKernel::available().into_iter().map(|k| k.tier()).collect(),
    }
}

/// Print the one-shot calibration (table + winning policy) before the
/// criterion sweeps, so the bench log shows what a serving process would
/// install on this machine.
fn bench_calibration_report(_c: &mut Criterion) {
    let cal = kernels::calibrate();
    println!("--- one-shot kernel calibration (costmodel::kernels::calibrate) ---");
    print!("{}", cal.table());
    println!("--- winning policy ---");
    print!("{}", cal.policy.serialize());
    println!();
}

fn bench_kernel_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_class");
    for class in OpClass::ALL {
        for tier in tiers_for(class) {
            let mut work = kernels::workload(class, tier);
            group.bench_with_input(
                BenchmarkId::new(class.name(), tier.name()),
                &tier,
                |b, _| b.iter(&mut work),
            );
        }
    }
    group.finish();
}

/// `Auto` dispatch under the freshly calibrated-and-installed policy: the
/// end state every serving process reaches. The resize case is the
/// acceptance bar for the AVX-512-gather fix; matvec is the acceptance bar
/// for the batch-1 dense speedup.
fn bench_policy_dispatch(c: &mut Criterion) {
    let cal = kernels::calibrate_and_install();
    println!(
        "policy_dispatch runs under the installed policy (resize-h-gather -> {})",
        cal.policy.tier(OpClass::ResizeHGather).name()
    );
    let mut group = c.benchmark_group("policy_dispatch");

    let src = Image::from_fn(224, 224, ColorMode::Rgb, |c, y, x| {
        ((c * 13 + y * 7 + x * 3) % 17) as f32 / 17.0
    })
    .unwrap();
    let gray = Representation::new(224, ColorMode::Gray)
        .apply(&src)
        .unwrap();
    let mut engine = TranscodeEngine::new(); // Kernel::Auto -> installed policy
    group.bench_function("resize_224to120_gray_auto", |b| {
        b.iter(|| {
            let img = engine.resize_bilinear(&gray, 120, 120).unwrap();
            black_box(img.data()[0]);
            engine.recycle([img]);
        })
    });

    let (n_out, n_in) = (16usize, 3600usize);
    let weights: Vec<f32> = (0..n_out * n_in)
        .map(|i| (i % 97) as f32 / 97.0 - 0.5)
        .collect();
    let bias = vec![0.1f32; n_out];
    let x: Vec<f32> = (0..n_in).map(|i| (i % 89) as f32 / 89.0 - 0.5).collect();
    let mut out = vec![0.0f32; n_out];
    group.bench_function("matvec_16x3600_auto", |b| {
        b.iter(|| {
            nn_kernels::matvec(NKernel::Auto, &weights, &bias, &x, &mut out);
            black_box(out[0]);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_calibration_report,
    bench_kernel_classes,
    bench_policy_dispatch
);
criterion_main!(benches);

//! Criterion bench: codec encode/decode — the load/decode side of the
//! ARCHIVE and ONGOING deployment scenarios.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tahoma_imagery::{BlockCodec, Codec, ColorMode, Image, RawCodec};
use tahoma_mathx::DetRng;

fn scene() -> Image {
    let mut rng = DetRng::new(8);
    Image::from_fn(224, 224, ColorMode::Rgb, |c, y, x| {
        (0.4 + 0.1 * ((x + y + c * 37) as f32 / 224.0) + 0.02 * rng.standard_normal() as f32)
            .clamp(0.0, 1.0)
    })
    .unwrap()
}

fn bench_codecs(c: &mut Criterion) {
    let img = scene();
    let raw = RawCodec;
    let block = BlockCodec::default();
    let raw_bytes = raw.encode(&img);
    let block_bytes = block.encode(&img);

    c.bench_function("raw_encode_224rgb", |b| {
        b.iter(|| black_box(raw.encode(black_box(&img))))
    });
    c.bench_function("raw_decode_224rgb", |b| {
        b.iter(|| black_box(raw.decode(black_box(&raw_bytes)).unwrap()))
    });
    c.bench_function("block_encode_224rgb", |b| {
        b.iter(|| black_box(block.encode(black_box(&img))))
    });
    c.bench_function("block_decode_224rgb", |b| {
        b.iter(|| black_box(block.decode(black_box(&block_bytes)).unwrap()))
    });
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);

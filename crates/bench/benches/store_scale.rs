//! Criterion bench: the persistent segment store at corpus scale.
//!
//! The tentpole measurements for the sharded mmap-backed tier and the §V
//! budget policy, in five parts:
//!
//! * `store_scale/fetch/{ram,mmap,pread}` — warm single-fetch latency over
//!   the full corpus (10^5 items, 10^4 in `--quick`), prime-stride walk so
//!   every shard and file region is touched. Baseline-gated.
//! * `store_scale/query_depth2/{ram,mmap}` — a real depth-2 NN sweep
//!   (fetch → pooled decode → standardize → `infer_batch`, both levels)
//!   over a pack spread across the corpus, plus an interleaved-medians
//!   ratio with the acceptance bar: warm persistent-tier query latency
//!   within 1.2x of in-RAM. Baseline-gated; ratio asserted.
//! * Cold numbers (printed): reopen the store directory (recovery scan +
//!   CRC accounting) and time the first depth-2 sweep against the second,
//!   and one full-corpus depth-2 sweep per tier at scale.
//! * Ingest throughput (printed): raw segment appends from 1 and 4
//!   threads across 8 shards, items/s and MB/s per shard.
//! * Budget policy (printed + asserted): at an intermediate per-item byte
//!   budget, the measured total cost (ingest + sync + Q query sweeps) of
//!   the `plan_materialization` choice beats both extremes —
//!   materialize-everything pays storage amplification it cannot repay,
//!   transcode-everything pays a source fetch + transcode per query.
//!
//! Byte identity between the tiers is asserted on a sample here and
//! property-tested exhaustively in `tests/proptests.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use tahoma_core::exec::{BatchScorer, NnBatchScorer, ScorePack};
use tahoma_core::query::{Corpus, CorpusItem};
use tahoma_costmodel::io::stored_record_bytes;
use tahoma_costmodel::{plan_materialization, IoProfile, TransformCostModel};
use tahoma_imagery::codec::{Codec, RawCodec};
use tahoma_imagery::{
    AccessMode, ColorMode, Image, Representation, RepresentationStore, SegmentStore,
    TranscodeEngine,
};
use tahoma_nn::Sequential;
use tahoma_zoo::{ArchSpec, ModelId};

/// Depth-2 cascade layout: level-0 consumes REP0, level-1 REP1, both
/// materialized in the store (the ONGOING layout).
const REP0: Representation = Representation::new(24, ColorMode::Gray);
const REP1: Representation = Representation::new(32, ColorMode::Rgb);
/// Source frames are 64px RGB (bench-scale stand-in for the full frame).
const SOURCE_PX: usize = 64;
const SHARDS: usize = 8;
/// Distinct frames cycled across ids: enough to defeat value shortcuts,
/// cheap enough to keep frame synthesis out of every measurement.
const FRAME_POOL: usize = 256;

fn quick() -> bool {
    // The vendored criterion keeps its parsed CLI private; quick mode is
    // detected the same way `repro.rs` does.
    std::env::args().any(|a| a == "--quick")
}

fn corpus_n() -> usize {
    if quick() {
        10_000
    } else {
        100_000
    }
}

fn frame_pool() -> Vec<Image> {
    (0..FRAME_POOL as u64)
        .map(|seed| {
            Image::from_fn(SOURCE_PX, SOURCE_PX, ColorMode::Rgb, move |c, y, x| {
                let h = (x as u64 * 31 + y as u64 * 7 + c as u64 * 97 + seed * 13) % 17;
                h as f32 / 16.0
            })
            .expect("valid dims")
        })
        .collect()
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tahoma-store-scale-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_model(arch: ArchSpec, rep: Representation, seed: u64) -> Sequential {
    arch.cnn_spec(rep).build(seed).expect("valid spec")
}

fn scorer_for(store: &RepresentationStore) -> NnBatchScorer<'_> {
    let arch0 = ArchSpec {
        conv_layers: 1,
        conv_nodes: 16,
        dense_nodes: 16,
    };
    let arch1 = ArchSpec {
        conv_layers: 2,
        conv_nodes: 16,
        dense_nodes: 32,
    };
    let mut scorer = NnBatchScorer::new(store);
    scorer.register(ModelId(0), REP0, build_model(arch0, REP0, 11));
    scorer.register(ModelId(1), REP1, build_model(arch1, REP1, 12));
    scorer
}

/// Worst-case depth-2 sweep: every item scored at both levels (no early
/// decisions), i.e. the storage-heaviest query the cascade can issue.
/// Corpora larger than one pack are scored in pack-sized chunks, the way
/// the executor batches at scale (one giant `infer_batch` would thrash
/// the activation working set and measure the allocator, not the store).
fn depth2_sweep(scorer: &mut NnBatchScorer<'_>, items: &[&CorpusItem], out: &mut Vec<f32>) -> f32 {
    let mut acc = 0.0;
    for chunk in items.chunks(1_024) {
        out.clear();
        scorer.score_batch(ModelId(0), ScorePack::standalone(chunk), out);
        scorer.score_batch(ModelId(1), ScorePack::standalone(chunk), out);
        acc += out.iter().sum::<f32>();
    }
    acc
}

/// Fetch latency, depth-2 query latency, byte identity, and cold-open
/// timings over one corpus ingested into all three tiers.
fn bench_store_scale(c: &mut Criterion) {
    let n = corpus_n();
    let frames = frame_pool();
    let mmap_dir = bench_dir("mmap");
    let pread_dir = bench_dir("pread");

    let mut ram = RepresentationStore::new(vec![REP0, REP1]);
    let mut mmap = RepresentationStore::persistent_with_mode(
        vec![REP0, REP1],
        &mmap_dir,
        SHARDS,
        AccessMode::Mmap,
    )
    .expect("mmap store");
    let mut pread = RepresentationStore::persistent_with_mode(
        vec![REP0, REP1],
        &pread_dir,
        SHARDS,
        AccessMode::Pread,
    )
    .expect("pread store");
    for (tag, store) in [
        ("ram", &mut ram),
        ("mmap", &mut mmap),
        ("pread", &mut pread),
    ] {
        let t0 = Instant::now();
        for id in 0..n as u64 {
            store
                .ingest(id, &frames[id as usize % FRAME_POOL])
                .expect("ingest");
        }
        store.sync().expect("sync");
        let dt = t0.elapsed().as_secs_f64();
        eprintln!(
            "store_scale ingest[{tag}]: {n} items ({:.1} MB payload) in {:.2} s = {:.0} items/s",
            store.total_bytes() as f64 / 1e6,
            dt,
            n as f64 / dt,
        );
    }

    // Byte identity on a stride sample (exhaustive identity is
    // property-tested in tests/proptests.rs).
    let step = (n / 512).max(1);
    for id in (0..n as u64).step_by(step) {
        for rep in [REP0, REP1] {
            let want = ram.with_blob(id, rep, |b| b.to_vec()).unwrap().unwrap();
            for (tag, store) in [("mmap", &mmap), ("pread", &pread)] {
                let got = store.with_blob(id, rep, |b| b.to_vec()).unwrap().unwrap();
                assert_eq!(got, want, "{tag} diverged from RAM at id {id} rep {rep}");
            }
        }
    }

    // Warm single-fetch latency, prime-stride walk over the whole corpus.
    let mut group = c.benchmark_group("store_scale/fetch");
    for (tag, store) in [("ram", &ram), ("mmap", &mmap), ("pread", &pread)] {
        let mut engine = TranscodeEngine::new();
        let mut id = 0u64;
        group.bench_function(tag, |b| {
            b.iter(|| {
                id = (id + 40_009) % n as u64;
                let img = store.fetch(id, REP0, &mut engine).unwrap().unwrap();
                let v = black_box(img.data()[0]);
                engine.recycle([img]);
                v
            })
        });
    }
    group.finish();

    // Depth-2 query over a pack whose ids are spread across the corpus,
    // so the fetch side touches every shard and file region.
    let pack_n = if quick() { 1_024 } else { 2_048 };
    let mut pack = Corpus::synthetic(pack_n, 0.3, 0xD15C);
    let spread = (n / pack_n).max(1) as u64;
    for item in pack.items.iter_mut() {
        item.id *= spread;
    }
    let items: Vec<&CorpusItem> = pack.items.iter().collect();
    let mut out = Vec::new();
    let mut group = c.benchmark_group("store_scale/query_depth2");
    let mut scorer_ram = scorer_for(&ram);
    group.bench_function("ram", |b| {
        b.iter(|| black_box(depth2_sweep(&mut scorer_ram, &items, &mut out)))
    });
    let mut scorer_mmap = scorer_for(&mmap);
    group.bench_function("mmap", |b| {
        b.iter(|| black_box(depth2_sweep(&mut scorer_mmap, &items, &mut out)))
    });
    group.finish();

    // The acceptance ratio, measured round-robin (interleaved medians) so
    // both tiers see the same machine state.
    let rounds = 9;
    let mut ram_s = Vec::with_capacity(rounds);
    let mut mmap_s = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        black_box(depth2_sweep(&mut scorer_ram, &items, &mut out));
        ram_s.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(depth2_sweep(&mut scorer_mmap, &items, &mut out));
        mmap_s.push(t.elapsed().as_secs_f64());
    }
    ram_s.sort_by(f64::total_cmp);
    mmap_s.sort_by(f64::total_cmp);
    let (rm, mm) = (ram_s[rounds / 2], mmap_s[rounds / 2]);
    eprintln!(
        "store_scale query_depth2 warm ({n}-item corpus, {pack_n}-item pack, interleaved \
         medians): ram {:.2} ms / mmap {:.2} ms = {:.3}x",
        rm * 1e3,
        mm * 1e3,
        mm / rm,
    );
    assert!(
        mm / rm < 1.2,
        "persistent warm depth-2 latency {:.3}x of RAM exceeds the 1.2x bar",
        mm / rm
    );

    // One full-corpus depth-2 sweep per tier: the at-scale query latency.
    let full = Corpus::synthetic(n, 0.3, 0xF0F0);
    let full_items: Vec<&CorpusItem> = full.items.iter().collect();
    for (tag, scorer) in [("ram", &mut scorer_ram), ("mmap", &mut scorer_mmap)] {
        let t = Instant::now();
        black_box(depth2_sweep(scorer, &full_items, &mut out));
        eprintln!(
            "store_scale query_depth2 full corpus [{tag}]: {n} items in {:.2} s",
            t.elapsed().as_secs_f64()
        );
    }
    drop(scorer_ram);
    drop(scorer_mmap);

    // Cold: a fresh process-equivalent reopen (recovery scan + CRC
    // accounting rebuild), then first-vs-second depth-2 sweep through a
    // brand-new mapping.
    drop(mmap);
    let t = Instant::now();
    let (cold, report) =
        RepresentationStore::open_with_mode(&mmap_dir, AccessMode::Mmap).expect("reopen");
    let open_s = t.elapsed().as_secs_f64();
    assert_eq!(cold.frames(), n as u64, "reopen lost frames");
    let mut scorer_cold = scorer_for(&cold);
    let t = Instant::now();
    black_box(depth2_sweep(&mut scorer_cold, &items, &mut out));
    let first_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    black_box(depth2_sweep(&mut scorer_cold, &items, &mut out));
    let second_s = t.elapsed().as_secs_f64();
    eprintln!(
        "store_scale cold open: {} records recovered in {:.1} ms; depth-2 over {pack_n}: \
         first {:.2} ms, second {:.2} ms",
        report.records,
        open_s * 1e3,
        first_s * 1e3,
        second_s * 1e3,
    );
    drop(scorer_cold);
    drop(cold);
    drop(pread);
    let _ = std::fs::remove_dir_all(&mmap_dir);
    let _ = std::fs::remove_dir_all(&pread_dir);
}

/// Raw per-shard append throughput: pre-encoded payloads, 1 vs 4 writer
/// threads over the same 8-shard store (appends fan out per shard, so
/// threads contend only within a shard).
fn bench_ingest_throughput(_c: &mut Criterion) {
    let n = if quick() { 8_000u64 } else { 24_000 };
    let frames = frame_pool();
    let mut engine = TranscodeEngine::new();
    let blobs: Vec<(Representation, Vec<u8>)> = (0..8u64)
        .flat_map(|i| [REP0, REP1].into_iter().map(move |rep| (i, rep)))
        .map(|(i, rep)| {
            let img = engine.apply(&frames[i as usize], rep).expect("transcode");
            let blob = RawCodec.encode(&img).as_ref().to_vec();
            engine.recycle([img]);
            (rep, blob)
        })
        .collect();
    for threads in [1usize, 4] {
        let dir = bench_dir(&format!("ingest-{threads}"));
        let seg = SegmentStore::create(&dir, SHARDS, AccessMode::auto()).expect("create");
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for w in 0..threads {
                let seg = &seg;
                let blobs = &blobs;
                s.spawn(move || {
                    for id in (w as u64..n).step_by(threads) {
                        for (rep, blob) in &blobs[(id as usize % 8) * 2..(id as usize % 8) * 2 + 2]
                        {
                            seg.append(id, *rep, blob).expect("append");
                        }
                    }
                });
            }
        });
        seg.sync().expect("sync");
        let dt = t0.elapsed().as_secs_f64();
        let mb = seg.committed_bytes() as f64 / 1e6;
        eprintln!(
            "store_scale ingest_throughput: {threads} thread(s) x {SHARDS} shards, {n} items: \
             {:.0} items/s, {:.0} MB/s ({:.0} MB/s per shard)",
            n as f64 / dt,
            mb / dt,
            mb / dt / SHARDS as f64,
        );
        drop(seg);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The §V acceptance comparison: at an intermediate per-item byte budget,
/// the measured total cost (ingest + sync + Q query sweeps) of the policy
/// plan beats materializing every lattice node and beats materializing
/// only the source.
fn bench_budget_policy(_c: &mut Criterion) {
    let n = if quick() { 1_500u64 } else { 4_000 };
    // Enough query sweeps that materializing the cheap-to-store reps pays
    // for itself, few enough that materializing everything cannot repay
    // its storage amplification — the intermediate regime §V is about.
    let q_sweeps = 3usize;
    let source = Representation::new(SOURCE_PX, ColorMode::Rgb);
    let candidates = [
        Representation::new(16, ColorMode::Gray),
        Representation::new(24, ColorMode::Gray),
        Representation::new(32, ColorMode::Gray),
        Representation::new(24, ColorMode::Rgb),
        Representation::new(48, ColorMode::Rgb),
        Representation::new(56, ColorMode::Rgb),
        Representation::new(60, ColorMode::Rgb),
    ];
    let cheap_to_store: Vec<Representation> = candidates
        .iter()
        .copied()
        .filter(|r| stored_record_bytes(*r) * 2 < stored_record_bytes(source))
        .collect();

    let model = TransformCostModel::default();
    let io = IoProfile::measure().expect("io calibration");
    eprintln!(
        "store_scale io profile (measured): per-fetch {:.2} µs + {:.0} MB/s",
        io.per_fetch_s * 1e6,
        io.bytes_per_sec / 1e6,
    );
    // Intermediate budget: room for the source plus exactly the reps whose
    // stored record is small next to the source's (the slack is smaller
    // than any remaining candidate, so the greedy split is deterministic).
    let budget = stored_record_bytes(source)
        + cheap_to_store
            .iter()
            .map(|&r| stored_record_bytes(r))
            .sum::<usize>()
        + 64;
    let plan = plan_materialization(&candidates, source, budget, &model, &io);
    assert!(
        plan.materialized.len() > 1 && !plan.on_demand.is_empty(),
        "budget {budget} is not intermediate: {plan:?}"
    );
    eprintln!(
        "store_scale budget plan ({} B/item budget, {} B/item stored): materialize {:?}, \
         on-demand {:?}",
        plan.budget_bytes_per_item,
        plan.stored_bytes_per_item,
        plan.materialized
            .iter()
            .map(|r| r.tag())
            .collect::<Vec<_>>(),
        plan.on_demand.iter().map(|r| r.tag()).collect::<Vec<_>>(),
    );

    let frames = frame_pool();
    let mut all = vec![source];
    all.extend(candidates);
    let configs: Vec<(&str, Vec<Representation>)> = vec![
        ("materialize_all", all),
        ("policy", plan.materialized.clone()),
        ("transcode_all", vec![source]),
    ];

    // One config run: ingest + durability sync, then Q sweeps fetching
    // every candidate rep per item — materialized reps read directly,
    // the rest through the serving fallback (source fetch + transcode).
    let run = |stored: &[Representation]| -> (f64, f64) {
        let dir = bench_dir("budget");
        let store = RepresentationStore::persistent(stored.to_vec(), &dir, 4).expect("store");
        let t0 = Instant::now();
        for id in 0..n {
            store
                .ingest(id, &frames[id as usize % FRAME_POOL])
                .expect("ingest");
        }
        store.sync().expect("sync");
        let ingest_s = t0.elapsed().as_secs_f64();
        let mut engine = TranscodeEngine::new();
        let t1 = Instant::now();
        for _ in 0..q_sweeps {
            for id in 0..n {
                for rep in candidates {
                    let img = if stored.contains(&rep) {
                        store.fetch(id, rep, &mut engine).unwrap().unwrap()
                    } else {
                        let src = store.fetch(id, source, &mut engine).unwrap().unwrap();
                        let out = engine.apply(&src, rep).expect("transcode");
                        engine.recycle([src]);
                        out
                    };
                    black_box(img.data()[0]);
                    engine.recycle([img]);
                }
            }
        }
        let query_s = t1.elapsed().as_secs_f64();
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
        (ingest_s, query_s)
    };

    // Interleaved rounds, medians per config: the three strategies see the
    // same machine state.
    let rounds = 5;
    let mut samples: Vec<Vec<(f64, f64)>> = vec![Vec::new(); configs.len()];
    for _ in 0..rounds {
        for (i, (_, stored)) in configs.iter().enumerate() {
            samples[i].push(run(stored));
        }
    }
    let mut totals = Vec::new();
    eprintln!("store_scale budget policy ({n} items, Q={q_sweeps} sweep(s), medians of {rounds}):");
    eprintln!("  config           stored B/item  ingest+sync ms  query ms  total ms");
    for (i, (tag, stored)) in configs.iter().enumerate() {
        let med = |f: fn(&(f64, f64)) -> f64| -> f64 {
            let mut v: Vec<f64> = samples[i].iter().map(f).collect();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let (ing, qry) = (med(|s| s.0), med(|s| s.1));
        let bytes: usize = stored.iter().map(|&r| stored_record_bytes(r)).sum();
        eprintln!(
            "  {tag:<16} {bytes:>13}  {:>14.1}  {:>8.1}  {:>8.1}",
            ing * 1e3,
            qry * 1e3,
            (ing + qry * q_sweeps as f64) * 1e3,
        );
        totals.push(ing + qry * q_sweeps as f64);
    }
    let (all_t, policy_t, none_t) = (totals[0], totals[1], totals[2]);
    assert!(
        policy_t < all_t,
        "policy total {policy_t:.3}s does not beat materialize-everything {all_t:.3}s"
    );
    assert!(
        policy_t < none_t,
        "policy total {policy_t:.3}s does not beat transcode-everything {none_t:.3}s"
    );
}

criterion_group!(
    benches,
    bench_store_scale,
    bench_ingest_throughput,
    bench_budget_policy
);
criterion_main!(benches);

//! Criterion bench: physical-representation materialization (the transform
//! costs §VI argues must be part of query optimization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tahoma_imagery::{ColorMode, Image, Representation};

fn full_frame() -> Image {
    Image::from_fn(224, 224, ColorMode::Rgb, |c, y, x| {
        ((c * 13 + y * 7 + x * 3) % 17) as f32 / 17.0
    })
    .unwrap()
}

fn bench_transforms(c: &mut Criterion) {
    let frame = full_frame();
    let mut group = c.benchmark_group("representation_apply");
    for rep in [
        Representation::new(30, ColorMode::Gray),
        Representation::new(30, ColorMode::Red),
        Representation::new(30, ColorMode::Rgb),
        Representation::new(120, ColorMode::Rgb),
        Representation::new(224, ColorMode::Gray),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(rep.tag()), &rep, |b, rep| {
            b.iter(|| black_box(rep.apply(black_box(&frame)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);

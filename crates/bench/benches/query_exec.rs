//! Criterion bench: batch-at-a-time query execution vs the item-at-a-time
//! reference cascade walk.
//!
//! Two families:
//!
//! * `query_exec/surrogate/*` — the surrogate-backed corpus scorer on a
//!   4096-item corpus at cascade depths 1–3: `reference` is the per-(item,
//!   level) virtual-call walk (`run_cascade_reference`), `vectorized` the
//!   level-major executor with the hoisted stream backend. The acceptance
//!   bar is ≥ 2x on the depth-2 cascade.
//! * `query_exec/nn*` — the real-NN backend end to end on a store of real
//!   raster frames (fetch → pooled decode → [transcode] → standardize →
//!   `infer_batch` → thresholds), both in the ONGOING layout (exact
//!   representations stored) and through the transcode fallback (only the
//!   full frame stored), plus isolated per-stage lines so the end-to-end
//!   number decomposes in `BENCH_baseline.json`. A per-stage wall-clock
//!   table from the scorer's own accounting prints after the run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use tahoma_core::evaluator::CostContext;
use tahoma_core::exec::{BatchScorer, NnBatchScorer, SurrogateBatchScorer};
use tahoma_core::query::{Corpus, CorpusItem, QueryProcessor, SurrogateItemScorer};
use tahoma_core::thresholds::{calibrate_all, DecisionThresholds, ThresholdTable};
use tahoma_core::{Cascade, VectorizedExecutor, PAPER_PRECISION_SETTINGS};
use tahoma_costmodel::{AnalyticProfiler, DeviceProfile, Scenario};
use tahoma_imagery::codec::Codec;
use tahoma_imagery::engine::TranscodeEngine;
use tahoma_imagery::{ColorMode, Image, ObjectKind, RawCodec, Representation, RepresentationStore};
use tahoma_nn::Sequential;
use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
use tahoma_zoo::variant::paper_variants;
use tahoma_zoo::{ArchSpec, ModelId, ModelRepository, PredicateSpec, SurrogateScorer};

const CORPUS_N: usize = 4096;
const NN_N: usize = 1024;

struct SurrogateFixture {
    repo: ModelRepository,
    scorer: SurrogateScorer,
    thresholds: ThresholdTable,
    cost: CostContext,
    corpus: Corpus,
}

fn surrogate_fixture() -> SurrogateFixture {
    let pred = PredicateSpec::for_kind(ObjectKind::Fence);
    let cfg = SurrogateBuildConfig {
        n_config: 300,
        n_eval: 400,
        seed: 0xBE7C,
        variants: Some(paper_variants().into_iter().step_by(9).collect()),
        ..Default::default()
    };
    let scorer = SurrogateScorer {
        pred,
        params: cfg.params,
        seed: cfg.seed,
    };
    let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
    let thresholds = calibrate_all(&repo, &PAPER_PRECISION_SETTINGS);
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    let cost = CostContext::build(&repo, &profiler);
    SurrogateFixture {
        repo,
        scorer,
        thresholds,
        cost,
        corpus: Corpus::synthetic(CORPUS_N, 0.3, 0xC0),
    }
}

/// Item-at-a-time reference vs vectorized executor, depths 1–3.
fn bench_surrogate_exec(c: &mut Criterion) {
    let fx = surrogate_fixture();
    let items: Vec<&CorpusItem> = fx.corpus.items.iter().collect();
    let processor = QueryProcessor::new(&fx.repo, &fx.thresholds, &fx.cost);
    let executor = VectorizedExecutor::new(&fx.repo, &fx.thresholds, &fx.cost);
    // Pool-model cascades (the paper's main two-level space: both levels
    // drawn from the specialized family), plus a ResNet-terminated line:
    // the reference path re-derives each level's scoring context per item,
    // which for a CNN variant means the full capacity/info separation
    // model — exactly the per-item setup cost the batch backend hoists.
    let strongest = (fx.repo.specialized_ids().len() - 1) as u16;
    let resnet = (fx.repo.len() - 1) as u16;
    let mid = (fx.repo.len() / 2) as u16;
    let cascades = [
        ("depth1", Cascade::single(0)),
        ("depth2", Cascade::new(&[(0, 2), (strongest, 0)])),
        ("depth2_resnet", Cascade::new(&[(0, 2), (resnet, 0)])),
        ("depth3", Cascade::new(&[(0, 3), (mid, 2), (strongest, 0)])),
    ];
    let mut group = c.benchmark_group("query_exec/surrogate");
    for (tag, cascade) in cascades {
        let item_scorer = SurrogateItemScorer {
            scorer: &fx.scorer,
            repo: &fx.repo,
        };
        group.bench_function(format!("reference/{tag}"), |b| {
            b.iter(|| {
                black_box(
                    processor
                        .run_cascade_reference(ObjectKind::Fence, cascade, &items, &item_scorer)
                        .unwrap(),
                )
            })
        });
        let mut batch_scorer = SurrogateBatchScorer::new(&fx.scorer, &fx.repo);
        group.bench_function(format!("vectorized/{tag}"), |b| {
            b.iter(|| {
                black_box(
                    executor
                        .run_cascade_batched(ObjectKind::Fence, cascade, &items, &mut batch_scorer)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();

    // Interleaved speedup measurement: back-to-back criterion lines see
    // different machine states on a shared runner, so the headline ratio
    // is measured round-robin (reference, vectorized, reference, ...) and
    // reported as min-of-medians — the same discipline the kernel-policy
    // calibration uses for exactly this reason.
    for (tag, cascade) in cascades {
        let item_scorer = SurrogateItemScorer {
            scorer: &fx.scorer,
            repo: &fx.repo,
        };
        let mut batch_scorer = SurrogateBatchScorer::new(&fx.scorer, &fx.repo);
        let rounds = 9;
        let mut ref_s = Vec::with_capacity(rounds);
        let mut vec_s = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let t = std::time::Instant::now();
            black_box(
                processor
                    .run_cascade_reference(ObjectKind::Fence, cascade, &items, &item_scorer)
                    .unwrap(),
            );
            ref_s.push(t.elapsed().as_secs_f64());
            let t = std::time::Instant::now();
            black_box(
                executor
                    .run_cascade_batched(ObjectKind::Fence, cascade, &items, &mut batch_scorer)
                    .unwrap(),
            );
            vec_s.push(t.elapsed().as_secs_f64());
        }
        ref_s.sort_by(f64::total_cmp);
        vec_s.sort_by(f64::total_cmp);
        let (rm, vm) = (ref_s[rounds / 2], vec_s[rounds / 2]);
        eprintln!(
            "query_exec/surrogate speedup {tag} ({CORPUS_N} items, interleaved medians): \
             reference {:.0} µs / vectorized {:.0} µs = {:.2}x",
            rm * 1e6,
            vm * 1e6,
            rm / vm,
        );
    }
}

/// Planner-ordered short-circuiting on a two-predicate conjunction vs the
/// full materialization.
fn bench_short_circuit(c: &mut Criterion) {
    let fx = surrogate_fixture();
    let processor = QueryProcessor::new(&fx.repo, &fx.thresholds, &fx.cost);
    let terminal = (fx.repo.len() - 1) as u16;
    let query = tahoma_core::query::Query::parse(
        "SELECT * FROM f WHERE contains_object(fence) AND contains_object(wallet)",
    )
    .unwrap();
    let mut cascades = BTreeMap::new();
    for &kind in &query.content {
        cascades.insert(kind, Cascade::new(&[(0, 2), (terminal, 0)]));
    }
    let mut group = c.benchmark_group("query_exec/conjunction");
    for (tag, materialize_all) in [("materialize_all", true), ("short_circuit", false)] {
        let mut scorer = SurrogateBatchScorer::new(&fx.scorer, &fx.repo);
        let opts = tahoma_core::ExecOptions { materialize_all };
        group.bench_function(tag, |b| {
            b.iter(|| {
                black_box(
                    processor
                        .execute_batched(&query, &fx.corpus, &cascades, &mut scorer, &opts)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn frame(seed: u64, size: usize) -> Image {
    Image::from_fn(size, size, ColorMode::Rgb, |c, y, x| {
        (((c as u64 * 31 + y as u64 * 7 + x as u64 * 3 + seed) % 13) as f32) / 13.0
    })
    .unwrap()
}

fn nn_corpus(n: usize) -> Corpus {
    Corpus::synthetic(n, 0.3, 0xF2A)
}

fn build_model(arch: ArchSpec, rep: Representation, seed: u64) -> Sequential {
    arch.cnn_spec(rep).build(seed).expect("valid spec")
}

/// Threshold cuts at the ~30th/70th percentile of the level-0 model's
/// actual score distribution, so the cascade decides roughly 60% of items
/// early — a realistic short-circuit profile for untrained weights, whose
/// scores cluster instead of separating.
fn quantile_thresholds(scores: &mut [f32], n_models: usize) -> ThresholdTable {
    scores.sort_by(f32::total_cmp);
    let cut = |q: f64| scores[((scores.len() - 1) as f64 * q) as usize];
    let level0 = DecisionThresholds {
        p_low: cut(0.30),
        p_high: cut(0.70),
    };
    ThresholdTable {
        settings: vec![0.0],
        per_model: vec![vec![level0]; n_models],
    }
}

/// Real-NN backend end to end over a store of real raster frames.
fn bench_nn_exec(c: &mut Criterion) {
    let rep0 = Representation::new(30, ColorMode::Gray);
    let rep1 = Representation::new(60, ColorMode::Rgb);
    let source = Representation::new(120, ColorMode::Rgb);
    let arch0 = ArchSpec {
        conv_layers: 1,
        conv_nodes: 16,
        dense_nodes: 16,
    };
    let arch1 = ArchSpec {
        conv_layers: 2,
        conv_nodes: 16,
        dense_nodes: 32,
    };
    let corpus = nn_corpus(NN_N);
    let items: Vec<&CorpusItem> = corpus.items.iter().collect();
    // A surrogate repository supplies the (model id -> variant) table and
    // pricing; the *scores* come from the real networks below.
    let pred = PredicateSpec::for_kind(ObjectKind::Fence);
    let cfg = SurrogateBuildConfig {
        n_config: 50,
        n_eval: 50,
        seed: 1,
        variants: Some(
            tahoma_zoo::variant::cross_variants(&[arch0, arch1], &[rep0, rep1])
                .into_iter()
                .filter(|v| {
                    (v.input == rep0
                        && matches!(v.kind, tahoma_zoo::ModelKind::Cnn(a) if a == arch0))
                        || (v.input == rep1
                            && matches!(v.kind, tahoma_zoo::ModelKind::Cnn(a) if a == arch1))
                })
                .enumerate()
                .map(|(i, mut v)| {
                    v.id = ModelId(i as u32);
                    v
                })
                .collect(),
        ),
        ..Default::default()
    };
    let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    let cost = CostContext::build(&repo, &profiler);

    // ONGOING layout: the store holds each level's exact representation.
    let store = RepresentationStore::new(vec![rep0, rep1]);
    for item in &corpus.items {
        store.ingest(item.id, &frame(item.id, 120)).unwrap();
    }
    let mut scorer = NnBatchScorer::new(&store);
    scorer.register(ModelId(0), rep0, build_model(arch0, rep0, 11));
    scorer.register(ModelId(1), rep1, build_model(arch1, rep1, 12));

    // Calibrate level-0 cuts from the live score distribution.
    let mut level0_scores = Vec::new();
    scorer.score_batch(
        ModelId(0),
        tahoma_core::exec::ScorePack::standalone(&items),
        &mut level0_scores,
    );
    let thresholds = quantile_thresholds(&mut level0_scores, repo.len());
    let executor = VectorizedExecutor::new(&repo, &thresholds, &cost);
    let cascade = Cascade::new(&[(0, 0), (1, 0)]);

    let mut group = c.benchmark_group("query_exec/nn");
    group.bench_function(format!("end_to_end_direct_{NN_N}"), |b| {
        b.iter(|| {
            black_box(
                executor
                    .run_cascade_batched(ObjectKind::Fence, cascade, &items, &mut scorer)
                    .unwrap(),
            )
        })
    });
    // One accounted run for the per-stage table.
    scorer.reset_stats();
    let rel = executor
        .run_cascade_batched(ObjectKind::Fence, cascade, &items, &mut scorer)
        .unwrap();
    let stats = scorer.stats();
    eprintln!(
        "query_exec/nn end-to-end (direct, {} items, {} early-decided): \
         fetch+decode {:.3} ms, transcode {:.3} ms, standardize {:.3} ms, infer {:.3} ms",
        NN_N,
        rel.level_histogram[0],
        stats.fetch_decode_s * 1e3,
        stats.transcode_s * 1e3,
        stats.standardize_s * 1e3,
        stats.infer_s * 1e3,
    );
    drop(scorer);

    // Transcode fallback: only the full 120px frame is stored; every level
    // input is derived through the engine at query time.
    let source_store = RepresentationStore::new(vec![source]);
    for item in &corpus.items {
        source_store.ingest(item.id, &frame(item.id, 120)).unwrap();
    }
    let mut fallback = NnBatchScorer::new(&source_store).with_source(source);
    fallback.register(ModelId(0), rep0, build_model(arch0, rep0, 11));
    fallback.register(ModelId(1), rep1, build_model(arch1, rep1, 12));
    group.bench_function(format!("end_to_end_transcode_{NN_N}"), |b| {
        b.iter(|| {
            black_box(
                executor
                    .run_cascade_batched(ObjectKind::Fence, cascade, &items, &mut fallback)
                    .unwrap(),
            )
        })
    });
    fallback.reset_stats();
    executor
        .run_cascade_batched(ObjectKind::Fence, cascade, &items, &mut fallback)
        .unwrap();
    let stats = fallback.stats();
    eprintln!(
        "query_exec/nn end-to-end (transcode fallback, {} items): \
         fetch+decode {:.3} ms, transcode {:.3} ms, standardize {:.3} ms, infer {:.3} ms",
        NN_N,
        stats.fetch_decode_s * 1e3,
        stats.transcode_s * 1e3,
        stats.standardize_s * 1e3,
        stats.infer_s * 1e3,
    );
    group.finish();
}

/// The NN pipeline's stages in isolation, for the baseline gate.
fn bench_nn_stages(c: &mut Criterion) {
    let rep0 = Representation::new(30, ColorMode::Gray);
    let store = RepresentationStore::new(vec![rep0]);
    for id in 0..64u64 {
        store.ingest(id, &frame(id, 120)).unwrap();
    }
    let mut group = c.benchmark_group("query_exec/nn_stage");
    let src = frame(3, 120);
    let mut engine = TranscodeEngine::new();
    group.bench_function("fetch_decode_30gray", |b| {
        let mut id = 0u64;
        b.iter(|| {
            let img = store.fetch(id % 64, rep0, &mut engine).unwrap().unwrap();
            id += 1;
            let out = black_box(img.data()[0]);
            engine.recycle([img]);
            out
        })
    });
    group.bench_function("transcode_120rgb_to_30gray", |b| {
        b.iter(|| {
            let img = engine.apply(&src, rep0).unwrap();
            let out = black_box(img.data()[0]);
            engine.recycle([img]);
            out
        })
    });
    group.bench_function("standardize_30gray", |b| {
        let thumb = engine.apply(&src, rep0).unwrap();
        b.iter(|| {
            let img = engine.standardize(&thumb);
            let out = black_box(img.data()[0]);
            engine.recycle([img]);
            out
        })
    });
    let arch0 = ArchSpec {
        conv_layers: 1,
        conv_nodes: 16,
        dense_nodes: 16,
    };
    let mut model = build_model(arch0, rep0, 11);
    let batch = 64usize;
    let input = vec![0.1f32; batch * rep0.value_count()];
    group.bench_function("infer_batch64_c1x16-d16_30gray", |b| {
        b.iter(|| black_box(model.predict_proba_batch(&input, batch)))
    });
    let thr = DecisionThresholds {
        p_low: 0.3,
        p_high: 0.7,
    };
    let scores: Vec<f32> = (0..CORPUS_N).map(|i| (i % 101) as f32 / 100.0).collect();
    group.bench_function(format!("thresholds_{CORPUS_N}"), |b| {
        b.iter(|| scores.iter().filter(|&&s| thr.decide(s).is_some()).count())
    });
    // Round-trip sanity for the codec path the fetch stage exercises.
    let blob = RawCodec.encode(&src);
    group.bench_function("decode_120rgb_pooled", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            let img = RawCodec
                .decode_into(&blob, std::mem::take(&mut buf))
                .unwrap();
            let out = black_box(img.data()[0]);
            buf = img.into_data();
            out
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_surrogate_exec,
    bench_short_circuit,
    bench_nn_exec,
    bench_nn_stages
);
criterion_main!(benches);

//! Criterion bench: Pareto frontier computation (paper §V-E cites
//! O(n log n); the main experiments run it over ~1.3M points).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tahoma_core::pareto_frontier;
use tahoma_mathx::DetRng;

fn points(n: usize, seed: u64) -> (Vec<f32>, Vec<f64>) {
    let mut rng = DetRng::new(seed);
    let acc: Vec<f32> = (0..n).map(|_| rng.uniform_in(0.5, 1.0) as f32).collect();
    let thr: Vec<f64> = (0..n).map(|_| rng.uniform_in(10.0, 2e4)).collect();
    (acc, thr)
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_frontier");
    group.sample_size(10);
    for n in [1_000usize, 100_000, 1_300_000] {
        let (acc, thr) = points(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(pareto_frontier(black_box(&acc), black_box(&thr))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pareto);
criterion_main!(benches);

//! Criterion bench: real CNN forward passes across the architecture axis
//! (the inference times the analytic device profile abstracts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tahoma_imagery::{ColorMode, Representation};
use tahoma_zoo::ArchSpec;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_forward");
    let cases = [
        ("c1x16-d16@30gray", ArchSpec { conv_layers: 1, conv_nodes: 16, dense_nodes: 16 },
         Representation::new(30, ColorMode::Gray)),
        ("c2x16-d32@60rgb", ArchSpec { conv_layers: 2, conv_nodes: 16, dense_nodes: 32 },
         Representation::new(60, ColorMode::Rgb)),
        ("c4x32-d64@120rgb", ArchSpec { conv_layers: 4, conv_nodes: 32, dense_nodes: 64 },
         Representation::new(120, ColorMode::Rgb)),
    ];
    for (name, arch, rep) in cases {
        let mut model = arch.cnn_spec(rep).build(7).unwrap();
        let input = vec![0.5f32; rep.value_count()];
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| black_box(model.forward_logit(black_box(&input))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);

//! Criterion bench: real CNN inference across the architecture axis.
//!
//! Five views of the hot path:
//! * `conv_forward`: a single convolution layer, scalar reference loop vs
//!   the im2col+GEMM path at batch 1 — the kernel-level speedup;
//! * `conv_forward_batch`: the GEMM conv across batch sizes (per-image
//!   throughput must not degrade as the batch grows);
//! * `gemm_dispatch` / `conv_dispatch`: every runtime-dispatchable kernel
//!   tier pinned explicitly (portable / avx2 / avx512 / auto) so a tier
//!   regression shows as its own line — the explicit-SIMD tiers must beat
//!   the portable auto-vectorized kernel in the default (non-native)
//!   build, and `conv_dispatch` includes the small-k first-layer shape the
//!   AVX-512 wide tile targets;
//! * `layer_dispatch`: the non-GEMM layer kernels (batch-1 dense matvec,
//!   ReLU, max-pool) per tier — the sweeps the measured kernel policy
//!   chooses between, which compiled to baseline SSE2 before they existed;
//! * `gemm_threads` / `conv_batch_threads`: forced worker counts over a
//!   large GEMM and a batched conv (on a single-core runner these show the
//!   spawn overhead; on multi-core runners, the speedup);
//! * `nn_forward`: whole-model inference, per-image `forward_logit` vs
//!   `predict_proba_batch` over 1/8/32-image minibatches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tahoma_imagery::{ColorMode, Representation};
use tahoma_nn::gemm::{self, GemmScratch, Kernel, Trans};
use tahoma_nn::{Conv2d, Layer, Shape};
use tahoma_zoo::ArchSpec;

/// Conv layers representative of the paper family's hot spots: early layers
/// see few channels over many pixels, deep layers many channels over few.
fn conv_cases() -> Vec<(&'static str, Shape, usize)> {
    vec![
        ("3ch-30px-16f", Shape::new(3, 30, 30), 16),
        ("16ch-30px-16f", Shape::new(16, 30, 30), 16),
        ("3ch-120px-32f", Shape::new(3, 120, 120), 32),
        ("32ch-60px-32f", Shape::new(32, 60, 60), 32),
    ]
}

fn bench_conv_scalar_vs_gemm(c: &mut Criterion) {
    let mut rng = tahoma_mathx::DetRng::new(0xC0);
    let mut group = c.benchmark_group("conv_forward");
    for (name, shape, out_c) in conv_cases() {
        let mut conv = Conv2d::new(shape, out_c, 3, &mut rng);
        let input: Vec<f32> = (0..shape.len()).map(|i| (i % 97) as f32 / 97.0).collect();
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("scalar", name), &name, |b, _| {
            b.iter(|| black_box(conv.forward_scalar(black_box(&input))))
        });
        group.bench_with_input(BenchmarkId::new("gemm", name), &name, |b, _| {
            b.iter(|| black_box(conv.forward(black_box(&input))))
        });
    }
    group.finish();
}

fn bench_conv_batch_sweep(c: &mut Criterion) {
    let mut rng = tahoma_mathx::DetRng::new(0xC1);
    let shape = Shape::new(16, 30, 30);
    let mut conv = Conv2d::new(shape, 16, 3, &mut rng);
    let mut group = c.benchmark_group("conv_forward_batch/16ch-30px-16f");
    for batch in [1usize, 8, 32] {
        let input: Vec<f32> = (0..batch * shape.len())
            .map(|i| (i % 89) as f32 / 89.0)
            .collect();
        let mut out = Vec::new();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                conv.forward_batch(black_box(&input), batch, &mut out, false);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

/// Kernel tiers to sweep: every supported explicit tier plus `Auto` (what
/// production callers run).
fn kernel_cases() -> Vec<Kernel> {
    let mut ks = Kernel::available();
    ks.push(Kernel::Auto);
    ks
}

fn bench_gemm_dispatch(c: &mut Criterion) {
    let mut rng = tahoma_mathx::DetRng::new(0xD1);
    // A conv-shaped direct-path product and a fat packed-path product.
    let shapes = [
        ("16x900x144", 16usize, 900usize, 144usize),
        ("64x2048x256", 64, 2048, 256),
    ];
    let mut group = c.benchmark_group("gemm_dispatch");
    for (name, m, n, k) in shapes {
        let a: Vec<f32> = (0..m * k)
            .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
            .collect();
        let mut cbuf = vec![0.0f32; m * n];
        group.throughput(Throughput::Elements((2 * m * n * k) as u64));
        for kernel in kernel_cases() {
            let mut scratch = GemmScratch::with_kernel(kernel);
            scratch.threads = Some(1);
            group.bench_with_input(BenchmarkId::new(kernel.name(), name), &name, |bch, _| {
                bch.iter(|| {
                    cbuf.fill(0.0);
                    gemm::gemm(
                        &mut scratch,
                        m,
                        n,
                        k,
                        black_box(&a),
                        Trans::N,
                        black_box(&b),
                        Trans::N,
                        &mut cbuf,
                    );
                    black_box(cbuf[0])
                })
            });
        }
    }
    group.finish();
}

fn bench_conv_dispatch(c: &mut Criterion) {
    let mut rng = tahoma_mathx::DetRng::new(0xD2);
    // 16ch is the deep-layer shape; 1ch/3ch are the small-k first-layer
    // shapes the AVX-512 wide tile targets.
    let cases = [
        ("1ch-30px-16f", Shape::new(1, 30, 30), 16usize),
        ("3ch-30px-16f", Shape::new(3, 30, 30), 16),
        ("16ch-30px-16f", Shape::new(16, 30, 30), 16),
    ];
    let mut group = c.benchmark_group("conv_dispatch");
    for (name, shape, out_c) in cases {
        let k_total = shape.c * 9;
        let weights: Vec<f32> = (0..out_c * k_total)
            .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
            .collect();
        let bias: Vec<f32> = (0..out_c)
            .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
            .collect();
        let input: Vec<f32> = (0..shape.len()).map(|i| (i % 97) as f32 / 97.0).collect();
        let mut out = vec![0.0f32; out_c * shape.h * shape.w];
        group.throughput(Throughput::Elements(
            (2 * out_c * k_total * shape.h * shape.w) as u64,
        ));
        for kernel in kernel_cases() {
            let mut scratch = GemmScratch::with_kernel(kernel);
            scratch.threads = Some(1);
            group.bench_with_input(BenchmarkId::new(kernel.name(), name), &name, |bch, _| {
                bch.iter(|| {
                    gemm::conv2d_forward(
                        &mut scratch,
                        black_box(&input),
                        shape.c,
                        shape.h,
                        shape.w,
                        3,
                        &weights,
                        &bias,
                        out_c,
                        &mut out,
                    );
                    black_box(out[0])
                })
            });
        }
    }
    group.finish();
}

fn bench_gemm_threads(c: &mut Criterion) {
    let mut rng = tahoma_mathx::DetRng::new(0xD3);
    let (m, n, k) = (64usize, 4096usize, 256usize);
    let a: Vec<f32> = (0..m * k)
        .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
        .collect();
    let b: Vec<f32> = (0..k * n)
        .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
        .collect();
    let mut cbuf = vec![0.0f32; m * n];
    let mut group = c.benchmark_group("gemm_threads/64x4096x256");
    group.throughput(Throughput::Elements((2 * m * n * k) as u64));
    for threads in [1usize, 2, 4] {
        let mut scratch = GemmScratch::with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, _| {
            bch.iter(|| {
                cbuf.fill(0.0);
                gemm::gemm(
                    &mut scratch,
                    m,
                    n,
                    k,
                    black_box(&a),
                    Trans::N,
                    black_box(&b),
                    Trans::N,
                    &mut cbuf,
                );
                black_box(cbuf[0])
            })
        });
    }
    group.finish();
}

fn bench_conv_batch_threads(c: &mut Criterion) {
    let mut rng = tahoma_mathx::DetRng::new(0xD4);
    let shape = Shape::new(16, 30, 30);
    let batch = 32usize;
    let input: Vec<f32> = (0..batch * shape.len())
        .map(|i| (i % 89) as f32 / 89.0)
        .collect();
    let mut group = c.benchmark_group("conv_batch_threads/16ch-30px-16f-b32");
    group.throughput(Throughput::Elements(batch as u64));
    for threads in [1usize, 2, 4] {
        let mut conv = Conv2d::new(shape, 16, 3, &mut rng);
        conv.set_threads(Some(threads));
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, _| {
            bch.iter(|| {
                conv.forward_batch(black_box(&input), batch, &mut out, false);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

/// The non-GEMM layer sweeps across kernel tiers: batch-1 dense matvec,
/// the ReLU inference select, and the 2x2 max-pool sweep. In the default
/// (portable, non-native) build these used to compile to baseline SSE2;
/// the explicit tiers are what the measured policy chooses between.
fn bench_layer_dispatch(c: &mut Criterion) {
    let mut rng = tahoma_mathx::DetRng::new(0xD5);
    let mut group = c.benchmark_group("layer_dispatch");

    // Dense batch-1: the post-pool 16x3600 matvec of the 30px family.
    let (n_out, n_in) = (16usize, 3600usize);
    let weights: Vec<f32> = (0..n_out * n_in)
        .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
        .collect();
    let bias: Vec<f32> = (0..n_out)
        .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
        .collect();
    let x: Vec<f32> = (0..n_in)
        .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
        .collect();
    let mut out = vec![0.0f32; n_out];
    for kernel in kernel_cases() {
        group.bench_with_input(
            BenchmarkId::new(kernel.name(), "dense-16x3600"),
            &kernel,
            |b, &kernel| {
                b.iter(|| {
                    tahoma_nn::kernels::matvec(
                        kernel,
                        black_box(&weights),
                        &bias,
                        black_box(&x),
                        &mut out,
                    );
                    black_box(out[0])
                })
            },
        );
    }

    // ReLU over a 16ch 30x30 activation block.
    let act: Vec<f32> = (0..16 * 30 * 30)
        .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
        .collect();
    let mut relu_out = vec![0.0f32; act.len()];
    for kernel in kernel_cases() {
        group.bench_with_input(
            BenchmarkId::new(kernel.name(), "relu-16x30x30"),
            &kernel,
            |b, &kernel| {
                b.iter(|| {
                    tahoma_nn::kernels::relu(kernel, black_box(&act), &mut relu_out);
                    black_box(relu_out[0])
                })
            },
        );
    }

    // Max-pool over the same block.
    let (h, w) = (30usize, 30usize);
    let mut pool_out = vec![0.0f32; (h / 2) * (w / 2)];
    for kernel in kernel_cases() {
        group.bench_with_input(
            BenchmarkId::new(kernel.name(), "pool-16x30x30"),
            &kernel,
            |b, &kernel| {
                b.iter(|| {
                    for ch in 0..16 {
                        tahoma_nn::kernels::maxpool2_plane(
                            kernel,
                            black_box(&act[ch * h * w..(ch + 1) * h * w]),
                            h,
                            w,
                            &mut pool_out,
                        );
                    }
                    black_box(pool_out[0])
                })
            },
        );
    }
    group.finish();
}

fn bench_model_inference(c: &mut Criterion) {
    let cases = [
        (
            "c1x16-d16@30gray",
            ArchSpec {
                conv_layers: 1,
                conv_nodes: 16,
                dense_nodes: 16,
            },
            Representation::new(30, ColorMode::Gray),
        ),
        (
            "c2x16-d32@60rgb",
            ArchSpec {
                conv_layers: 2,
                conv_nodes: 16,
                dense_nodes: 32,
            },
            Representation::new(60, ColorMode::Rgb),
        ),
        (
            "c4x32-d64@120rgb",
            ArchSpec {
                conv_layers: 4,
                conv_nodes: 32,
                dense_nodes: 64,
            },
            Representation::new(120, ColorMode::Rgb),
        ),
    ];
    let mut group = c.benchmark_group("nn_forward");
    for (name, arch, rep) in cases {
        let mut model = arch.cnn_spec(rep).build(7).unwrap();
        let input = vec![0.5f32; rep.value_count()];
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("single", name), &name, |b, _| {
            b.iter(|| black_box(model.forward_logit(black_box(&input))))
        });
        for batch in [8usize, 32] {
            let batch_input: Vec<f32> = input
                .iter()
                .cycle()
                .take(batch * rep.value_count())
                .copied()
                .collect();
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("batch{batch}"), name),
                &batch,
                |b, &batch| {
                    b.iter(|| black_box(model.predict_proba_batch(black_box(&batch_input), batch)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_conv_scalar_vs_gemm,
    bench_conv_batch_sweep,
    bench_gemm_dispatch,
    bench_conv_dispatch,
    bench_layer_dispatch,
    bench_gemm_threads,
    bench_conv_batch_threads,
    bench_model_inference
);
criterion_main!(benches);

//! Criterion bench: cascade simulation throughput from precomputed decision
//! tables (paper §V-D: 1.3M cascades in ~1 minute; this design should beat
//! that by orders of magnitude on a modern CPU).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tahoma_core::evaluator::{simulate_all, DecisionTables};
use tahoma_core::thresholds::{calibrate_all, PAPER_PRECISION_SETTINGS};
use tahoma_core::{build_cascades, BuilderConfig};
use tahoma_costmodel::DeviceProfile;
use tahoma_imagery::ObjectKind;
use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
use tahoma_zoo::PredicateSpec;

fn bench_naive_vs_tables(c: &mut Criterion) {
    // The §V-D ablation: per-cascade evaluation straight from raw scores
    // (no precomputed decision tables) vs the table-driven design.
    let repo = build_surrogate_repository(
        PredicateSpec::for_kind(ObjectKind::Fence),
        &SurrogateBuildConfig {
            n_config: 400,
            n_eval: 1000,
            seed: 9,
            variants: Some(
                tahoma_zoo::variant::paper_variants()
                    .into_iter()
                    .step_by(12)
                    .collect(),
            ),
            ..Default::default()
        },
        &DeviceProfile::k80(),
    );
    let thresholds = calibrate_all(&repo, &PAPER_PRECISION_SETTINGS);
    let tables = DecisionTables::build(&repo, &thresholds);
    let cascades: Vec<_> = build_cascades(&BuilderConfig::paper_main(&repo))
        .into_iter()
        .take(2_000)
        .collect();
    let mut group = c.benchmark_group("threshold_independence_ablation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cascades.len() as u64));
    group.bench_function("precomputed_tables", |b| {
        b.iter(|| {
            for cascade in &cascades {
                black_box(tahoma_core::evaluator::simulate_one(&tables, cascade));
            }
        })
    });
    group.bench_function("naive_from_scores", |b| {
        b.iter(|| {
            for cascade in &cascades {
                black_box(tahoma_core::evaluator::simulate_one_naive(
                    &repo,
                    &thresholds,
                    cascade,
                ));
            }
        })
    });
    group.finish();
}

fn bench_cascade_eval(c: &mut Criterion) {
    let repo = build_surrogate_repository(
        PredicateSpec::for_kind(ObjectKind::Fence),
        &SurrogateBuildConfig {
            n_config: 400,
            n_eval: 1000,
            seed: 9,
            variants: Some(
                tahoma_zoo::variant::paper_variants()
                    .into_iter()
                    .step_by(4)
                    .collect(),
            ),
            ..Default::default()
        },
        &DeviceProfile::k80(),
    );
    let thresholds = calibrate_all(&repo, &PAPER_PRECISION_SETTINGS);
    let tables = DecisionTables::build(&repo, &thresholds);
    let cascades = build_cascades(&BuilderConfig::paper_main(&repo));
    let mut group = c.benchmark_group("cascade_simulation");
    group.sample_size(10);
    for n in [10_000usize, 80_000] {
        let subset: Vec<_> = cascades.iter().copied().take(n).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(simulate_all(&tables, subset.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cascade_eval, bench_naive_vs_tables);
criterion_main!(benches);

//! Criterion bench: the concurrent query service front door.
//!
//! Four gated lines plus a QPS/latency table:
//!
//! * `query_serve/plan_cold` vs `query_serve/plan_cached` — cascade
//!   selection for a two-predicate query from scratch vs served from the
//!   plan cache (acceptance: cached ≥ 5x faster).
//! * `query_serve/serialized_16c` vs `query_serve/coalesced_16c` — a
//!   16-query burst executed one at a time on one thread vs concurrently
//!   through the shared executor with broker coalescing (acceptance:
//!   coalesced ≥ 1.5x).
//! * A `clients={1,4,16}` table of QPS and p50/p95/p99 per-query latency
//!   under closed-loop load, printed after the run.
//!
//! The backend is the real-NN fixture: every query moves pixels through
//! fetch → decode → standardize → CNN inference, so coalescing has real
//! per-call fixed costs to amortize.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tahoma_imagery::ObjectKind;
use tahoma_serve::fixture::{nn_service, NnFixtureConfig};
use tahoma_serve::{ExecPolicy, QueryService};

const KINDS: [ObjectKind; 2] = [ObjectKind::Fence, ObjectKind::Wallet];

/// The query mix: selective point-ish lookups — the serving workload §IV's
/// batch pricing rewards coalescing for. Every query names the same two
/// content predicates (so survivor packs land on the same models and can
/// merge) but a different camera/location slice, so each brings a small
/// pack (a few to a few dozen rows of the corpus) whose per-call fixed
/// inference costs dominate. One analyst's full-corpus scan amortizes
/// those costs alone; sixteen dashboards asking "does camera k see a fence
/// right now" do not — unless their packs ride one merged call.
fn query(i: usize) -> String {
    const LOCATIONS: [&str; 4] = ["Detroit", "Ann Arbor", "Lansing", "Flint"];
    let kind = if i.is_multiple_of(2) {
        "fence"
    } else {
        "wallet"
    };
    format!(
        "SELECT * FROM frames WHERE contains_object({kind}) AND camera = {} AND location = '{}'",
        i % 8,
        LOCATIONS[(i / 2) % 4],
    )
}

const SERIAL: ExecPolicy = ExecPolicy {
    use_plan_cache: true,
    coalesce: false,
    deadline: None,
};

fn fixture() -> Arc<QueryService> {
    Arc::new(nn_service(&NnFixtureConfig {
        kinds: KINDS.to_vec(),
        corpus_n: 256,
        window: Duration::from_millis(4),
        ..Default::default()
    }))
}

/// Execute the 16-query burst one at a time on the calling thread.
fn run_serialized(service: &QueryService) -> usize {
    let mut total = 0;
    for i in 0..16 {
        let out = service.execute_with(&query(i), SERIAL).expect("query");
        total += out.matched_ids.len();
    }
    total
}

/// Execute the same burst from 16 concurrent clients with coalescing.
/// The barrier models clients that are already connected when the burst
/// lands (the server's worker pool): queries start together rather than
/// staggered by thread-spawn latency.
fn run_coalesced(service: &Arc<QueryService>) -> usize {
    let barrier = std::sync::Barrier::new(16);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let service = Arc::clone(service);
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    service.execute(&query(i)).expect("query").matched_ids.len()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn bench_planning(c: &mut Criterion) {
    let service = fixture();
    let mut group = c.benchmark_group("query_serve");
    group.bench_function("plan_cold", |b| {
        b.iter(|| black_box(service.plan_for(&KINDS, false).unwrap()))
    });
    service.plan_for(&KINDS, true).unwrap(); // warm
    group.bench_function("plan_cached", |b| {
        b.iter(|| black_box(service.plan_for(&KINDS, true).unwrap()))
    });
    group.finish();

    // Interleaved ratio for the headline number (same discipline as
    // query_exec: round-robin medians, immune to machine-state drift).
    let rounds = 15;
    let mut cold = Vec::with_capacity(rounds);
    let mut cached = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        black_box(service.plan_for(&KINDS, false).unwrap());
        cold.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(service.plan_for(&KINDS, true).unwrap());
        cached.push(t.elapsed().as_secs_f64());
    }
    cold.sort_by(f64::total_cmp);
    cached.sort_by(f64::total_cmp);
    let (cm, hm) = (cold[rounds / 2], cached[rounds / 2]);
    eprintln!(
        "query_serve plan cache (interleaved medians): cold {:.1} µs / cached {:.2} µs = {:.0}x",
        cm * 1e6,
        hm * 1e6,
        cm / hm,
    );
}

fn bench_burst(c: &mut Criterion) {
    let service = fixture();
    // Warm the plan cache so both lines measure execution, not planning.
    run_serialized(&service);
    let mut group = c.benchmark_group("query_serve");
    group.sample_size(10);
    group.bench_function("serialized_16c", |b| {
        b.iter(|| black_box(run_serialized(&service)))
    });
    group.bench_function("coalesced_16c", |b| {
        b.iter(|| black_box(run_coalesced(&service)))
    });
    group.finish();

    // Interleaved headline ratio.
    let rounds = 9;
    let mut ser = Vec::with_capacity(rounds);
    let mut coa = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        black_box(run_serialized(&service));
        ser.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(run_coalesced(&service));
        coa.push(t.elapsed().as_secs_f64());
    }
    ser.sort_by(f64::total_cmp);
    coa.sort_by(f64::total_cmp);
    let (sm, cm) = (ser[rounds / 2], coa[rounds / 2]);
    let stats = service.stats();
    eprintln!(
        "query_serve 16-query burst (interleaved medians): serialized {:.1} ms / \
         coalesced {:.1} ms = {:.2}x  [broker: {} calls, {} merged, {} rows]",
        sm * 1e3,
        cm * 1e3,
        sm / cm,
        stats.broker.calls,
        stats.broker.merged_calls,
        stats.broker.rows,
    );
}

/// Closed-loop load: `n` clients each issue `per_client` queries
/// back-to-back; returns (qps, per-query latencies).
fn closed_loop(service: &Arc<QueryService>, n: usize, per_client: usize) -> (f64, Vec<f64>) {
    let wall = Instant::now();
    let lats: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let service = Arc::clone(service);
                s.spawn(move || {
                    let mut mine = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let sql = query(t * 3 + i);
                        let q = Instant::now();
                        black_box(service.execute(&sql).expect("query"));
                        mine.push(q.elapsed().as_secs_f64());
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = wall.elapsed().as_secs_f64();
    let mut all: Vec<f64> = lats.into_iter().flatten().collect();
    all.sort_by(f64::total_cmp);
    ((n * per_client) as f64 / elapsed, all)
}

fn bench_load_table(c: &mut Criterion) {
    // Not a criterion line (the burst lines gate the trend); this prints
    // the service-level view the issue asks for. Registered as a bench so
    // `--quick` reaches it, but all measurement is manual.
    let _ = c;
    let service = fixture();
    run_serialized(&service); // warm plans
    eprintln!(
        "query_serve load table (closed loop, {} item corpus):",
        service.corpus_len()
    );
    eprintln!("  clients |      qps |  p50 ms |  p95 ms |  p99 ms");
    for &n in &[1usize, 4, 16] {
        let per_client = (48 / n).max(3);
        let (qps, lats) = closed_loop(&service, n, per_client);
        let q = |p: f64| lats[((lats.len() - 1) as f64 * p) as usize] * 1e3;
        eprintln!(
            "  {:>7} | {:>8.1} | {:>7.2} | {:>7.2} | {:>7.2}",
            n,
            qps,
            q(0.50),
            q(0.95),
            q(0.99)
        );
    }
}

criterion_group!(benches, bench_planning, bench_burst, bench_load_table);
criterion_main!(benches);

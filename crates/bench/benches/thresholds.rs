//! Criterion bench: decision-threshold grid search (paper §V-C) for a full
//! repository at all five precision settings.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tahoma_core::thresholds::{calibrate, calibrate_all, PAPER_PRECISION_SETTINGS};
use tahoma_costmodel::DeviceProfile;
use tahoma_imagery::ObjectKind;
use tahoma_mathx::DetRng;
use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
use tahoma_zoo::PredicateSpec;

fn bench_thresholds(c: &mut Criterion) {
    // Single-model calibration on a 400-score config split.
    let mut rng = DetRng::new(4);
    let scores: Vec<f32> = (0..400)
        .map(|i| {
            let mu = if i % 2 == 0 { 0.7 } else { 0.3 };
            (mu + 0.2 * rng.standard_normal()).clamp(0.0, 1.0) as f32
        })
        .collect();
    let labels: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
    c.bench_function("calibrate_single_model", |b| {
        b.iter(|| black_box(calibrate(black_box(&scores), black_box(&labels), 0.95)))
    });

    let repo = build_surrogate_repository(
        PredicateSpec::for_kind(ObjectKind::Fence),
        &SurrogateBuildConfig {
            n_config: 400,
            n_eval: 100,
            seed: 5,
            ..Default::default()
        },
        &DeviceProfile::k80(),
    );
    let mut group = c.benchmark_group("calibrate_all");
    group.sample_size(10);
    group.bench_function("calibrate_all_361_models_x5_settings", |b| {
        b.iter(|| black_box(calibrate_all(&repo, &PAPER_PRECISION_SETTINGS)))
    });
    group.finish();
}

criterion_group!(benches, bench_thresholds);
criterion_main!(benches);

//! Minimal aligned-table and series rendering for experiment output.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a header row.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[i] {
                    out.push(' ');
                }
            }
            // strip trailing spaces
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Format a throughput in fps with sensible precision.
pub fn fps(x: f64) -> String {
    if x >= 1000.0 {
        format!("{x:.0}")
    } else if x >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Format a speedup factor.
pub fn speedup(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.1}x")
    }
}

/// Format an accuracy.
pub fn acc(x: f64) -> String {
    format!("{x:.3}")
}

/// Render an (accuracy, throughput) series as compact rows, downsampled to
/// at most `max_rows` (figures in the paper are scatter plots; text output
/// shows the frontier shape).
pub fn series(points: &[(f64, f64)], max_rows: usize) -> String {
    let mut out = String::new();
    let stride = points.len().div_ceil(max_rows.max(1)).max(1);
    for (i, (a, t)) in points.iter().enumerate() {
        if i % stride == 0 || i + 1 == points.len() {
            out.push_str(&format!("  acc={:.3}  thr={:>10} fps\n", a, fps(*t)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "fps"]);
        t.row(vec!["a", "10"]);
        t.row(vec!["longer-name", "2000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fps(20926.4), "20926");
        assert_eq!(fps(104.26), "104.3");
        assert_eq!(fps(57.5), "57.50");
        assert_eq!(speedup(98.4), "98.4x");
        assert_eq!(speedup(3.11), "3.1x");
        assert_eq!(acc(0.9185), "0.918");
    }

    #[test]
    fn series_downsamples() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 / 100.0, i as f64)).collect();
        let s = series(&pts, 10);
        assert!(s.lines().count() <= 12);
    }
}

//! Experiment harness: regenerates every table and figure in the paper's
//! evaluation (§VII) from this reproduction's substrate.
//!
//! Run via the `repro` binary:
//!
//! ```text
//! cargo run --release -p tahoma-bench --bin repro -- all
//! cargo run --release -p tahoma-bench --bin repro -- fig6 table3 ...
//! cargo run --release -p tahoma-bench --bin repro -- --quick fig6
//! ```
//!
//! Each experiment module returns a typed result (so integration tests can
//! assert on the *shape* of the reproduction — who wins, by roughly what
//! factor) and renders the same rows/series the paper reports. Absolute
//! numbers come from the calibrated analytic cost model (DESIGN.md §2.3),
//! not the authors' testbed, so shapes are the contract, not digits.

pub mod context;
pub mod experiments;
pub mod format;

pub use context::{ExperimentContext, Scale};
pub use format::Table;

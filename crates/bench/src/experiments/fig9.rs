//! Figure 9: per-predicate Pareto frontiers under CAMERA vs the cascades an
//! INFER-ONLY optimizer would have picked, re-costed under CAMERA.
//!
//! Paper: for amphibian/fence/scorpion/wallet, the orange (INFER-ONLY
//! chosen) points sit visibly below the blue CAMERA frontier — "if the data
//! handling costs ... were ignored ... considerable throughput gains would
//! be missed."

use crate::context::ExperimentContext;
use crate::format::{self, Table};
use tahoma_core::alc;
use tahoma_costmodel::Scenario;
use tahoma_imagery::ObjectKind;

/// One predicate's panel.
#[derive(Debug, Clone)]
pub struct Fig9Panel {
    /// The predicate.
    pub kind: ObjectKind,
    /// CAMERA-aware frontier.
    pub aware: Vec<(f64, f64)>,
    /// INFER-ONLY picks re-costed under CAMERA.
    pub oblivious: Vec<(f64, f64)>,
    /// ALC ratio aware/oblivious on the shared range.
    pub aware_over_oblivious: f64,
    /// Fraction of INFER-ONLY frontier cascades that also sit on the CAMERA
    /// frontier ("with few exceptions, the optimal cascades are different").
    pub overlap_fraction: f64,
}

/// Results for Fig. 9.
pub struct Fig9 {
    /// The four paper panels.
    pub panels: Vec<Fig9Panel>,
}

/// Run the experiment.
pub fn run(ctx: &ExperimentContext) -> Fig9 {
    let kinds = [
        ObjectKind::Amphibian,
        ObjectKind::Fence,
        ObjectKind::Scorpion,
        ObjectKind::Wallet,
    ];
    let camera = ExperimentContext::profiler_static(Scenario::Camera);
    let infer = ExperimentContext::profiler_static(Scenario::InferOnly);
    let panels = kinds
        .iter()
        .map(|&kind| {
            let run = ctx.run(kind);
            let aware_frontier = run.system.frontier(&camera);
            let infer_frontier = run.system.frontier(&infer);
            let infer_idx: Vec<usize> = infer_frontier.points.iter().map(|p| p.idx).collect();
            let oblivious = run.system.reprice(&infer_idx, &camera);
            let aware = aware_frontier.acc_thr();
            let aware_idx: std::collections::HashSet<usize> =
                aware_frontier.points.iter().map(|p| p.idx).collect();
            let overlap = infer_idx.iter().filter(|i| aware_idx.contains(i)).count();
            let range = alc::shared_accuracy_range(&[&aware, &oblivious]).expect("ranges overlap");
            Fig9Panel {
                kind,
                aware_over_oblivious: alc::speedup(&aware, &oblivious, range.0, range.1),
                overlap_fraction: overlap as f64 / infer_idx.len().max(1) as f64,
                aware,
                oblivious,
            }
        })
        .collect();
    Fig9 { panels }
}

/// Render the paper-style summary.
pub fn render(r: &Fig9) -> String {
    let mut out = String::new();
    out.push_str("Figure 9 — CAMERA frontiers vs INFER-ONLY-chosen cascades re-costed\n");
    out.push_str("(paper expectation: scenario-aware frontier dominates on every predicate)\n\n");
    let mut t = Table::new(vec![
        "predicate",
        "aware/oblivious ALC",
        "frontier overlap",
        "aware max fps",
        "oblivious max fps",
    ]);
    for p in &r.panels {
        let aware_max = p.aware.iter().map(|(_, t)| *t).fold(0.0, f64::max);
        let obl_max = p.oblivious.iter().map(|(_, t)| *t).fold(0.0, f64::max);
        t.row(vec![
            p.kind.to_string(),
            format::speedup(p.aware_over_oblivious),
            format!("{:.0}%", p.overlap_fraction * 100.0),
            format::fps(aware_max),
            format::fps(obl_max),
        ]);
    }
    out.push_str(&t.render());
    for p in &r.panels {
        out.push_str(&format!("\n{} CAMERA frontier:\n", p.kind));
        out.push_str(&format::series(&p.aware, 8));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aware_dominates_on_every_panel() {
        let ctx = crate::context::shared_quick_context();
        let r = run(ctx);
        assert_eq!(r.panels.len(), 4);
        for p in &r.panels {
            assert!(
                p.aware_over_oblivious >= 1.0,
                "{}: aware/oblivious {}",
                p.kind,
                p.aware_over_oblivious
            );
            // "With few exceptions, the optimal cascades under CAMERA are
            // different than the INFER ONLY ones."
            assert!(
                p.overlap_fraction < 0.9,
                "{}: overlap {:.2} suspiciously high",
                p.kind,
                p.overlap_fraction
            );
        }
        // At least one predicate should show a material (>5%) gain.
        assert!(
            r.panels.iter().any(|p| p.aware_over_oblivious > 1.05),
            "no panel shows a material scenario-awareness gain"
        );
        assert!(render(&r).contains("Figure 9"));
    }
}

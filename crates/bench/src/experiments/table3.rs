//! Table III: scenario-oblivious vs scenario-aware cascade choice at four
//! permissible accuracy-loss levels.
//!
//! Oblivious = select on the INFER-ONLY frontier (inference cost only, the
//! computer-vision-literature habit), then deploy under the real scenario.
//! Aware = select on the scenario's own frontier. Paper: awareness is worth
//! up to +59.5% throughput (CAMERA at 5% loss) and never hurts.

use crate::context::ExperimentContext;
use crate::format::{self, Table};
use tahoma_core::selector::{select_with_constraints, Constraints};
use tahoma_costmodel::Scenario;
use tahoma_mathx::mean;

/// The loss levels in the paper's rows.
pub const LOSS_LEVELS: [f64; 4] = [0.0, 0.02, 0.05, 0.10];

/// One (scenario, loss) cell.
#[derive(Debug, Clone)]
pub struct Table3Cell {
    /// Mean throughput of the oblivious choice deployed in-scenario (fps).
    pub oblivious_fps: f64,
    /// Mean throughput of the aware choice (fps).
    pub aware_fps: f64,
}

impl Table3Cell {
    /// Relative gain of awareness.
    pub fn gain(&self) -> f64 {
        if self.oblivious_fps <= 0.0 {
            return 0.0;
        }
        self.aware_fps / self.oblivious_fps - 1.0
    }
}

/// Results for Table III.
pub struct Table3 {
    /// Scenario order used for columns.
    pub scenarios: Vec<Scenario>,
    /// `cells[loss_index][scenario_index]`.
    pub cells: Vec<Vec<Table3Cell>>,
}

/// Run the experiment (mean over the ten predicates).
pub fn run(ctx: &ExperimentContext) -> Table3 {
    let scenarios = vec![Scenario::Archive, Scenario::Camera, Scenario::Ongoing];
    let infer = ExperimentContext::profiler_static(Scenario::InferOnly);
    let cells = LOSS_LEVELS
        .iter()
        .map(|&loss| {
            scenarios
                .iter()
                .map(|&scenario| {
                    let deployed = ExperimentContext::profiler_static(scenario);
                    let mut oblivious = Vec::new();
                    let mut aware = Vec::new();
                    for run in &ctx.runs {
                        let constraints = Constraints {
                            max_accuracy_loss: Some(loss),
                            max_throughput_loss: None,
                        };
                        // Aware: choose on the deployed scenario's frontier.
                        let aware_pick = run
                            .system
                            .select(&deployed, constraints)
                            .expect("feasible selection");
                        aware.push(aware_pick.throughput);
                        // Oblivious: choose on the INFER-ONLY frontier, then
                        // re-cost that cascade under the deployed scenario.
                        let infer_frontier = run.system.frontier(&infer);
                        let pick = select_with_constraints(&infer_frontier.points, constraints)
                            .expect("feasible selection");
                        let repriced = run.system.reprice(&[pick.idx], &deployed);
                        oblivious.push(repriced[0].1);
                    }
                    Table3Cell {
                        oblivious_fps: mean(&oblivious),
                        aware_fps: mean(&aware),
                    }
                })
                .collect()
        })
        .collect();
    Table3 { scenarios, cells }
}

/// Render the paper-style summary.
pub fn render(r: &Table3) -> String {
    let mut out = String::new();
    out.push_str("Table III — scenario-oblivious vs scenario-aware cascade choice\n");
    out.push_str("(mean over 10 predicates; paper peak gain: CAMERA +59.5% at 5% loss)\n\n");
    let mut header = vec!["perm. loss".to_string()];
    for s in &r.scenarios {
        header.push(format!("{s} oblivious"));
        header.push(format!("{s} aware"));
    }
    let mut t = Table::new(header);
    for (li, &loss) in LOSS_LEVELS.iter().enumerate() {
        let mut row = vec![format!("{:.0}% loss", loss * 100.0)];
        for cell in &r.cells[li] {
            row.push(format!("{} fps", format::fps(cell.oblivious_fps)));
            row.push(format!(
                "{} fps ({:+.1}%)",
                format::fps(cell.aware_fps),
                cell.gain() * 100.0
            ));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awareness_never_hurts_and_sometimes_wins_big() {
        let ctx = crate::context::shared_quick_context();
        let r = run(ctx);
        assert_eq!(r.cells.len(), 4);
        let mut max_gain = 0.0f64;
        for row in &r.cells {
            for cell in row {
                assert!(
                    cell.aware_fps >= cell.oblivious_fps * 0.999,
                    "aware {} < oblivious {}",
                    cell.aware_fps,
                    cell.oblivious_fps
                );
                max_gain = max_gain.max(cell.gain());
            }
        }
        assert!(
            max_gain > 0.05,
            "no cell shows a material awareness gain (max {max_gain:.3})"
        );
        // Throughput grows with permissible loss within each scenario.
        for si in 0..r.scenarios.len() {
            let first = r.cells[0][si].aware_fps;
            let last = r.cells[3][si].aware_fps;
            assert!(
                last >= first,
                "{}: 10% loss {} not faster than 0% loss {}",
                r.scenarios[si],
                last,
                first
            );
        }
        assert!(render(&r).contains("Table III"));
    }
}

//! Design-choice ablations called out in DESIGN.md §5 (not in the paper).
//!
//! 1. **Error correlation** (`rho`): the surrogate shares per-image
//!    difficulty across models; `rho = 0` makes model errors independent.
//!    The regimes disagree materially on TAHOMA's headline speedup (with
//!    independent errors the reference model also stops sharing the hard
//!    images, moving the accuracy bar), so a simulator that ignored the
//!    correlation structure would report a different result — the honest
//!    regime is the correlated one.
//! 2. **Threshold independence**: the paper calibrates thresholds per model
//!    rather than per cascade (§V-D) to keep evaluation O(models). We
//!    measure the evaluation-throughput payoff of the resulting
//!    precomputed-decision-table design.

use crate::context::{ExperimentContext, Scale, EXPERIMENT_SEED};
use crate::format::{self, Table};
use std::time::Instant;
use tahoma_core::evaluator::simulate_all;
use tahoma_core::pipeline::TahomaSystem;
use tahoma_core::selector::select_matching_accuracy;
use tahoma_costmodel::{DeviceProfile, Scenario};
use tahoma_imagery::ObjectKind;
use tahoma_zoo::repository::build_surrogate_repository;
use tahoma_zoo::{PredicateSpec, SurrogateParams};

/// Ablation results.
pub struct Ablation {
    /// Speedup over ResNet (matching accuracy) with correlated errors.
    pub correlated_speedup: f64,
    /// Same with independent errors (`rho = 0`).
    pub independent_speedup: f64,
    /// Cascade simulations per second of the precomputed-table evaluator.
    pub cascades_per_second: f64,
    /// Cascades in the timing run.
    pub timed_cascades: usize,
}

fn speedup_with(params: SurrogateParams, scale: Scale) -> f64 {
    let pred = PredicateSpec::for_kind(ObjectKind::Scorpion);
    let mut cfg = scale.build_config(EXPERIMENT_SEED ^ 0xAB1A);
    cfg.params = params;
    let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
    let system = TahomaSystem::initialize_paper_main(repo);
    let profiler = ExperimentContext::profiler_static(Scenario::InferOnly);
    let resnet = system.repo.resnet.expect("resnet");
    let resnet_acc = system.repo.eval_accuracy(resnet);
    let resnet_fps = 1.0 / system.repo.entry(resnet).infer_s;
    let frontier = system.frontier(&profiler);
    let pick = select_matching_accuracy(&frontier.points, resnet_acc).expect("nonempty");
    pick.throughput / resnet_fps
}

/// Run both ablations.
pub fn run(ctx: &ExperimentContext) -> Ablation {
    let correlated_speedup = speedup_with(SurrogateParams::default(), ctx.scale);
    let independent_speedup = speedup_with(SurrogateParams::uncorrelated(), ctx.scale);

    // Evaluator throughput on an existing system.
    let run = ctx.run(ObjectKind::Fence);
    let sample: Vec<tahoma_core::Cascade> = run
        .system
        .outcomes
        .cascades
        .iter()
        .copied()
        .take(200_000)
        .collect();
    let timed_cascades = sample.len();
    let t0 = Instant::now();
    let _ = simulate_all(&run.system.tables, sample);
    let secs = t0.elapsed().as_secs_f64();
    Ablation {
        correlated_speedup,
        independent_speedup,
        cascades_per_second: timed_cascades as f64 / secs,
        timed_cascades,
    }
}

/// Render the summary.
pub fn render(r: &Ablation) -> String {
    let mut out = String::new();
    out.push_str("Ablations — simulator honesty and evaluator design (DESIGN.md §5)\n\n");
    let mut t = Table::new(vec!["ablation", "value"]);
    t.row(vec![
        "vs-ResNet speedup, correlated errors (honest)".to_string(),
        format::speedup(r.correlated_speedup),
    ]);
    t.row(vec![
        "vs-ResNet speedup, independent errors (rho=0)".to_string(),
        format::speedup(r.independent_speedup),
    ]);
    t.row(vec![
        "distortion from ignoring error correlation".to_string(),
        format!(
            "{:.2}x (a naive independent-error simulator misstates the result)",
            r.independent_speedup / r.correlated_speedup.max(1e-9)
        ),
    ]);
    t.row(vec![
        "precomputed-table evaluator".to_string(),
        format!(
            "{:.0} cascades/s over {} cascades (paper: 1.3M in ~1 min)",
            r.cascades_per_second, r.timed_cascades
        ),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_correlation_materially_changes_the_result() {
        let ctx = crate::context::shared_quick_context();
        let r = run(ctx);
        let ratio = r.independent_speedup / r.correlated_speedup.max(1e-9);
        assert!(
            !(0.95..=1.05).contains(&ratio),
            "regimes agree suspiciously: ratio {ratio:.3}"
        );
        // The evaluator must beat the paper's ~22k cascades/s by a wide
        // margin even in debug-test conditions.
        assert!(r.cascades_per_second > 5_000.0, "{}", r.cascades_per_second);
        assert!(render(&r).contains("Ablations"));
    }
}

//! Figure 4: the cascade cloud and Pareto frontier for one example
//! deployment scenario, against the frontier a purely inference-cost-aware
//! optimizer would pick.
//!
//! Paper: gray points = all cascades under a CAMERA-like scenario; blue =
//! that scenario's Pareto frontier; orange = the INFER-ONLY frontier's
//! cascades re-costed under the scenario (no longer optimal). The gap
//! between blue and orange is the cost of scenario-obliviousness.

use crate::context::{ExperimentContext, PredicateRun};
use crate::format::{self, Table};
use tahoma_core::alc;
use tahoma_costmodel::Scenario;
use tahoma_imagery::ObjectKind;

/// Results for Fig. 4.
pub struct Fig4 {
    /// Number of cascades in the cloud.
    pub n_cascades: usize,
    /// Scenario-aware frontier (accuracy, throughput).
    pub aware_frontier: Vec<(f64, f64)>,
    /// INFER-ONLY frontier re-costed under the scenario.
    pub oblivious_points: Vec<(f64, f64)>,
    /// ALC ratio aware / oblivious over the shared accuracy range.
    pub aware_over_oblivious: f64,
}

fn frontier_points(run: &PredicateRun, scenario: Scenario) -> (Vec<(f64, f64)>, Vec<usize>) {
    let profiler = crate::context::ExperimentContext::profiler_static(scenario);
    let f = run.system.frontier(&profiler);
    (f.acc_thr(), f.points.iter().map(|p| p.idx).collect())
}

/// Run the experiment. The paper's example predicate is "semitruck"-like;
/// we use `fence` (a mid-difficulty texture class) under CAMERA.
pub fn run(ctx: &ExperimentContext) -> Fig4 {
    let run = ctx.run(ObjectKind::Fence);
    let scenario = Scenario::Camera;
    let (aware_frontier, _) = frontier_points(run, scenario);
    let (_, oblivious_idx) = frontier_points(run, Scenario::InferOnly);
    let oblivious_points = run.system.reprice(
        &oblivious_idx,
        &ExperimentContext::profiler_static(scenario),
    );
    let range = alc::shared_accuracy_range(&[&aware_frontier, &oblivious_points])
        .expect("overlapping accuracy ranges");
    let aware_over_oblivious = alc::speedup(&aware_frontier, &oblivious_points, range.0, range.1);
    Fig4 {
        n_cascades: run.system.n_cascades(),
        aware_frontier,
        oblivious_points,
        aware_over_oblivious,
    }
}

/// Render the paper-style summary.
pub fn render(r: &Fig4) -> String {
    let mut out = String::new();
    out.push_str("Figure 4 — cascades and Pareto frontier, scenario-aware vs inference-only\n");
    out.push_str(&format!(
        "cloud: {} cascades (fence predicate, CAMERA scenario)\n\n",
        r.n_cascades
    ));
    out.push_str("scenario-aware Pareto frontier (blue in the paper):\n");
    out.push_str(&format::series(&r.aware_frontier, 12));
    out.push_str("\nINFER-ONLY-chosen cascades re-costed here (orange in the paper):\n");
    let mut sorted = r.oblivious_points.clone();
    sorted.sort_by(|a, b| tahoma_core::order::nan_lowest(b.1, a.1));
    out.push_str(&format::series(&sorted, 12));
    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec![
        "ALC(aware) / ALC(oblivious)".to_string(),
        format::speedup(r.aware_over_oblivious),
    ]);
    t.row(vec![
        "paper expectation".to_string(),
        "aware frontier dominates; oblivious loses most accuracy levels".to_string(),
    ]);
    out.push('\n');
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aware_frontier_dominates_oblivious_choices() {
        let ctx = crate::context::shared_quick_context();
        let r = run(ctx);
        assert!(
            r.aware_over_oblivious >= 1.0,
            "aware/oblivious = {}",
            r.aware_over_oblivious
        );
        assert!(!r.aware_frontier.is_empty());
        assert!(!r.oblivious_points.is_empty());
        // Render shouldn't panic and should mention the figure.
        assert!(render(&r).contains("Figure 4"));
    }
}

//! Figure 6: average speedups of TAHOMA over its baselines per deployment
//! scenario.
//!
//! Three comparisons, averaged over the ten predicates:
//! * **ResNet** — optimal cascade with accuracy closest above ResNet50's,
//!   against ResNet50 alone (paper: 98x under INFER-ONLY);
//! * **Baseline (fastest)** — TAHOMA at the accuracy of the fastest Baseline
//!   cascade, against that cascade (paper: 59x);
//! * **Baseline (average)** — ALC ratio over the Baseline set's accuracy
//!   range (paper: 35x).
//!
//! Data-handling costs shrink all three as scenarios get heavier, down to
//! ~2x under ARCHIVE.

use crate::context::{
    accuracy_range, baseline_cascades, intersect_ranges, priced_points_for, resnet_point,
    ExperimentContext, PredicateRun,
};
use crate::format::{self, Table};
use tahoma_core::selector::select_matching_accuracy;
use tahoma_core::{alc, pareto_frontier};
use tahoma_costmodel::Scenario;
use tahoma_mathx::mean;

/// Speedups for one scenario (averages over predicates).
#[derive(Debug, Clone)]
pub struct ScenarioSpeedups {
    /// The scenario.
    pub scenario: Scenario,
    /// vs ResNet50 at matching accuracy.
    pub vs_resnet: f64,
    /// vs the fastest Baseline cascade at its accuracy.
    pub vs_baseline_fastest: f64,
    /// ALC ratio over the Baseline accuracy range.
    pub vs_baseline_average: f64,
}

/// Results for Fig. 6.
pub struct Fig6 {
    /// One row per scenario, in the paper's order.
    pub rows: Vec<ScenarioSpeedups>,
}

fn speedups_for(run: &PredicateRun, scenario: Scenario) -> (f64, f64, f64) {
    let profiler = ExperimentContext::profiler_static(scenario);
    let frontier = run.system.frontier(&profiler);

    // vs ResNet at matching accuracy.
    let (resnet_acc, resnet_fps) = resnet_point(run, scenario);
    let matched =
        select_matching_accuracy(&frontier.points, resnet_acc).expect("frontier nonempty");
    let vs_resnet = matched.throughput / resnet_fps;

    // Baseline set and its frontier.
    let baseline_points = priced_points_for(run, baseline_cascades(run), scenario);
    let acc: Vec<f32> = baseline_points.iter().map(|(a, _)| *a as f32).collect();
    let thr: Vec<f64> = baseline_points.iter().map(|(_, t)| *t).collect();
    let baseline_frontier: Vec<(f64, f64)> = pareto_frontier(&acc, &thr)
        .into_iter()
        .map(|p| (p.accuracy, p.throughput))
        .collect();

    // vs fastest baseline at its accuracy level.
    let (fb_acc, fb_fps) = baseline_frontier
        .iter()
        .copied()
        .max_by(|a, b| tahoma_core::order::nan_lowest(a.1, b.1))
        .expect("baseline frontier nonempty");
    let matched_fb = select_matching_accuracy(&frontier.points, fb_acc).expect("frontier nonempty");
    let vs_baseline_fastest = matched_fb.throughput / fb_fps;

    // Average over the baseline set's accuracy range (paper: the smallest
    // full-set range), intersected with TAHOMA's own.
    let tahoma_frontier = frontier.acc_thr();
    let tahoma_range = (
        run.system
            .outcomes
            .outcomes
            .iter()
            .map(|o| o.accuracy as f64)
            .fold(f64::INFINITY, f64::min),
        run.system
            .outcomes
            .outcomes
            .iter()
            .map(|o| o.accuracy as f64)
            .fold(0.0, f64::max),
    );
    let range = intersect_ranges(tahoma_range, accuracy_range(&baseline_points));
    let vs_baseline_average = alc::speedup(&tahoma_frontier, &baseline_frontier, range.0, range.1);

    (vs_resnet, vs_baseline_fastest, vs_baseline_average)
}

/// Run the experiment over all predicates and scenarios.
pub fn run(ctx: &ExperimentContext) -> Fig6 {
    let rows = Scenario::ALL
        .iter()
        .map(|&scenario| {
            let mut vr = Vec::new();
            let mut vf = Vec::new();
            let mut va = Vec::new();
            for run in &ctx.runs {
                let (r, f, a) = speedups_for(run, scenario);
                vr.push(r);
                vf.push(f);
                va.push(a);
            }
            ScenarioSpeedups {
                scenario,
                vs_resnet: mean(&vr),
                vs_baseline_fastest: mean(&vf),
                vs_baseline_average: mean(&va),
            }
        })
        .collect();
    Fig6 { rows }
}

/// Render the paper-style summary.
pub fn render(r: &Fig6) -> String {
    let mut out = String::new();
    out.push_str("Figure 6 — average TAHOMA speedup over baselines per scenario\n");
    out.push_str(
        "(paper anchors, INFER ONLY: ResNet 98x, Baseline-fastest 59x, Baseline-average 35x;\n",
    );
    out.push_str(" ARCHIVE compresses everything toward ~2x)\n\n");
    let mut t = Table::new(vec![
        "scenario",
        "vs ResNet50",
        "vs Baseline (fastest)",
        "vs Baseline (average)",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.scenario.to_string(),
            format::speedup(row.vs_resnet),
            format::speedup(row.vs_baseline_fastest),
            format::speedup(row.vs_baseline_average),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_shape_matches_paper() {
        let ctx = crate::context::shared_quick_context();
        let r = run(ctx);
        assert_eq!(r.rows.len(), 4);
        let by = |s: Scenario| {
            r.rows
                .iter()
                .find(|row| row.scenario == s)
                .expect("scenario present")
        };
        let infer = by(Scenario::InferOnly);
        let archive = by(Scenario::Archive);
        // Large wins when only inference is counted...
        assert!(
            infer.vs_resnet > 10.0,
            "INFER-ONLY vs ResNet only {:.1}x",
            infer.vs_resnet
        );
        assert!(infer.vs_baseline_average > 5.0);
        // ...compressed by data handling, but still a win, under ARCHIVE.
        assert!(
            archive.vs_resnet < infer.vs_resnet / 4.0,
            "ARCHIVE {:.1}x not much below INFER-ONLY {:.1}x",
            archive.vs_resnet,
            infer.vs_resnet
        );
        assert!(archive.vs_resnet > 1.0, "ARCHIVE should still beat ResNet");
        assert!(render(&r).contains("Figure 6"));
    }
}

//! Figure 7: throughput of the fastest Pareto-optimal cascade vs ResNet50,
//! per scenario, averaged over the ten predicates.
//!
//! Paper: under INFER-ONLY the fastest "cascades" are single specialized
//! classifiers averaging 20,926 fps — 280x ResNet50's ~75 fps — at an
//! average accuracy cost of ~12%; ONGOING still reaches 5,484 fps (81x).

use crate::context::{resnet_point, ExperimentContext};
use crate::format::{self, Table};
use tahoma_core::selector::select_fastest;
use tahoma_costmodel::Scenario;
use tahoma_mathx::mean;

/// One scenario's row.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// The scenario.
    pub scenario: Scenario,
    /// Mean throughput of the fastest optimal cascade (fps).
    pub tahoma_fps: f64,
    /// Mean ResNet50 throughput (fps).
    pub resnet_fps: f64,
    /// Mean accuracy loss of the fastest cascade vs ResNet50 (fraction).
    pub accuracy_loss_vs_resnet: f64,
    /// Fraction of predicates whose fastest choice is a single model.
    pub single_model_fraction: f64,
}

/// Results for Fig. 7.
pub struct Fig7 {
    /// One row per scenario.
    pub rows: Vec<Fig7Row>,
}

/// Run the experiment.
pub fn run(ctx: &ExperimentContext) -> Fig7 {
    let rows = Scenario::ALL
        .iter()
        .map(|&scenario| {
            let profiler = ExperimentContext::profiler_static(scenario);
            let mut fps = Vec::new();
            let mut resnet = Vec::new();
            let mut loss = Vec::new();
            let mut singles = 0usize;
            for run in &ctx.runs {
                let frontier = run.system.frontier(&profiler);
                let fastest = select_fastest(&frontier.points).expect("nonempty frontier");
                fps.push(fastest.throughput);
                let (r_acc, r_fps) = resnet_point(run, scenario);
                resnet.push(r_fps);
                loss.push((r_acc - fastest.accuracy).max(0.0));
                if run.system.outcomes.cascades[fastest.idx].depth() == 1 {
                    singles += 1;
                }
            }
            Fig7Row {
                scenario,
                tahoma_fps: mean(&fps),
                resnet_fps: mean(&resnet),
                accuracy_loss_vs_resnet: mean(&loss),
                single_model_fraction: singles as f64 / ctx.runs.len() as f64,
            }
        })
        .collect();
    Fig7 { rows }
}

/// Render the paper-style summary.
pub fn render(r: &Fig7) -> String {
    let mut out = String::new();
    out.push_str("Figure 7 — fastest optimal cascade vs ResNet50 (mean over 10 predicates)\n");
    out.push_str("(paper anchors: INFER ONLY 20,926 fps = 280x ResNet at ~12% accuracy cost;\n");
    out.push_str(" ONGOING 5,484 fps = 81x; fastest choices are single specialized models)\n\n");
    let mut t = Table::new(vec![
        "scenario",
        "TAHOMA fps",
        "ResNet50 fps",
        "speedup",
        "acc loss",
        "single-model",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.scenario.to_string(),
            format::fps(row.tahoma_fps),
            format::fps(row.resnet_fps),
            format::speedup(row.tahoma_fps / row.resnet_fps),
            format!("{:.1}%", row.accuracy_loss_vs_resnet * 100.0),
            format!("{:.0}%", row.single_model_fraction * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastest_cascades_match_paper_shape() {
        let ctx = crate::context::shared_quick_context();
        let r = run(ctx);
        let by = |s: Scenario| r.rows.iter().find(|row| row.scenario == s).unwrap();
        let infer = by(Scenario::InferOnly);
        // Order of magnitude: tens of thousands of fps, >100x ResNet.
        assert!(
            infer.tahoma_fps > 10_000.0,
            "INFER-ONLY fastest {:.0} fps",
            infer.tahoma_fps
        );
        assert!(infer.tahoma_fps / infer.resnet_fps > 100.0);
        // Accuracy is traded away (paper: ~12%).
        assert!(infer.accuracy_loss_vs_resnet > 0.01);
        // The fastest pick is almost always a single specialized model.
        assert!(infer.single_model_fraction >= 0.8);
        // Scenario ordering: INFER-ONLY > ONGOING > CAMERA > ARCHIVE.
        let ongoing = by(Scenario::Ongoing).tahoma_fps;
        let camera = by(Scenario::Camera).tahoma_fps;
        let archive = by(Scenario::Archive).tahoma_fps;
        assert!(
            infer.tahoma_fps > ongoing && ongoing > camera && camera > archive,
            "ordering violated: {} {} {} {}",
            infer.tahoma_fps,
            ongoing,
            camera,
            archive
        );
        assert!(render(&r).contains("Figure 7"));
    }
}

//! Figure 5: TAHOMA's cascade design space vs the Baseline cascades
//! (komondor predicate, CAMERA cost model).
//!
//! Paper: the Baseline set (full-color 224x224 first stages terminating in
//! ResNet50) occupies a small, slow sliver of the space; TAHOMA's input
//! transformations and extra depth make its cloud — and frontier — far
//! larger and faster.

use crate::context::{
    accuracy_range, baseline_cascades, intersect_ranges, priced_points_for, ExperimentContext,
};
use crate::format::{self, Table};
use tahoma_core::{alc, pareto_frontier};
use tahoma_costmodel::Scenario;
use tahoma_imagery::ObjectKind;

/// Results for Fig. 5.
pub struct Fig5 {
    /// Size of TAHOMA's cascade set.
    pub n_tahoma: usize,
    /// Size of the Baseline cascade set.
    pub n_baseline: usize,
    /// TAHOMA's Pareto frontier (accuracy, throughput).
    pub tahoma_frontier: Vec<(f64, f64)>,
    /// Baseline's Pareto frontier.
    pub baseline_frontier: Vec<(f64, f64)>,
    /// Fastest cascade in each set (fps).
    pub tahoma_max_fps: f64,
    /// Fastest baseline cascade (fps).
    pub baseline_max_fps: f64,
    /// ALC speedup of TAHOMA over Baseline on the shared accuracy range.
    pub alc_speedup: f64,
}

/// Run the experiment.
pub fn run(ctx: &ExperimentContext) -> Fig5 {
    let run = ctx.run(ObjectKind::Komondor);
    let scenario = Scenario::Camera;
    let profiler = ExperimentContext::profiler_static(scenario);
    let tahoma_frontier = run.system.frontier(&profiler).acc_thr();
    let tahoma_all = run.system.priced_points(&profiler);
    let baseline = baseline_cascades(run);
    let n_baseline = baseline.len();
    let baseline_points = priced_points_for(run, baseline, scenario);
    let acc: Vec<f32> = baseline_points.iter().map(|(a, _)| *a as f32).collect();
    let thr: Vec<f64> = baseline_points.iter().map(|(_, t)| *t).collect();
    let baseline_frontier: Vec<(f64, f64)> = pareto_frontier(&acc, &thr)
        .into_iter()
        .map(|p| (p.accuracy, p.throughput))
        .collect();
    // Paper: ALC over the full sets' accuracy ranges, intersected.
    let range = intersect_ranges(
        accuracy_range(&tahoma_all),
        accuracy_range(&baseline_points),
    );
    Fig5 {
        n_tahoma: run.system.n_cascades(),
        n_baseline,
        tahoma_max_fps: tahoma_all.iter().map(|(_, t)| *t).fold(0.0, f64::max),
        baseline_max_fps: baseline_points.iter().map(|(_, t)| *t).fold(0.0, f64::max),
        alc_speedup: alc::speedup(&tahoma_frontier, &baseline_frontier, range.0, range.1),
        tahoma_frontier,
        baseline_frontier,
    }
}

/// Render the paper-style summary.
pub fn render(r: &Fig5) -> String {
    let mut out = String::new();
    out.push_str("Figure 5 — TAHOMA design space vs Baseline cascades (komondor, CAMERA)\n\n");
    let mut t = Table::new(vec!["set", "cascades", "max fps", "frontier points"]);
    t.row(vec![
        "TAHOMA".to_string(),
        r.n_tahoma.to_string(),
        format::fps(r.tahoma_max_fps),
        r.tahoma_frontier.len().to_string(),
    ]);
    t.row(vec![
        "Baseline".to_string(),
        r.n_baseline.to_string(),
        format::fps(r.baseline_max_fps),
        r.baseline_frontier.len().to_string(),
    ]);
    out.push_str(&t.render());
    out.push_str("\nTAHOMA Pareto frontier:\n");
    out.push_str(&format::series(&r.tahoma_frontier, 10));
    out.push_str("\nBaseline Pareto frontier:\n");
    out.push_str(&format::series(&r.baseline_frontier, 10));
    out.push_str(&format!(
        "\nALC speedup of TAHOMA over Baseline: {}\n",
        format::speedup(r.alc_speedup)
    ));
    out.push_str("paper expectation: TAHOMA cloud markedly larger and faster than Baseline\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tahoma_space_dwarfs_baseline() {
        let ctx = crate::context::shared_quick_context();
        let r = run(ctx);
        assert!(r.n_tahoma > r.n_baseline * 50);
        assert!(
            r.tahoma_max_fps > r.baseline_max_fps * 2.0,
            "TAHOMA max {} vs baseline max {}",
            r.tahoma_max_fps,
            r.baseline_max_fps
        );
        assert!(r.alc_speedup > 1.0, "ALC speedup {}", r.alc_speedup);
        assert!(render(&r).contains("Figure 5"));
    }
}

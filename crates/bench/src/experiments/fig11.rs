//! Figure 11 + §VII-F: Pareto frontier evolution with cascade depth, and the
//! exploding cost of evaluating deeper cascade sets.
//!
//! Paper: sets of maximum depth 1, 1+ResNet, 2, 2+ResNet, 3, 3+ResNet
//! (each including all shallower cascades). Deeper sets improve the
//! frontier with sharply diminishing returns — moving from "2 level +
//! ResNet" to a full 3-level cross product buys ~1.0% average throughput
//! while multiplying evaluation time ~40x. A full 4-level cross product
//! (360^4 cascades) is intractable, which is why the main experiments stop
//! at "2 level + ResNet".
//!
//! The full 360-model pool would give 360^3 x 5 ≈ 230 M depth-3 cascades;
//! like the paper we report the sweep on a reduced pool and extrapolate the
//! full-pool evaluation cost from measured cascades/second.

use crate::context::ExperimentContext;
use crate::format::{self, Table};
use std::time::Instant;
use tahoma_core::evaluator::simulate_all;
use tahoma_core::{alc, build_cascades, pareto_frontier, BuilderConfig};
use tahoma_costmodel::Scenario;
use tahoma_imagery::ObjectKind;
use tahoma_zoo::ModelId;

/// One depth configuration's outcome.
#[derive(Debug, Clone)]
pub struct DepthRow {
    /// Label matching the paper's legend.
    pub label: &'static str,
    /// Cascades evaluated.
    pub n_cascades: usize,
    /// Evaluation wall-clock seconds.
    pub eval_seconds: f64,
    /// Average frontier throughput (ALC / range) under CAMERA.
    pub avg_fps: f64,
}

/// Results for Fig. 11.
pub struct Fig11 {
    /// Pool size used for the sweep.
    pub pool_size: usize,
    /// One row per depth configuration, shallow to deep.
    pub rows: Vec<DepthRow>,
    /// Projected full-pool (360-model) depth-3 cascade count.
    pub projected_full_depth3: u128,
}

/// Run the experiment on the fence predicate under CAMERA.
pub fn run(ctx: &ExperimentContext) -> Fig11 {
    let run = ctx.run(ObjectKind::Fence);
    let repo = &run.system.repo;
    // Stratified pool: every k-th specialized model, capped for depth-3
    // tractability.
    let specialized = repo.specialized_ids();
    let target_pool = 48usize.min(specialized.len());
    let stride = (specialized.len() / target_pool).max(1);
    let pool: Vec<ModelId> = specialized.into_iter().step_by(stride).collect();
    let resnet = repo.resnet;

    let configs: [(&'static str, usize, bool); 6] = [
        ("1 level", 1, false),
        ("1 level + ResNet", 1, true),
        ("2 level", 2, false),
        ("2 level + ResNet", 2, true),
        ("3 level", 3, false),
        ("3 level + ResNet", 3, true),
    ];
    let profiler = ExperimentContext::profiler_static(Scenario::Camera);
    let cost_ctx = tahoma_core::evaluator::CostContext::build(repo, &profiler);

    // First pass: build and evaluate every set, keeping frontiers.
    type Staged = (&'static str, usize, f64, Vec<(f64, f64)>);
    let mut staged: Vec<Staged> = Vec::with_capacity(configs.len());
    for (label, depth, with_ref) in configs {
        let cfg = BuilderConfig {
            pool: pool.clone(),
            reference: if with_ref { resnet } else { None },
            n_settings: run.system.thresholds.n_settings(),
            max_pool_depth: depth,
            with_reference_terminal: with_ref,
        };
        let cascades = build_cascades(&cfg);
        let n_cascades = cascades.len();
        let t0 = Instant::now();
        let outcomes = simulate_all(&run.system.tables, cascades);
        let eval_seconds = t0.elapsed().as_secs_f64();
        let acc: Vec<f32> = outcomes.outcomes.iter().map(|o| o.accuracy).collect();
        let thr: Vec<f64> = outcomes
            .cascades
            .iter()
            .zip(&outcomes.outcomes)
            .map(|(c, o)| cost_ctx.throughput_fps(c, o, outcomes.n_images))
            .collect();
        let frontier: Vec<(f64, f64)> = pareto_frontier(&acc, &thr)
            .into_iter()
            .map(|p| (p.accuracy, p.throughput))
            .collect();
        staged.push((label, n_cascades, eval_seconds, frontier));
    }
    // Second pass: one shared accuracy range spanning every set, so deeper
    // sets get credit for extending the frontier's accuracy reach.
    let lo = staged
        .iter()
        .flat_map(|(_, _, _, f)| f.iter().map(|(a, _)| *a))
        .fold(f64::INFINITY, f64::min);
    let hi = staged
        .iter()
        .flat_map(|(_, _, _, f)| f.iter().map(|(a, _)| *a))
        .fold(0.0, f64::max);
    let rows = staged
        .into_iter()
        .map(|(label, n_cascades, eval_seconds, frontier)| DepthRow {
            label,
            n_cascades,
            eval_seconds,
            avg_fps: alc::average_throughput(&frontier, lo, hi),
        })
        .collect();
    Fig11 {
        pool_size: pool.len(),
        rows,
        projected_full_depth3: 360u128 * 360 * 360 * 5,
    }
}

/// Render the paper-style summary.
pub fn render(r: &Fig11) -> String {
    let mut out = String::new();
    out.push_str("Figure 11 / §VII-F — frontier vs cascade depth (fence, CAMERA)\n");
    out.push_str(&format!(
        "(reduced pool of {} models for depth-3 tractability; paper: 2L+R -> 3L buys ~1%\n while eval time grows ~40x; full 3-level space would be {} cascades)\n\n",
        r.pool_size, r.projected_full_depth3
    ));
    let mut t = Table::new(vec![
        "set",
        "cascades",
        "eval seconds",
        "avg fps",
        "gain vs prev",
    ]);
    let mut prev: Option<f64> = None;
    for row in &r.rows {
        let gain = prev.map_or("-".to_string(), |p| {
            format!("{:+.1}%", (row.avg_fps / p - 1.0) * 100.0)
        });
        prev = Some(row.avg_fps);
        t.row(vec![
            row.label.to_string(),
            row.n_cascades.to_string(),
            format!("{:.2}", row.eval_seconds),
            format::fps(row.avg_fps),
            gain,
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_has_diminishing_returns() {
        let ctx = crate::context::shared_quick_context();
        let r = run(ctx);
        assert_eq!(r.rows.len(), 6);
        // Monotone non-decreasing frontier quality with depth (supersets).
        for w in r.rows.windows(2) {
            // Each deeper config is not a strict superset of the previous
            // label in our enumeration (e.g. "2 level" drops the ResNet
            // variants), so only check the overall trend ends higher than
            // it starts and the final jump is small.
            let _ = w;
        }
        let first = r.rows.first().unwrap().avg_fps;
        let last = r.rows.last().unwrap().avg_fps;
        assert!(last >= first * 0.99, "deeper sets should not get worse");
        // Diminishing returns: 2L+R -> 3L+R gains a small fraction of the
        // 1L -> 2L gain.
        let by = |label: &str| {
            r.rows
                .iter()
                .find(|row| row.label == label)
                .unwrap()
                .avg_fps
        };
        let gain_shallow = by("2 level") / by("1 level");
        let gain_deep = by("3 level + ResNet") / by("2 level + ResNet");
        assert!(
            gain_deep < gain_shallow,
            "deep gain {gain_deep:.3} should be below shallow gain {gain_shallow:.3}"
        );
        assert!(
            gain_deep < 1.25,
            "2L+R -> 3L+R gain {gain_deep:.3} too large"
        );
        // Cascade counts explode with depth.
        assert!(by_row(&r, "3 level").n_cascades > by_row(&r, "2 level").n_cascades * 10);
        assert!(render(&r).contains("Figure 11"));
    }

    fn by_row<'a>(r: &'a Fig11, label: &str) -> &'a DepthRow {
        r.rows.iter().find(|row| row.label == label).unwrap()
    }
}

//! One module per paper table/figure, plus the design-choice ablations
//! called out in DESIGN.md §5.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table2;
pub mod table3;

//! Figure 8: NoScope vs TAHOMA+DD on the coral and jackson streams.
//!
//! Paper: coral — NoScope 3,494 fps vs TAHOMA+DD 10,700 fps (3.1x);
//! jackson — 260 fps vs 7,150 fps (27.5x). Footnote 2: coral's difference
//! detector reuses 25.2% of frames vs jackson's 3.8%, and NoScope's fixed
//! specialized model falls through to YOLOv2 often on jackson, which is
//! exactly where TAHOMA's richer cascade space wins big.

use crate::context::{ExperimentContext, Scale, EXPERIMENT_SEED};
use crate::format::{self, Table};
use tahoma_noscope::{
    run_with_dd_batched, NoScopeConfig, NoScopeSystem, RunReport, TahomaDdSystem, VideoDataset,
};
use tahoma_video::{DifferenceDetector, FrameSkipper, VideoStream};

/// One dataset's comparison.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Dataset name.
    pub dataset: String,
    /// NoScope run report.
    pub noscope: RunReport,
    /// TAHOMA+DD run report.
    pub tahoma: RunReport,
    /// The selected TAHOMA cascade (description).
    pub tahoma_plan: String,
}

/// Results for Fig. 8.
pub struct Fig8 {
    /// coral and jackson rows.
    pub rows: Vec<Fig8Row>,
}

fn run_dataset(dataset: &VideoDataset, scale: Scale) -> Fig8Row {
    let frames = VideoStream::new(dataset.stream.clone()).take_frames(dataset.n_frames);
    let skipper = FrameSkipper::paper_default();

    let noscope_sys = NoScopeSystem::build(dataset, &NoScopeConfig::default());
    let mut dd = DifferenceDetector::new(dataset.dd_threshold);
    let noscope = run_with_dd_batched(&frames, skipper, &mut dd, &noscope_sys);

    let build_cfg = scale.build_config(EXPERIMENT_SEED ^ 0xF18);
    let tahoma_sys = TahomaDdSystem::build(dataset, build_cfg, noscope.accuracy);
    let mut dd = DifferenceDetector::new(dataset.dd_threshold);
    let tahoma = run_with_dd_batched(&frames, skipper, &mut dd, &tahoma_sys);

    Fig8Row {
        dataset: dataset.stream.name.clone(),
        noscope,
        tahoma,
        tahoma_plan: tahoma_sys.description().to_string(),
    }
}

/// Run the experiment.
pub fn run(ctx: &ExperimentContext) -> Fig8 {
    let n = ctx.scale.stream_frames();
    let rows = vec![
        run_dataset(&VideoDataset::coral(EXPERIMENT_SEED ^ 0xC0, n), ctx.scale),
        run_dataset(&VideoDataset::jackson(EXPERIMENT_SEED ^ 0x1A, n), ctx.scale),
    ];
    Fig8 { rows }
}

/// Render the paper-style summary.
pub fn render(r: &Fig8) -> String {
    let mut out = String::new();
    out.push_str("Figure 8 — NoScope vs TAHOMA+DD (INFER-ONLY costs, 1-of-30 frame skip)\n");
    out.push_str("(paper anchors: coral 3,494 -> 10,700 fps = 3.1x, 25.2% DD reuse;\n");
    out.push_str("                jackson 260 -> 7,150 fps = 27.5x, 3.8% DD reuse)\n\n");
    let mut t = Table::new(vec![
        "dataset",
        "NoScope fps",
        "TAHOMA+DD fps",
        "speedup",
        "NS acc",
        "T acc",
        "DD reuse",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.dataset.clone(),
            format::fps(row.noscope.throughput_fps),
            format::fps(row.tahoma.throughput_fps),
            format::speedup(row.tahoma.throughput_fps / row.noscope.throughput_fps),
            format::acc(row.noscope.accuracy),
            format::acc(row.tahoma.accuracy),
            format!("{:.1}%", row.noscope.reuse_rate * 100.0),
        ]);
    }
    out.push_str(&t.render());
    for row in &r.rows {
        out.push_str(&format!("{} plan: {}\n", row.dataset, row.tahoma_plan));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tahoma_dd_wins_with_larger_margin_on_jackson() {
        let ctx = crate::context::shared_quick_context();
        let r = run(ctx);
        assert_eq!(r.rows.len(), 2);
        let coral = &r.rows[0];
        let jackson = &r.rows[1];
        let coral_speedup = coral.tahoma.throughput_fps / coral.noscope.throughput_fps;
        let jackson_speedup = jackson.tahoma.throughput_fps / jackson.noscope.throughput_fps;
        assert!(
            coral_speedup > 1.0,
            "coral: TAHOMA+DD not faster ({coral_speedup:.2}x)"
        );
        assert!(
            jackson_speedup > coral_speedup,
            "jackson speedup {jackson_speedup:.1}x should exceed coral {coral_speedup:.1}x"
        );
        // Footnote 2: coral reuses far more than jackson.
        assert!(coral.noscope.reuse_rate > 2.0 * jackson.noscope.reuse_rate);
        assert!(render(&r).contains("Figure 8"));
    }
}

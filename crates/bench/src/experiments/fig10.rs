//! Figure 10: ablation of the input-transformation families (§VII-E).
//!
//! Four cascade sets per predicate — None (224x224 RGB only), Color
//! Variations, Resizing, Full — compared by ALC average throughput over the
//! Full set's accuracy range, under the ONGOING scenario (data-handling
//! costs counted, so the transforms must "more than pay for" themselves, as
//! §VII-E stresses). Paper: resizing alone is worth ~10x over None; the
//! full set wins everywhere.

use crate::context::{ExperimentContext, EXPERIMENT_SEED};
use crate::format::{self, Table};
use tahoma_core::pipeline::TahomaSystem;
use tahoma_core::{alc, BuilderConfig};
use tahoma_costmodel::{DeviceProfile, Scenario};
use tahoma_imagery::ObjectKind;
use tahoma_zoo::repository::build_surrogate_repository;
use tahoma_zoo::variant::cross_variants;
use tahoma_zoo::{ArchSpec, TransformSet};

/// One predicate's four-arm comparison (average throughput, fps).
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// The predicate.
    pub kind: ObjectKind,
    /// Average throughput per arm, in `TransformSet::ALL` order.
    pub avg_fps: [f64; 4],
}

/// Results for Fig. 10.
pub struct Fig10 {
    /// One row per predicate.
    pub rows: Vec<Fig10Row>,
    /// Mean across predicates per arm.
    pub mean_fps: [f64; 4],
}

/// Build a system whose specialized pool is restricted to one transform arm.
fn arm_system(ctx: &ExperimentContext, kind: ObjectKind, arm: TransformSet) -> TahomaSystem {
    let pred = ctx.run(kind).pred;
    let archs = ArchSpec::all_paper();
    let variants = cross_variants(&archs, &arm.representations());
    let mut cfg = ctx
        .scale
        .build_config(EXPERIMENT_SEED ^ ((kind.index() as u64) << 8));
    cfg.variants = Some(variants);
    let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
    let builder = BuilderConfig::paper_main(&repo);
    TahomaSystem::initialize(
        repo,
        &tahoma_core::thresholds::PAPER_PRECISION_SETTINGS,
        &builder,
    )
}

/// Run the experiment. The Full arm reuses the context's main systems.
pub fn run(ctx: &ExperimentContext) -> Fig10 {
    let profiler = ExperimentContext::profiler_static(Scenario::Ongoing);
    let mut rows = Vec::with_capacity(ctx.runs.len());
    for run in &ctx.runs {
        let kind = run.pred.kind;
        let full_frontier = run.system.frontier(&profiler).acc_thr();
        // Paper: averages computed over the accuracy range of the Full
        // cascade *set* for each predicate.
        let full_min = run
            .system
            .outcomes
            .outcomes
            .iter()
            .map(|o| o.accuracy as f64)
            .fold(f64::INFINITY, f64::min);
        let full_max = run
            .system
            .outcomes
            .outcomes
            .iter()
            .map(|o| o.accuracy as f64)
            .fold(0.0, f64::max);
        let mut avg_fps = [0.0f64; 4];
        for (i, arm) in TransformSet::ALL.into_iter().enumerate() {
            let frontier = if arm == TransformSet::Full {
                full_frontier.clone()
            } else {
                arm_system(ctx, kind, arm).frontier(&profiler).acc_thr()
            };
            avg_fps[i] = alc::average_throughput(&frontier, full_min, full_max);
        }
        rows.push(Fig10Row { kind, avg_fps });
    }
    let mut mean_fps = [0.0f64; 4];
    for (i, slot) in mean_fps.iter_mut().enumerate() {
        *slot =
            rows.iter().map(|r: &Fig10Row| r.avg_fps[i]).sum::<f64>() / rows.len().max(1) as f64;
    }
    Fig10 { rows, mean_fps }
}

/// Render the paper-style summary.
pub fn render(r: &Fig10) -> String {
    let mut out = String::new();
    out.push_str("Figure 10 — average optimal-cascade throughput by transform family (ONGOING)\n");
    out.push_str("(paper expectation: Resizing ~10x over None; Full >= every subset)\n\n");
    let mut t = Table::new(vec![
        "predicate",
        "None",
        "Color Variations",
        "Resizing",
        "Full",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.kind.to_string(),
            format::fps(row.avg_fps[0]),
            format::fps(row.avg_fps[1]),
            format::fps(row.avg_fps[2]),
            format::fps(row.avg_fps[3]),
        ]);
    }
    t.row(vec![
        "MEAN".to_string(),
        format::fps(r.mean_fps[0]),
        format::fps(r.mean_fps[1]),
        format::fps(r.mean_fps[2]),
        format::fps(r.mean_fps[3]),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nResizing / None = {}; Full / None = {}\n",
        format::speedup(r.mean_fps[2] / r.mean_fps[0].max(1e-9)),
        format::speedup(r.mean_fps[3] / r.mean_fps[0].max(1e-9)),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resizing_dominates_the_ablation() {
        let ctx = crate::context::shared_quick_context();
        let r = run(ctx);
        assert_eq!(r.rows.len(), 10);
        let [none, color, resize, full] = r.mean_fps;
        assert!(
            resize > none * 3.0,
            "Resizing {resize:.0} should be several times None {none:.0}"
        );
        assert!(
            resize > color,
            "Resizing {resize:.0} should beat Color Variations {color:.0}"
        );
        assert!(
            full >= resize * 0.9,
            "Full {full:.0} should be at least on par with Resizing {resize:.0}"
        );
        assert!(render(&r).contains("Figure 10"));
    }
}

//! Table II: the ten binary predicates, with this reproduction's synthetic
//! substitution parameters alongside the paper's ImageNet provenance.

use crate::context::ExperimentContext;
use crate::format::{self, Table};
use tahoma_costmodel::Scenario;

/// One predicate row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Predicate name.
    pub name: &'static str,
    /// ImageNet synset id from the paper.
    pub imagenet_id: &'static str,
    /// Surrogate difficulty ceiling.
    pub d_max: f64,
    /// ResNet50 eval accuracy on this predicate.
    pub resnet_accuracy: f64,
    /// Best specialized-model eval accuracy.
    pub best_specialized_accuracy: f64,
}

/// Results for Table II.
pub struct Table2 {
    /// Ten rows in paper order.
    pub rows: Vec<Table2Row>,
}

/// Run the experiment.
pub fn run(ctx: &ExperimentContext) -> Table2 {
    let rows = ctx
        .runs
        .iter()
        .map(|run| {
            let repo = &run.system.repo;
            let resnet_accuracy = repo.eval_accuracy(repo.resnet.expect("resnet"));
            let best_specialized_accuracy = repo
                .specialized_ids()
                .into_iter()
                .map(|id| repo.eval_accuracy(id))
                .fold(0.0, f64::max);
            Table2Row {
                name: run.pred.kind.name(),
                imagenet_id: run.pred.kind.imagenet_id(),
                d_max: run.pred.d_max,
                resnet_accuracy,
                best_specialized_accuracy,
            }
        })
        .collect();
    Table2 { rows }
}

/// Render the paper-style summary.
pub fn render(r: &Table2, ctx: &ExperimentContext) -> String {
    let mut out = String::new();
    out.push_str(
        "Table II — binary predicates (ImageNet categories -> synthetic glyph classes)\n\n",
    );
    let mut t = Table::new(vec![
        "predicate",
        "imagenet id",
        "d_max",
        "resnet acc",
        "best specialized acc",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.name.to_string(),
            row.imagenet_id.to_string(),
            format!("{:.1}", row.d_max),
            format::acc(row.resnet_accuracy),
            format::acc(row.best_specialized_accuracy),
        ]);
    }
    out.push_str(&t.render());
    let run0 = &ctx.runs[0];
    out.push_str(&format!(
        "\nper predicate: {} models, {} cascades, config n={}, eval n={}\n",
        run0.system.repo.len(),
        run0.system.n_cascades(),
        run0.system.repo.config.len(),
        run0.system.repo.eval.len(),
    ));
    let _ = Scenario::ALL; // scenarios reported by the other experiments
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_table2() {
        let ctx = crate::context::shared_quick_context();
        let r = run(ctx);
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.rows[0].name, "acorn");
        assert_eq!(r.rows[6].name, "komondor");
        for row in &r.rows {
            assert!(row.imagenet_id.starts_with('n'));
            assert!(
                row.resnet_accuracy > 0.75,
                "{}: {}",
                row.name,
                row.resnet_accuracy
            );
            assert!(row.best_specialized_accuracy > 0.6);
        }
        assert!(render(&r, ctx).contains("Table II"));
    }
}

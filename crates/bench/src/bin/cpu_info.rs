//! CPU facts for CI logs and conditional bench steps.
//!
//! ```text
//! cpu_info            # human-readable: parallelism + detected SIMD tiers
//! cpu_info cores      # just the available_parallelism number (for shell)
//! ```
//!
//! The forced-tier CI matrix logs this on every run; the moment a
//! multi-core runner appears, the `cores` form gates the `gemm_threads`
//! scaling bench on it (the top ROADMAP measurement item).

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    if std::env::args().nth(1).as_deref() == Some("cores") {
        println!("{cores}");
        return;
    }
    println!("available_parallelism: {cores}");
    let nn_tiers: Vec<&str> = tahoma_nn::gemm::Kernel::available()
        .into_iter()
        .map(|k| k.name())
        .collect();
    let img_tiers: Vec<&str> = tahoma_imagery::engine::Kernel::available()
        .into_iter()
        .map(|k| k.name())
        .collect();
    println!("nn kernel tiers: {}", nn_tiers.join(", "));
    println!("imagery kernel tiers: {}", img_tiers.join(", "));
    println!(
        "kernel policy (global): {}",
        tahoma_mathx::simd_policy::global_policy()
            .serialize()
            .lines()
            .filter(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join(" ")
    );
}

//! `repro` — regenerate every table and figure from the paper's evaluation.
//!
//! ```text
//! repro [--quick] all
//! repro [--quick] fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 table2 table3 ablation
//! ```
//!
//! `--quick` runs a reduced model space (same shapes, seconds instead of
//! minutes). Output is plain text; `repro all` is what EXPERIMENTS.md
//! records.

use std::time::Instant;
use tahoma_bench::context::{ExperimentContext, Scale};
use tahoma_bench::experiments as exp;

const ALL_EXPERIMENTS: [&str; 11] = [
    "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table3",
    "ablation",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] <experiment>...\n  experiments: {} | all",
        ALL_EXPERIMENTS.join(" | ")
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    args.retain(|a| {
        if a == "--quick" {
            scale = Scale::Quick;
            false
        } else {
            true
        }
    });
    if args.is_empty() {
        usage();
    }
    let mut selected: Vec<&str> = Vec::new();
    for a in &args {
        match a.as_str() {
            "all" => selected.extend(ALL_EXPERIMENTS),
            name if ALL_EXPERIMENTS.contains(&name) => selected.push(name),
            other => {
                eprintln!("unknown experiment '{other}'");
                usage();
            }
        }
    }
    selected.dedup();

    println!(
        "TAHOMA reproduction harness — scale: {}",
        match scale {
            Scale::Paper => "paper (360 models, ~1.3M cascades per predicate)",
            Scale::Quick => "quick (reduced model space)",
        }
    );
    let t0 = Instant::now();
    println!("initializing systems for 10 predicates...");
    let ctx = ExperimentContext::build(scale);
    let total_cascades: usize = ctx.runs.iter().map(|r| r.system.n_cascades()).sum();
    println!(
        "initialized {} cascades across 10 predicates in {:.1}s\n",
        total_cascades,
        t0.elapsed().as_secs_f64()
    );

    for name in selected {
        let t = Instant::now();
        let output = match name {
            "table2" => exp::table2::render(&exp::table2::run(&ctx), &ctx),
            "fig4" => exp::fig4::render(&exp::fig4::run(&ctx)),
            "fig5" => exp::fig5::render(&exp::fig5::run(&ctx)),
            "fig6" => exp::fig6::render(&exp::fig6::run(&ctx)),
            "fig7" => exp::fig7::render(&exp::fig7::run(&ctx)),
            "fig8" => exp::fig8::render(&exp::fig8::run(&ctx)),
            "fig9" => exp::fig9::render(&exp::fig9::run(&ctx)),
            "fig10" => exp::fig10::render(&exp::fig10::run(&ctx)),
            "fig11" => exp::fig11::render(&exp::fig11::run(&ctx)),
            "table3" => exp::table3::render(&exp::table3::run(&ctx)),
            "ablation" => exp::ablation::render(&exp::ablation::run(&ctx)),
            _ => unreachable!("validated above"),
        };
        println!("{}", "=".repeat(78));
        print!("{output}");
        println!("[{name} completed in {:.1}s]\n", t.elapsed().as_secs_f64());
    }
    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}

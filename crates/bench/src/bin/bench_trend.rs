//! Bench-trend gate: compare criterion `--json` reports against a
//! committed baseline and fail on large regressions.
//!
//! ```text
//! bench_trend compare <baseline.json> <current.json>... [--max-ratio 2.0]
//! bench_trend merge <out.json> <in.json>...
//! ```
//!
//! `compare` matches benchmark ids between the baseline and the current
//! reports, prints a ratio table, and exits non-zero if any benchmark's
//! `sec_per_iter` exceeds `max-ratio` times its baseline (default 2.0 —
//! wide on purpose: CI runs the benches in `--quick` smoke mode, whose
//! medians are noisy, so the gate catches order-of-magnitude breakage like
//! a tier silently falling back to scalar, not percent-level drift).
//! Benchmarks present on only one side are reported but never fail the
//! gate (new benches land before their baseline; retired ones linger in
//! the baseline until it is regenerated).
//!
//! The JSON schema is the vendored criterion's `--json` output:
//! `[{"id": "...", "sec_per_iter": 1.2e-5, "iters_per_sample": 42}, ...]`.
//! Parsing is a purpose-built scanner for exactly that shape (the vendored
//! dependency set has no serde).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extract `(id, sec_per_iter)` pairs from a criterion `--json` report.
fn parse_entries(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find("{") {
        let obj_end = rest[start..].find('}').ok_or("unterminated object")? + start;
        let obj = &rest[start..=obj_end];
        let id = field_str(obj, "id").ok_or_else(|| format!("object without id: {obj}"))?;
        let sec = field_num(obj, "sec_per_iter")
            .ok_or_else(|| format!("object without sec_per_iter: {obj}"))?;
        out.push((id, sec));
        rest = &rest[obj_end + 1..];
    }
    Ok(out)
}

/// The string value of `"name": "..."` inside one JSON object (ids contain
/// no escapes beyond the two the writer produces).
fn field_str(obj: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\":");
    let after = &obj[obj.find(&key)? + key.len()..];
    let open = after.find('"')?;
    let mut value = String::new();
    let mut escape = false;
    for ch in after[open + 1..].chars() {
        match (escape, ch) {
            (true, c) => {
                value.push(c);
                escape = false;
            }
            (false, '\\') => escape = true,
            (false, '"') => return Some(value),
            (false, c) => value.push(c),
        }
    }
    None
}

/// The numeric value of `"name": <number>` inside one JSON object.
fn field_num(obj: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let after = obj[obj.find(&key)? + key.len()..].trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_entries(&text).map_err(|e| format!("{path}: {e}"))
}

fn fmt_time(sec: f64) -> String {
    if sec < 1e-6 {
        format!("{:.2} ns", sec * 1e9)
    } else if sec < 1e-3 {
        format!("{:.2} µs", sec * 1e6)
    } else {
        format!("{:.2} ms", sec * 1e3)
    }
}

fn compare(args: &[String]) -> Result<ExitCode, String> {
    let mut max_ratio = 2.0f64;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-ratio" {
            max_ratio = it
                .next()
                .ok_or("--max-ratio needs a value")?
                .parse()
                .map_err(|e| format!("bad --max-ratio: {e}"))?;
        } else {
            paths.push(a.clone());
        }
    }
    let [baseline_path, current_paths @ ..] = paths.as_slice() else {
        return Err("usage: bench_trend compare <baseline.json> <current.json>...".into());
    };
    if current_paths.is_empty() {
        return Err("compare needs at least one current report".into());
    }
    let baseline: BTreeMap<String, f64> = load(baseline_path)?.into_iter().collect();
    let mut current = BTreeMap::new();
    for p in current_paths {
        current.extend(load(p)?);
    }

    let mut regressions = 0usize;
    let mut missing_baseline = 0usize;
    println!(
        "{:<56} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "baseline", "current", "ratio"
    );
    for (id, &cur) in &current {
        match baseline.get(id) {
            Some(&base) if base > 0.0 => {
                let ratio = cur / base;
                let verdict = if ratio > max_ratio {
                    regressions += 1;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "{id:<56} {:>12} {:>12} {ratio:>7.2}x  {verdict}",
                    fmt_time(base),
                    fmt_time(cur)
                );
            }
            _ => {
                missing_baseline += 1;
                println!(
                    "{id:<56} {:>12} {:>12} {:>8}  new (no baseline)",
                    "-",
                    fmt_time(cur),
                    "-"
                );
            }
        }
    }
    for id in baseline.keys().filter(|id| !current.contains_key(*id)) {
        println!(
            "{id:<56} {:>12} {:>12} {:>8}  missing from current run",
            "-", "-", "-"
        );
    }
    println!(
        "\n{} benchmarks compared, {} new, {} regressed (gate: >{}x)",
        current.len() - missing_baseline,
        missing_baseline,
        regressions,
        max_ratio
    );
    Ok(if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn merge(args: &[String]) -> Result<ExitCode, String> {
    let [out_path, in_paths @ ..] = args else {
        return Err("usage: bench_trend merge <out.json> <in.json>...".into());
    };
    if in_paths.is_empty() {
        return Err("merge needs at least one input report".into());
    }
    // A true merge: seed from the existing output file (if any) so a
    // partial bench run updates only its own ids, then let the inputs
    // override matching ids in order. Previously this rewrote the output
    // from the inputs alone, so merging one bench's report silently
    // dropped every other benchmark from the baseline — disarming the
    // regression gate for all of them. To *prune* retired ids, delete the
    // baseline and re-merge a full run (what bench_trend.sh's
    // --update-baseline mode does). Only a missing output file counts as
    // "no baseline yet"; any other read error aborts rather than silently
    // starting from empty.
    let mut entries: BTreeMap<String, f64> = match std::fs::read_to_string(out_path) {
        Ok(text) => parse_entries(&text)
            .map_err(|e| format!("{out_path}: {e}"))?
            .into_iter()
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
        Err(e) => return Err(format!("cannot read {out_path}: {e}")),
    };
    for p in in_paths {
        entries.extend(load(p)?);
    }
    let mut out = String::from("[\n");
    for (i, (id, sec)) in entries.iter().enumerate() {
        let id = id.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "  {{\"id\": \"{id}\", \"sec_per_iter\": {sec:e}, \"iters_per_sample\": 0}}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    std::fs::write(out_path, out).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("merged {} entries into {out_path}", entries.len());
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) if cmd == "compare" => compare(rest),
        Some((cmd, rest)) if cmd == "merge" => merge(rest),
        _ => Err("usage: bench_trend <compare|merge> ...".into()),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Persistence smoke driver: ingest a deterministic corpus into the
//! segment store in one process, verify it byte-for-byte from another.
//!
//! ```text
//! store_persist_smoke ingest DIR [N]   # build a persistent store under DIR
//! store_persist_smoke verify DIR [N]   # reopen DIR, CRC-verify, compare
//! ```
//!
//! CI runs `ingest` and `verify` as two separate processes — a real
//! process drop between write and read — and runs `verify` twice, the
//! second time with `TAHOMA_STORE_NO_MMAP=1` so both read paths check the
//! same bytes. `verify` recomputes every expected blob from the same
//! deterministic frames (seeded by the id, independent of the store) and
//! exits non-zero on any divergence, missing record, or CRC failure.

use std::path::Path;
use std::process::exit;
use tahoma_imagery::{ColorMode, Image, Representation, RepresentationStore};

const SHARDS: usize = 4;
const DEFAULT_N: u64 = 512;

fn reps() -> Vec<Representation> {
    vec![
        Representation::new(24, ColorMode::Gray),
        Representation::new(32, ColorMode::Rgb),
    ]
}

fn frame(id: u64) -> Image {
    Image::from_fn(64, 64, ColorMode::Rgb, move |c, y, x| {
        let h = (x as u64 * 31 + y as u64 * 7 + c as u64 * 97 + id * 13) % 19;
        h as f32 / 18.0
    })
    .expect("valid dims")
}

fn usage() -> ! {
    eprintln!("usage: store_persist_smoke <ingest|verify> DIR [N]");
    exit(2);
}

fn ingest(dir: &Path, n: u64) {
    let store = RepresentationStore::persistent(reps(), dir, SHARDS).unwrap_or_else(|e| {
        eprintln!("create {}: {e}", dir.display());
        exit(1);
    });
    for id in 0..n {
        if let Err(e) = store.ingest(id, &frame(id)) {
            eprintln!("ingest id {id}: {e}");
            exit(1);
        }
    }
    if let Err(e) = store.sync() {
        eprintln!("sync: {e}");
        exit(1);
    }
    println!(
        "ingested {n} frames x {} reps = {} records, {} payload bytes, {SHARDS} shards",
        reps().len(),
        n * reps().len() as u64,
        store.total_bytes(),
    );
}

fn verify(dir: &Path, n: u64) {
    let (store, report) = RepresentationStore::open(dir).unwrap_or_else(|e| {
        eprintln!("open {}: {e}", dir.display());
        exit(1);
    });
    if report.truncated_bytes != 0 {
        eprintln!(
            "recovery truncated {} bytes of a clean store",
            report.truncated_bytes
        );
        exit(1);
    }
    if store.frames() != n {
        eprintln!("expected {n} frames, recovered {}", store.frames());
        exit(1);
    }
    let verified = store.verify().unwrap_or_else(|e| {
        eprintln!("CRC verify: {e}");
        exit(1);
    });
    let expected_records = n * reps().len() as u64;
    if verified != expected_records {
        eprintln!("expected {expected_records} records, CRC-verified {verified}");
        exit(1);
    }
    // Recompute every blob from the deterministic frames and compare
    // byte-for-byte with what the store serves.
    let mut mismatches = 0u64;
    let reference = RepresentationStore::new(reps());
    for id in 0..n {
        reference.ingest(id, &frame(id)).expect("reference ingest");
        for &rep in &reps() {
            let want = reference
                .with_blob(id, rep, |b| b.to_vec())
                .expect("ram blob")
                .expect("just ingested");
            let same = store
                .with_blob(id, rep, |b| b == want.as_slice())
                .unwrap_or_else(|e| {
                    eprintln!("read id {id} rep {rep}: {e}");
                    exit(1);
                });
            match same {
                Some(true) => {}
                Some(false) => {
                    eprintln!("byte mismatch at id {id} rep {rep}");
                    mismatches += 1;
                }
                None => {
                    eprintln!("missing record id {id} rep {rep}");
                    mismatches += 1;
                }
            }
        }
    }
    if mismatches > 0 {
        eprintln!("{mismatches} records diverged");
        exit(1);
    }
    println!(
        "verified {verified} records byte-identical across {} shards (mode from env: mmap {})",
        SHARDS,
        if std::env::var_os("TAHOMA_STORE_NO_MMAP").is_some() {
            "disabled"
        } else {
            "auto"
        },
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, dir) = match (args.get(1), args.get(2)) {
        (Some(c), Some(d)) => (c.as_str(), Path::new(d)),
        _ => usage(),
    };
    let n = match args.get(3) {
        Some(v) => v.parse().unwrap_or_else(|_| usage()),
        None => DEFAULT_N,
    };
    match cmd {
        "ingest" => ingest(dir, n),
        "verify" => verify(dir, n),
        _ => usage(),
    }
}

//! Shared experiment context: initialized TAHOMA systems for all ten
//! predicates, built once and reused across figures.

use std::collections::BTreeMap;
use std::time::Instant;
use tahoma_core::pipeline::TahomaSystem;
use tahoma_core::Cascade;
use tahoma_costmodel::{AnalyticProfiler, DeviceProfile, Scenario};
use tahoma_imagery::{ColorMode, ObjectKind};
use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
use tahoma_zoo::{ModelKind, PredicateSpec};

/// Root seed for all experiments (one seed, fully reproducible runs).
pub const EXPERIMENT_SEED: u64 = 0x7A08_2019;

/// Experiment scale: paper-faithful or quick (CI-sized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full 360-model space, 1000-image eval split, ~1.3 M cascades.
    Paper,
    /// Every 6th model, smaller splits — same shapes, seconds to run.
    Quick,
}

impl Scale {
    /// Repository build configuration at this scale.
    pub fn build_config(self, seed: u64) -> SurrogateBuildConfig {
        match self {
            Scale::Paper => SurrogateBuildConfig {
                n_config: 400,
                n_eval: 1000,
                seed,
                ..Default::default()
            },
            Scale::Quick => SurrogateBuildConfig {
                n_config: 250,
                n_eval: 400,
                seed,
                // Stride 7 is coprime with the 20 representations per
                // architecture block, so every representation class (incl.
                // the Baseline's 224x224 RGB) stays covered.
                variants: Some(
                    tahoma_zoo::variant::paper_variants()
                        .into_iter()
                        .step_by(7)
                        .collect(),
                ),
                ..Default::default()
            },
        }
    }

    /// Frames per video stream in the NoScope comparison.
    pub fn stream_frames(self) -> usize {
        match self {
            Scale::Paper => 90_000,
            Scale::Quick => 9_000,
        }
    }
}

/// One predicate's initialized system plus bookkeeping.
pub struct PredicateRun {
    /// The predicate.
    pub pred: PredicateSpec,
    /// Initialized system (thresholds calibrated, cascades simulated).
    pub system: TahomaSystem,
    /// Wall-clock seconds spent simulating the cascade set.
    pub init_seconds: f64,
}

/// Context shared by the experiments.
pub struct ExperimentContext {
    /// Scale used.
    pub scale: Scale,
    /// One run per Table II predicate, in Table II order.
    pub runs: Vec<PredicateRun>,
}

impl ExperimentContext {
    /// Build systems for all ten predicates.
    pub fn build(scale: Scale) -> ExperimentContext {
        let device = DeviceProfile::k80();
        let mut runs = Vec::with_capacity(10);
        for (i, pred) in PredicateSpec::all_paper().into_iter().enumerate() {
            let cfg = scale.build_config(EXPERIMENT_SEED ^ ((i as u64) << 8));
            let repo = build_surrogate_repository(pred, &cfg, &device);
            let t0 = Instant::now();
            let system = TahomaSystem::initialize_paper_main(repo);
            runs.push(PredicateRun {
                pred,
                system,
                init_seconds: t0.elapsed().as_secs_f64(),
            });
        }
        ExperimentContext { scale, runs }
    }

    /// Run lookup by kind.
    pub fn run(&self, kind: ObjectKind) -> &PredicateRun {
        self.runs
            .iter()
            .find(|r| r.pred.kind == kind)
            .expect("all ten predicates built")
    }

    /// The analytic profiler for a scenario on the paper's testbed.
    pub fn profiler(&self, scenario: Scenario) -> AnalyticProfiler {
        AnalyticProfiler::paper_testbed(scenario)
    }

    /// Same, without needing an instance (scenario pricing is global).
    pub fn profiler_static(scenario: Scenario) -> AnalyticProfiler {
        AnalyticProfiler::paper_testbed(scenario)
    }
}

/// The Baseline cascade set of §VII-B: two-level cascades that use
/// full-color 224x224 inputs and terminate in ResNet50 (the design of prior
/// CNN-cascade work), plus ResNet50 alone.
pub fn baseline_cascades(run: &PredicateRun) -> Vec<Cascade> {
    let repo = &run.system.repo;
    let resnet = repo
        .resnet
        .expect("surrogate repositories include resnet")
        .0 as u16;
    let full_color = tahoma_imagery::Representation::new(224, ColorMode::Rgb);
    let mut out = Vec::new();
    out.push(Cascade::single(resnet));
    let n_settings = run.system.thresholds.n_settings() as u8;
    for e in &repo.entries {
        if matches!(e.variant.kind, ModelKind::Cnn(_)) && e.variant.input == full_color {
            for s in 0..n_settings {
                out.push(Cascade::new(&[(e.variant.id.0 as u16, s), (resnet, 0)]));
            }
        }
    }
    out
}

/// Simulate an ad-hoc cascade list on a run's decision tables and price it
/// under a scenario, returning (accuracy, throughput) points.
pub fn priced_points_for(
    run: &PredicateRun,
    cascades: Vec<Cascade>,
    scenario: Scenario,
) -> Vec<(f64, f64)> {
    let outcomes = tahoma_core::evaluator::simulate_all(&run.system.tables, cascades);
    let profiler = AnalyticProfiler::paper_testbed(scenario);
    let ctx = tahoma_core::evaluator::CostContext::build(&run.system.repo, &profiler);
    outcomes
        .cascades
        .iter()
        .zip(&outcomes.outcomes)
        .map(|(c, o)| {
            (
                o.accuracy as f64,
                ctx.throughput_fps(c, o, outcomes.n_images),
            )
        })
        .collect()
}

/// ResNet50's standalone (accuracy, throughput) under a scenario.
pub fn resnet_point(run: &PredicateRun, scenario: Scenario) -> (f64, f64) {
    let repo = &run.system.repo;
    let resnet = repo.resnet.expect("resnet present");
    let acc = repo.eval_accuracy(resnet);
    let profiler = AnalyticProfiler::paper_testbed(scenario);
    let entry = repo.entry(resnet);
    let cost = profiler.standalone_cost_s(entry.variant.input, entry.infer_s);
    (acc, 1.0 / cost)
}

/// Helper extension: total per-image cost of a standalone model under a
/// profiler (fixed + its representation + inference).
trait StandaloneCost {
    fn standalone_cost_s(&self, rep: tahoma_imagery::Representation, infer_s: f64) -> f64;
}

impl StandaloneCost for AnalyticProfiler {
    fn standalone_cost_s(&self, rep: tahoma_imagery::Representation, infer_s: f64) -> f64 {
        use tahoma_costmodel::CostProfiler;
        self.per_image_fixed_s() + self.rep_marginal_s(rep) + infer_s
    }
}

/// Per-scenario label -> points map used by several experiments.
pub type ScenarioPoints = BTreeMap<Scenario, Vec<(f64, f64)>>;

/// Quick-scale context shared by this crate's tests (building ten systems
/// is the dominant test cost; do it once per process).
pub fn shared_quick_context() -> &'static ExperimentContext {
    use std::sync::OnceLock;
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(Scale::Quick))
}

/// Accuracy range `[min, max]` of a full point set (the paper integrates
/// ALC over full-set ranges, not frontier ranges).
pub fn accuracy_range(points: &[(f64, f64)]) -> (f64, f64) {
    let lo = points.iter().map(|(a, _)| *a).fold(f64::INFINITY, f64::min);
    let hi = points
        .iter()
        .map(|(a, _)| *a)
        .fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

/// Intersection of two accuracy ranges, widened to the narrower set's span
/// when the strict intersection is degenerate (single-point baselines).
pub fn intersect_ranges(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    if lo < hi {
        (lo, hi)
    } else {
        // Degenerate: fall back to the union's span so ALC stays defined.
        (a.0.min(b.0), a.1.max(b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds_all_predicates() {
        let ctx = shared_quick_context();
        assert_eq!(ctx.runs.len(), 10);
        for run in &ctx.runs {
            assert!(run.system.n_cascades() > 1000);
        }
        // Lookup works for every Table II kind.
        for kind in ObjectKind::ALL {
            assert_eq!(ctx.run(kind).pred.kind, kind);
        }
    }

    #[test]
    fn baseline_is_a_small_full_color_set() {
        let ctx = shared_quick_context();
        let run = &ctx.runs[0];
        let baseline = baseline_cascades(run);
        // Quick scale: 360/6 = 60 models, of which those with 224rgb input;
        // at minimum resnet-alone is present.
        assert!(!baseline.is_empty());
        assert!(baseline.len() < 100);
        // All multi-level baselines end in resnet.
        let resnet = run.system.repo.resnet.unwrap().0 as u16;
        for c in &baseline {
            if c.depth() == 2 {
                assert_eq!(c.model_at(1), resnet);
            }
        }
    }

    #[test]
    fn resnet_point_matches_anchor_in_infer_only() {
        let ctx = shared_quick_context();
        let (acc, fps) = resnet_point(&ctx.runs[0], Scenario::InferOnly);
        assert!((70.0..80.0).contains(&fps), "{fps}");
        assert!(acc > 0.8);
    }
}

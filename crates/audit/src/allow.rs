//! `audit-allow.toml` parsing and matching.
//!
//! The audit is deny-by-default: the only sanctioned escape hatch is an
//! entry here, and every entry must say *why*. The format is a restricted
//! TOML subset (array-of-tables with string values only) parsed by hand —
//! the build box is offline, so no `toml` crate:
//!
//! ```toml
//! [[allow]]
//! file = "crates/serve/src/fixture.rs"
//! lint = "A4"
//! # optional: only lines containing the needle are excused
//! needle = "expect(\"valid spec\")"
//! reason = "fixture construction runs once at startup, not on the hot path"
//! ```
//!
//! Unused entries are themselves violations (`A0`): a stale exception is
//! a hole in the fence, and the audit run that no longer needs it must
//! delete it.

use crate::lints::Violation;

/// One exception: `lint` violations in `file` (optionally narrowed to
/// lines containing `needle`) are excused for `reason`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub file: String,
    pub lint: String,
    pub needle: Option<String>,
    pub reason: String,
    /// Source line of the entry header in `audit-allow.toml`.
    pub line: u32,
}

/// Parsed allowlist.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the restricted-TOML allowlist. Errors are strings with line
    /// context — a malformed allowlist must fail the audit loudly, not
    /// silently excuse everything.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        struct Partial {
            file: Option<String>,
            lint: Option<String>,
            needle: Option<String>,
            reason: Option<String>,
            line: u32,
        }
        let mut entries = Vec::new();
        let mut cur: Option<Partial> = None;
        let finish = |p: Partial, entries: &mut Vec<AllowEntry>| -> Result<(), String> {
            let file = p
                .file
                .ok_or(format!("allow entry at line {} missing `file`", p.line))?;
            let lint = p
                .lint
                .ok_or(format!("allow entry at line {} missing `lint`", p.line))?;
            let reason = p
                .reason
                .ok_or(format!("allow entry at line {} missing `reason`", p.line))?;
            if reason.trim().is_empty() {
                return Err(format!(
                    "allow entry at line {} has an empty reason",
                    p.line
                ));
            }
            entries.push(AllowEntry {
                file,
                lint,
                needle: p.needle,
                reason,
                line: p.line,
            });
            Ok(())
        };
        for (i, raw) in text.lines().enumerate() {
            let lineno = i as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(p) = cur.take() {
                    finish(p, &mut entries)?;
                }
                cur = Some(Partial {
                    file: None,
                    lint: None,
                    needle: None,
                    reason: None,
                    line: lineno,
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = \"value\"`, got `{line}`"
                ));
            };
            let key = key.trim();
            let value = parse_string(value.trim()).ok_or(format!(
                "line {lineno}: value for `{key}` must be a quoted string"
            ))?;
            let Some(p) = cur.as_mut() else {
                return Err(format!("line {lineno}: `{key}` outside an [[allow]] entry"));
            };
            let slot = match key {
                "file" => &mut p.file,
                "lint" => &mut p.lint,
                "needle" => &mut p.needle,
                "reason" => &mut p.reason,
                _ => return Err(format!("line {lineno}: unknown key `{key}`")),
            };
            if slot.is_some() {
                return Err(format!("line {lineno}: duplicate key `{key}`"));
            }
            *slot = Some(value);
        }
        if let Some(p) = cur.take() {
            finish(p, &mut entries)?;
        }
        Ok(Allowlist { entries })
    }

    /// Split `violations` into (remaining, allowed_count) and report which
    /// entries went unused.
    pub fn apply(&self, violations: Vec<Violation>) -> (Vec<Violation>, usize, Vec<&AllowEntry>) {
        let mut used = vec![false; self.entries.len()];
        let mut remaining = Vec::new();
        let mut allowed = 0usize;
        for v in violations {
            let hit = self.entries.iter().enumerate().find(|(_, e)| {
                e.lint == v.lint
                    && e.file == v.file
                    && e.needle
                        .as_deref()
                        .is_none_or(|n| v.excerpt.contains(n) || v.message.contains(n))
            });
            match hit {
                Some((idx, _)) => {
                    used[idx] = true;
                    allowed += 1;
                }
                None => remaining.push(v),
            }
        }
        let unused = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e)
            .collect();
        (remaining, allowed, unused)
    }
}

/// Parse a double-quoted TOML string with `\"` / `\\` escapes.
fn parse_string(v: &str) -> Option<String> {
    // Strip a trailing comment only if it appears after the closing quote.
    let v = v.trim();
    let rest = v.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            },
            '"' => {
                let tail = chars.as_str().trim();
                if tail.is_empty() || tail.starts_with('#') {
                    return Some(out);
                }
                return None;
            }
            _ => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_rejects_missing_reason() {
        let ok = Allowlist::parse(
            "# comment\n[[allow]]\nfile = \"a/src/lib.rs\"\nlint = \"A4\"\nreason = \"why\"\n",
        )
        .unwrap();
        assert_eq!(ok.entries.len(), 1);
        assert!(ok.entries[0].needle.is_none());

        let missing = Allowlist::parse("[[allow]]\nfile = \"x\"\nlint = \"A1\"\n");
        assert!(missing.is_err());
        let empty = Allowlist::parse("[[allow]]\nfile = \"x\"\nlint = \"A1\"\nreason = \"  \"\n");
        assert!(empty.is_err());
    }

    #[test]
    fn needle_narrows_and_unused_entries_surface() {
        let list = Allowlist::parse(
            "[[allow]]\nfile = \"f.rs\"\nlint = \"A4\"\nneedle = \"expect\"\nreason = \"r\"\n\
             [[allow]]\nfile = \"g.rs\"\nlint = \"A1\"\nreason = \"r\"\n",
        )
        .unwrap();
        let v = |file: &str, excerpt: &str| Violation {
            lint: "A4",
            file: file.to_string(),
            line: 1,
            message: String::new(),
            excerpt: excerpt.to_string(),
        };
        let (rest, allowed, unused) =
            list.apply(vec![v("f.rs", "x.expect(\"y\")"), v("f.rs", "x.unwrap()")]);
        assert_eq!((rest.len(), allowed, unused.len()), (1, 1, 1));
        assert_eq!(unused[0].file, "g.rs");
    }
}

//! Minimal Rust lexer: just enough token structure for the audit lints.
//!
//! No `syn` (the build box is offline), so this is a hand-rolled scanner
//! that classifies source text into identifiers, punctuation, and opaque
//! literal/comment blobs. The invariants the lints lean on:
//!
//! * nothing inside a string, char, raw-string, or comment ever becomes a
//!   code token (so `"unsafe"` in a message never trips A1);
//! * comments are captured separately with their line span and doc-ness
//!   (`///`/`//!`/`/**` are doc, `//`/`/*` are not — the SAFETY rules
//!   treat the two differently);
//! * every token carries its 1-based source line.
//!
//! Number lexing deliberately consumes `.` only when a digit follows, so a
//! tuple-index method chain like `c.0.add(x)` still yields the `.`/`add`
//! tokens the raw-pointer lint (A5) looks for.

/// Token classes the lints distinguish. Literal payloads are dropped —
/// no lint looks inside a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are normalized: `r#fn` → `fn`).
    Ident(String),
    /// Single punctuation character (multi-char operators arrive as
    /// consecutive tokens).
    Punct(char),
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte-char literal.
    CharLit,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
}

/// One comment with its line span and doc-ness; `text` keeps the comment
/// markers (`//`, `/*`) so callers can pattern-match the raw shape.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Line the comment starts on.
    pub line: u32,
    /// Line the comment ends on (== `line` for `//` comments).
    pub end_line: u32,
    /// True for `///`, `//!`, `/**`, `/*!` (rustdoc) comments.
    pub doc: bool,
    pub text: String,
}

/// Lexer output: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// Total line count of the file.
    pub n_lines: u32,
}

impl Lexed {
    /// Convenience: the identifier text of token `i`, if it is one.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s),
            _ => None,
        }
    }

    /// True when token `i` is the punctuation `c`.
    pub fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
    }
}

/// Lex `src`. Unterminated literals/comments are tolerated (they swallow
/// the rest of the file) — the audit runs on code that already compiles,
/// so this only matters for fuzzed inputs, where "no panic" is the bar.
pub fn lex(src: &str) -> Lexed {
    let c: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < c.len() {
        let ch = c[i];
        match ch {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if peek(&c, i + 1) == Some('/') => {
                let mut j = i;
                while j < c.len() && c[j] != '\n' {
                    j += 1;
                }
                let text: String = c[i..j].iter().collect();
                let doc = (text.starts_with("///") && !text.starts_with("////"))
                    || text.starts_with("//!");
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    doc,
                    text,
                });
                i = j;
            }
            '/' if peek(&c, i + 1) == Some('*') => {
                let start_line = line;
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < c.len() && depth > 0 {
                    if c[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if c[j] == '/' && peek(&c, j + 1) == Some('*') {
                        depth += 1;
                        j += 2;
                    } else if c[j] == '*' && peek(&c, j + 1) == Some('/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let text: String = c[i..j.min(c.len())].iter().collect();
                let doc = (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
                    || text.starts_with("/*!");
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    doc,
                    text,
                });
                i = j;
            }
            '"' => {
                let start_line = line;
                i = scan_string(&c, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    line: start_line,
                });
            }
            '\'' => {
                let start_line = line;
                if peek(&c, i + 1) == Some('\\') {
                    // Escaped char literal: skip to the closing quote.
                    let mut j = i + 2;
                    while j < c.len() {
                        match c[j] {
                            '\\' => j += 2,
                            '\'' => {
                                j += 1;
                                break;
                            }
                            '\n' => {
                                line += 1;
                                j += 1;
                            }
                            _ => j += 1,
                        }
                    }
                    i = j;
                    out.toks.push(Tok {
                        kind: TokKind::CharLit,
                        line: start_line,
                    });
                } else if peek(&c, i + 2) == Some('\'') && peek(&c, i + 1) != Some('\'') {
                    // Plain 'x' char literal.
                    i += 3;
                    out.toks.push(Tok {
                        kind: TokKind::CharLit,
                        line: start_line,
                    });
                } else {
                    // Lifetime or loop label.
                    let mut j = i + 1;
                    while j < c.len() && (c[j] == '_' || c[j].is_alphanumeric()) {
                        j += 1;
                    }
                    i = j;
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        line: start_line,
                    });
                }
            }
            _ if ch == '_' || ch.is_alphabetic() => {
                let mut j = i + 1;
                while j < c.len() && (c[j] == '_' || c[j].is_alphanumeric()) {
                    j += 1;
                }
                let word: String = c[i..j].iter().collect();
                i = lex_after_word(&c, j, &word, line, &mut out, &mut |l| line = l);
                // `lex_after_word` may have consumed a literal; `line` was
                // updated through the closure when it crossed newlines.
            }
            _ if ch.is_ascii_digit() => {
                let start_line = line;
                let mut j = i + 1;
                loop {
                    match peek(&c, j) {
                        Some(d) if d == '_' || d.is_ascii_alphanumeric() => j += 1,
                        Some('.') if peek(&c, j + 1).is_some_and(|n| n.is_ascii_digit()) => {
                            j += 2;
                        }
                        _ => break,
                    }
                }
                i = j;
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    line: start_line,
                });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct(ch),
                    line,
                });
                i += 1;
            }
        }
    }
    out.n_lines = line;
    out
}

fn peek(c: &[char], i: usize) -> Option<char> {
    c.get(i).copied()
}

/// A word was just lexed ending at index `j`; decide whether it is a
/// string-literal prefix (`r`, `b`, `br`, `c`, `cr`), a raw identifier
/// (`r#name`), a byte-char prefix (`b'x'`), or a plain identifier.
/// Returns the index to continue from; pushes the token(s) produced.
fn lex_after_word(
    c: &[char],
    j: usize,
    word: &str,
    line: u32,
    out: &mut Lexed,
    set_line: &mut dyn FnMut(u32),
) -> usize {
    let raw_capable = matches!(word, "r" | "br" | "cr");
    match (word, peek(c, j)) {
        // Plain string with escapes after a `b`/`c` prefix.
        ("b" | "c", Some('"')) => {
            let mut l = line;
            let next = scan_string(c, j, &mut l);
            set_line(l);
            out.toks.push(Tok {
                kind: TokKind::Str,
                line,
            });
            next
        }
        // Byte-char literal `b'x'` / `b'\n'`.
        ("b", Some('\'')) => {
            let mut k = j + 1;
            while k < c.len() {
                match c[k] {
                    '\\' => k += 2,
                    '\'' => {
                        k += 1;
                        break;
                    }
                    _ => k += 1,
                }
            }
            out.toks.push(Tok {
                kind: TokKind::CharLit,
                line,
            });
            k
        }
        // Raw string (`r"…"`, `r#"…"#`, `br#"…"#`, …).
        (_, Some('"')) if raw_capable => scan_raw_string(c, j, 0, line, out, set_line),
        (_, Some('#')) if raw_capable => {
            let mut hashes = 0usize;
            let mut k = j;
            while peek(c, k) == Some('#') {
                hashes += 1;
                k += 1;
            }
            if peek(c, k) == Some('"') {
                scan_raw_string(c, k, hashes, line, out, set_line)
            } else if word == "r" {
                // Raw identifier `r#name`: normalize to `name`.
                let mut e = j + 1;
                while e < c.len() && (c[e] == '_' || c[e].is_alphanumeric()) {
                    e += 1;
                }
                let name: String = c[j + 1..e].iter().collect();
                out.toks.push(Tok {
                    kind: TokKind::Ident(name),
                    line,
                });
                e
            } else {
                out.toks.push(Tok {
                    kind: TokKind::Ident(word.to_string()),
                    line,
                });
                j
            }
        }
        _ => {
            out.toks.push(Tok {
                kind: TokKind::Ident(word.to_string()),
                line,
            });
            j
        }
    }
}

/// Scan a `"…"` string with escapes starting at the opening quote index;
/// returns the index past the closing quote and updates `line`.
fn scan_string(c: &[char], start: usize, line: &mut u32) -> usize {
    let mut j = start + 1;
    while j < c.len() {
        match c[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Scan a raw string whose opening quote is at `quote` with `hashes`
/// leading `#`s; pushes the `Str` token and returns the index past the
/// closing delimiter.
fn scan_raw_string(
    c: &[char],
    quote: usize,
    hashes: usize,
    line: u32,
    out: &mut Lexed,
    set_line: &mut dyn FnMut(u32),
) -> usize {
    let mut l = line;
    let mut j = quote + 1;
    'outer: while j < c.len() {
        if c[j] == '\n' {
            l += 1;
            j += 1;
            continue;
        }
        if c[j] == '"' {
            for k in 0..hashes {
                if peek(c, j + 1 + k) != Some('#') {
                    j += 1;
                    continue 'outer;
                }
            }
            j += 1 + hashes;
            break;
        }
        j += 1;
    }
    set_line(l);
    out.toks.push(Tok {
        kind: TokKind::Str,
        line,
    });
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            let a = "unsafe { }"; // unsafe in comment
            /* unsafe block comment */
            let b = r#"partial_cmp().unwrap()"#;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "unsafe"));
        assert!(!ids.iter().any(|s| s == "partial_cmp"));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn tuple_index_chain_keeps_method_tokens() {
        let lx = lex("c.0.add(1)");
        let kinds: Vec<&TokKind> = lx.toks.iter().map(|t| &t.kind).collect();
        assert!(kinds.contains(&&TokKind::Ident("add".to_string())));
        // The number stops before `.add` — exactly one Num token.
        assert_eq!(
            kinds.iter().filter(|k| ***k == TokKind::Num).count(),
            2 // `0` and `1`
        );
    }

    #[test]
    fn float_literal_is_one_token() {
        let lx = lex("let x = 1.5e3f64;");
        assert_eq!(lx.toks.iter().filter(|t| t.kind == TokKind::Num).count(), 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lx = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let d = '\\n'; }");
        let lifetimes = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .count();
        assert_eq!((lifetimes, chars), (2, 2));
    }

    #[test]
    fn doc_vs_plain_comments() {
        let src = "/// doc\n//! inner doc\n// plain\n//// not doc\nfn f() {}\n";
        let lx = lex(src);
        let docs: Vec<bool> = lx.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, false]);
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(lx.comments.len(), 1);
        assert_eq!(idents("/* /* */ unsafe */ ok"), vec!["ok"]);
    }

    #[test]
    fn raw_identifier_normalizes() {
        assert_eq!(idents("let r#fn = 1;"), vec!["let", "fn"]);
    }
}

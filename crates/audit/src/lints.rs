//! The audit rules (A1–A7), implemented over [`crate::lexer`] token
//! streams. Deny by default: every rule reports a [`Violation`] unless the
//! code carries the required annotation; exceptions live in
//! `audit-allow.toml`, never here.
//!
//! | lint | invariant |
//! |------|-----------|
//! | A1 | every `unsafe` site is preceded by a `// SAFETY:` comment (or a `# Safety` doc section) |
//! | A2 | every crate containing `unsafe` declares `#![deny(unsafe_op_in_unsafe_fn)]` in its root |
//! | A3 | no `partial_cmp(..).unwrap()/.expect(..)` outside `core::order` |
//! | A4 | no `unwrap()/expect()` in `serve/src` or `core::exec` hot paths |
//! | A5 | raw-pointer ops confined to the audited kernel/storage files |
//! | A6 | `Mutex` fields in `serve` and the representation/segment stores carry `// LOCK-ORDER: n` ranks, and locks are acquired in ascending rank |
//! | A7 | fault-injection sites (`tahoma_faults` uses) confined to the allowlisted failure-surface modules, each marked with a `// FAULT:` comment |
//!
//! Everything here is heuristic token matching, tuned to this workspace's
//! idioms (see `SAFETY.md`); the integration tests pin the behavior on
//! fixture sources with seeded violations.

use crate::lexer::{lex, Comment, Lexed, TokKind};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One lint finding, pointing at a file line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Lint id (`A1`…`A7`, or `A0` for stale allowlist entries).
    pub lint: &'static str,
    /// Forward-slash path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// Trimmed source line text (what allowlist needles match against).
    pub excerpt: String,
}

/// The files allowed to contain raw-pointer arithmetic (A5): the four
/// SIMD kernel files plus the segment store's mmap wrapper, whose SAFETY
/// contracts are documented in `SAFETY.md`.
pub const KERNEL_FILES: [&str; 5] = [
    "crates/nn/src/gemm.rs",
    "crates/nn/src/kernels.rs",
    "crates/imagery/src/engine.rs",
    "crates/imagery/src/segment.rs",
    "crates/mathx/src/pool.rs",
];

/// File exempt from A3: the workspace's single home for NaN-aware
/// ordering, where `partial_cmp` unwraps are the point under test.
pub const ORDER_FILE: &str = "crates/core/src/order.rs";

/// The modules allowed to host fault-injection sites (A7): the serving
/// stack's deliberate failure surface — segment/representation storage,
/// the coalescing broker, the wire protocol edge, and the standing-query
/// ticker. Each site's contract is documented in `RELIABILITY.md`.
pub const FAULT_MODULES: [&str; 5] = [
    "crates/imagery/src/segment.rs",
    "crates/imagery/src/store.rs",
    "crates/serve/src/broker.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/stream.rs",
];

/// Per-file context shared by the rules.
struct FileCtx {
    rel: String,
    lines: Vec<String>,
    lx: Lexed,
    /// Lines whose only code tokens belong to attributes.
    attr_lines: HashSet<u32>,
    /// Lines holding at least one non-attribute code token.
    code_lines: HashSet<u32>,
    /// Token-index ranges inside `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(usize, usize)>,
    /// Paren/bracket/brace depth *before* each token.
    paren_depth: Vec<u32>,
}

impl FileCtx {
    fn new(rel: String, src: &str) -> FileCtx {
        let lx = lex(src);
        let lines: Vec<String> = src.lines().map(|l| l.trim().to_string()).collect();

        // Attribute token ranges: `#` (`!`)? `[` … matching `]`.
        let mut attr_ranges: Vec<(usize, usize)> = Vec::new();
        let mut i = 0usize;
        while i < lx.toks.len() {
            if lx.punct(i, '#') {
                let mut j = i + 1;
                if lx.punct(j, '!') {
                    j += 1;
                }
                if lx.punct(j, '[') {
                    let mut depth = 0i32;
                    let mut k = j;
                    while k < lx.toks.len() {
                        match lx.toks[k].kind {
                            TokKind::Punct('[') => depth += 1,
                            TokKind::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    attr_ranges.push((i, k.min(lx.toks.len().saturating_sub(1))));
                    i = k + 1;
                    continue;
                }
            }
            i += 1;
        }

        let in_attr = |idx: usize| attr_ranges.iter().any(|&(a, b)| idx >= a && idx <= b);

        let mut attr_token_lines: HashSet<u32> = HashSet::new();
        let mut code_lines: HashSet<u32> = HashSet::new();
        for (idx, t) in lx.toks.iter().enumerate() {
            if in_attr(idx) {
                attr_token_lines.insert(t.line);
            } else {
                code_lines.insert(t.line);
            }
        }
        let attr_lines: HashSet<u32> = attr_token_lines.difference(&code_lines).copied().collect();

        // Test ranges: a `#[test]`-carrying or `#[cfg(test)]`-carrying
        // attribute gates the item that follows it (to its closing brace).
        let mut test_ranges: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in &attr_ranges {
            let mut has_test = false;
            for idx in a..=b {
                if lx.ident(idx) == Some("test") {
                    has_test = true;
                }
            }
            if !has_test {
                continue;
            }
            // Find the item body: first `{` after the attribute, unless a
            // `;` ends the item first (e.g. `#[cfg(test)] use x;`).
            let mut k = b + 1;
            let mut open = None;
            while k < lx.toks.len() {
                match lx.toks[k].kind {
                    TokKind::Punct(';') => break,
                    TokKind::Punct('{') => {
                        open = Some(k);
                        break;
                    }
                    _ => k += 1,
                }
            }
            if let Some(open) = open {
                let mut depth = 0i32;
                let mut k = open;
                while k < lx.toks.len() {
                    match lx.toks[k].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                test_ranges.push((a, k));
            }
        }

        let mut paren_depth = Vec::with_capacity(lx.toks.len());
        let mut pd = 0u32;
        for t in &lx.toks {
            paren_depth.push(pd);
            match t.kind {
                TokKind::Punct('(') => pd += 1,
                TokKind::Punct(')') => pd = pd.saturating_sub(1),
                _ => {}
            }
        }

        FileCtx {
            rel,
            lines,
            lx,
            attr_lines,
            code_lines,
            test_ranges,
            paren_depth,
        }
    }

    fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .cloned()
            .unwrap_or_default()
    }

    fn violation(&self, lint: &'static str, line: u32, message: String) -> Violation {
        Violation {
            lint,
            file: self.rel.clone(),
            line,
            message,
            excerpt: self.excerpt(line),
        }
    }

    /// Comments starting on or spanning `line`.
    fn comments_touching(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.lx
            .comments
            .iter()
            .filter(move |c| c.line <= line && line <= c.end_line)
    }
}

/// A doc comment satisfies the SAFETY rule via a rustdoc `# Safety`
/// section; a plain comment via a literal `SAFETY:` marker.
fn is_safety_comment(c: &Comment) -> bool {
    if c.doc {
        c.text.contains("# Safety")
    } else {
        c.text.contains("SAFETY:")
    }
}

/// A1: every `unsafe` token must have a SAFETY comment above it. The
/// upward scan tolerates blank/comment/attribute lines, earlier lines of
/// the *same statement* (an `unsafe` expression wrapped by rustfmt), and
/// lines whose own `unsafe` is already covered — so one comment may cover
/// a tight run of adjacent unsafe statements (paired lane loads, the
/// `Send`/`Sync` impls of one wrapper type), but never reaches across
/// unrelated code.
fn a1_safety_comments(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let mut covered_lines: HashSet<u32> = HashSet::new();
    for (ti, t) in ctx.lx.toks.iter().enumerate() {
        let TokKind::Ident(id) = &t.kind else {
            continue;
        };
        if id != "unsafe" {
            continue;
        }
        let line = t.line;
        // First line of the statement this `unsafe` belongs to.
        let mut stmt_start = line;
        for k in (0..ti).rev() {
            match ctx.lx.toks[k].kind {
                TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
                _ => stmt_start = stmt_start.min(ctx.lx.toks[k].line),
            }
        }
        let mut covered = ctx.comments_touching(line).any(is_safety_comment);
        let mut l = line.saturating_sub(1);
        while !covered && l >= 1 {
            covered = ctx.comments_touching(l).any(is_safety_comment);
            if covered {
                break;
            }
            let has_code = ctx.code_lines.contains(&l) && !ctx.attr_lines.contains(&l);
            if has_code && l < stmt_start && !covered_lines.contains(&l) {
                break;
            }
            l -= 1;
        }
        if covered {
            covered_lines.insert(line);
        } else {
            out.push(
                ctx.violation(
                    "A1",
                    line,
                    "`unsafe` without a preceding `// SAFETY:` comment (or `# Safety` doc section)"
                        .to_string(),
                ),
            );
        }
    }
}

/// A3: `partial_cmp(..)` directly followed by `.unwrap()` / `.expect(..)`
/// anywhere outside `core::order`.
fn a3_partial_cmp_unwrap(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if ctx.rel == ORDER_FILE {
        return;
    }
    let lx = &ctx.lx;
    for i in 0..lx.toks.len() {
        if lx.ident(i) != Some("partial_cmp") || !lx.punct(i + 1, '(') {
            continue;
        }
        let Some(close) = match_paren(lx, i + 1) else {
            continue;
        };
        if lx.punct(close + 1, '.') {
            if let Some(m) = lx.ident(close + 2) {
                if m == "unwrap" || m == "expect" {
                    out.push(ctx.violation(
                        "A3",
                        lx.toks[close + 2].line,
                        format!(
                            "`partial_cmp(..).{m}(..)` outside core::order — use a total \
                             ordering (`f32::total_cmp` or `core::order`)"
                        ),
                    ));
                }
            }
        }
    }
}

/// True when `rel` is in A4 scope: the serving layer and the vectorized
/// executor hot path.
fn a4_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/serve/src/") || rel == "crates/core/src/exec.rs"
}

/// A4: no `.unwrap()` / `.expect(..)` in hot-path modules (test code is
/// exempt; intentional panics go through the allowlist with a reason).
fn a4_hot_path_unwraps(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !a4_in_scope(&ctx.rel) {
        return;
    }
    let lx = &ctx.lx;
    for i in 0..lx.toks.len() {
        if !lx.punct(i, '.') || !lx.punct(i + 2, '(') {
            continue;
        }
        let Some(m) = lx.ident(i + 1) else { continue };
        if (m == "unwrap" || m == "expect") && !ctx.in_test(i) {
            out.push(ctx.violation(
                "A4",
                lx.toks[i + 1].line,
                format!(
                    "`.{m}(..)` in a hot-path module — return an error or allowlist with a reason"
                ),
            ));
        }
    }
}

/// A5: raw-pointer arithmetic / reconstruction confined to the kernel
/// files whose SAFETY contracts are documented in `SAFETY.md`.
fn a5_raw_pointer_ops(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if KERNEL_FILES.contains(&ctx.rel.as_str()) {
        return;
    }
    let lx = &ctx.lx;
    for i in 0..lx.toks.len() {
        if let Some(id) = lx.ident(i) {
            if id.starts_with("from_raw_parts") {
                out.push(ctx.violation(
                    "A5",
                    lx.toks[i].line,
                    format!("`{id}` outside the audited kernel files"),
                ));
                continue;
            }
        }
        if lx.punct(i, '.') && lx.punct(i + 2, '(') {
            if let Some(m) = lx.ident(i + 1) {
                if m == "add" || m == "offset" || m == "offset_from" {
                    out.push(ctx.violation(
                        "A5",
                        lx.toks[i + 1].line,
                        format!("pointer-style `.{m}(..)` outside the audited kernel files"),
                    ));
                }
            }
        }
    }
}

/// A7: fault-injection sites confined to [`FAULT_MODULES`] and marked.
/// Outside the allowlist, any non-test `tahoma_faults` use is flagged —
/// injection points are part of the audited failure surface, not
/// something to sprinkle ad hoc. Inside it, every site needs a
/// `// FAULT:` comment stating what failure it models, with the same
/// adjacent-run tolerance as A1. The faults crate itself and test code
/// (which *arms* plans rather than hosting sites) are exempt.
fn a7_fault_sites(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if ctx.rel.starts_with("crates/faults/") || ctx.rel.contains("/tests/") {
        return;
    }
    let allowed = FAULT_MODULES.contains(&ctx.rel.as_str());
    let mut flagged: HashSet<u32> = HashSet::new();
    let mut covered_lines: HashSet<u32> = HashSet::new();
    for (ti, t) in ctx.lx.toks.iter().enumerate() {
        let TokKind::Ident(id) = &t.kind else {
            continue;
        };
        if id != "tahoma_faults" || ctx.in_test(ti) {
            continue;
        }
        let line = t.line;
        if !allowed {
            if flagged.insert(line) {
                out.push(
                    ctx.violation(
                        "A7",
                        line,
                        "fault-injection site outside the A7 module allowlist — keep injection \
                     points on the audited failure surface (see RELIABILITY.md)"
                            .to_string(),
                    ),
                );
            }
            continue;
        }
        // Same upward scan as A1: tolerate blank/comment/attribute lines,
        // earlier lines of the same statement, and already-covered lines.
        let mut stmt_start = line;
        for k in (0..ti).rev() {
            match ctx.lx.toks[k].kind {
                TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
                _ => stmt_start = stmt_start.min(ctx.lx.toks[k].line),
            }
        }
        let is_fault_comment = |c: &&Comment| !c.doc && c.text.contains("FAULT:");
        let mut covered = ctx.comments_touching(line).any(|c| is_fault_comment(&c));
        let mut l = line.saturating_sub(1);
        while !covered && l >= 1 {
            covered = ctx.comments_touching(l).any(|c| is_fault_comment(&c));
            if covered {
                break;
            }
            let has_code = ctx.code_lines.contains(&l) && !ctx.attr_lines.contains(&l);
            if has_code && l < stmt_start && !covered_lines.contains(&l) {
                break;
            }
            l -= 1;
        }
        if covered {
            covered_lines.insert(line);
        } else if flagged.insert(line) {
            out.push(
                ctx.violation(
                    "A7",
                    line,
                    "fault-injection site without a `// FAULT:` comment naming the failure it \
                 models"
                        .to_string(),
                ),
            );
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(lx: &Lexed, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in lx.toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// A registered `Mutex` field: its rank and where it was declared.
#[derive(Debug, Clone)]
struct LockRank {
    rank: u32,
    file: String,
    line: u32,
}

/// True when `rel` is in A6 scope: the serving layer's lock graph plus
/// the representation store's ingest/blob locks and the segment store's
/// per-shard writer/index locks (`tahoma-serve` ingests and fetches
/// through the store, so the store ranks live in the same global
/// registry as the service ranks).
fn a6_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/serve/src/")
        || rel == "crates/imagery/src/store.rs"
        || rel == "crates/imagery/src/segment.rs"
}

/// A6 pass 1 (per in-scope file): every `name: Mutex<..>` struct field must
/// carry a `// LOCK-ORDER: n` comment on the field line or within the
/// three lines above; ranks are registered by field name.
fn a6_collect_ranks(
    ctx: &FileCtx,
    ranks: &mut BTreeMap<String, LockRank>,
    out: &mut Vec<Violation>,
) {
    let lx = &ctx.lx;
    for i in 0..lx.toks.len() {
        // Pattern: `name : Mutex <` at paren depth 0 (struct field, not a
        // fn parameter), preceded by `{`, `,`, or `pub`.
        let Some(name) = lx.ident(i) else { continue };
        if !(lx.punct(i + 1, ':')
            && lx.ident(i + 2) == Some("Mutex")
            && lx.punct(i + 3, '<')
            && ctx.paren_depth[i] == 0)
        {
            continue;
        }
        let field_ok = i == 0
            || matches!(
                &lx.toks[i - 1].kind,
                TokKind::Punct('{') | TokKind::Punct(',')
            )
            || lx.ident(i - 1) == Some("pub");
        if !field_ok {
            continue;
        }
        let line = lx.toks[i].line;
        let mut rank = None;
        for l in line.saturating_sub(3)..=line {
            for c in ctx.comments_touching(l) {
                if let Some(pos) = c.text.find("LOCK-ORDER:") {
                    let rest = &c.text[pos + "LOCK-ORDER:".len()..];
                    rank = rest
                        .split_whitespace()
                        .next()
                        .and_then(|w| w.parse::<u32>().ok());
                }
            }
        }
        match rank {
            None => out.push(ctx.violation(
                "A6",
                line,
                format!("Mutex field `{name}` without a `// LOCK-ORDER: n` annotation"),
            )),
            Some(r) => {
                if let Some(prev) = ranks.get(name) {
                    if prev.rank != r {
                        out.push(ctx.violation(
                            "A6",
                            line,
                            format!(
                                "Mutex field `{name}` re-declared with rank {r}, but {}:{} \
                                 ranks it {}",
                                prev.file, prev.line, prev.rank
                            ),
                        ));
                    }
                } else {
                    ranks.insert(
                        name.to_string(),
                        LockRank {
                            rank: r,
                            file: ctx.rel.clone(),
                            line,
                        },
                    );
                }
            }
        }
    }
}

/// A live guard during the A6 acquisition scan.
#[derive(Debug)]
struct LiveGuard {
    /// Binding name, if let-bound (so `drop(name)` releases it).
    name: Option<String>,
    /// Registered mutex field name.
    mutex: String,
    rank: u32,
    /// Brace depth the guard was created at (dies when the block closes).
    depth: u32,
    /// Statement temporary: dies at the next `;` at its depth.
    stmt_temp: bool,
}

/// A6 pass 2 (per serve file): walk lock acquisitions and flag any that
/// acquire a rank less than or equal to a different mutex already held.
///
/// Recognized acquisition shapes (the workspace's two idioms):
/// * helper: `lock(&path.to.field)`
/// * method: `path.to.field.lock()` followed by at most one poison
///   adapter (`.unwrap()`, `.expect(..)`, `.unwrap_or_else(..)`)
///
/// Guard lifetime: `let [mut] g = <lock expr>;` lives to its block's
/// closing brace or `drop(g)`; any other use is a statement temporary
/// that dies at the next `;`.
fn a6_check_acquisitions(
    ctx: &FileCtx,
    ranks: &BTreeMap<String, LockRank>,
    out: &mut Vec<Violation>,
) {
    let lx = &ctx.lx;
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut depth = 0u32;
    let mut i = 0usize;
    while i < lx.toks.len() {
        match &lx.toks[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                live.retain(|g| g.depth <= depth);
                i += 1;
            }
            TokKind::Punct(';') => {
                live.retain(|g| !(g.stmt_temp && g.depth == depth));
                i += 1;
            }
            TokKind::Ident(id) if id == "drop" && lx.punct(i + 1, '(') => {
                if let Some(victim) = lx.ident(i + 2) {
                    if lx.punct(i + 3, ')') {
                        live.retain(|g| g.name.as_deref() != Some(victim));
                    }
                }
                i += 1;
            }
            TokKind::Ident(id) if id == "lock" => {
                let acquisition = if lx.punct(i + 1, '(') && !prev_is_dot(lx, i) {
                    // Helper form: mutex name is the last ident inside the
                    // call's argument path.
                    let close = match_paren(lx, i + 1);
                    close.map(|close| {
                        let mut name = None;
                        for k in (i + 2)..close {
                            if let Some(id) = lx.ident(k) {
                                name = Some(id.to_string());
                            }
                        }
                        (name, i, close + 1)
                    })
                } else if prev_is_dot(lx, i) && lx.punct(i + 1, '(') {
                    // Method form: mutex name is the ident before the dot.
                    let close = match_paren(lx, i + 1);
                    close.map(|close| {
                        let name = lx.ident(i.saturating_sub(2)).map(|s| s.to_string());
                        // Path start for the let-binding check.
                        let mut start = i.saturating_sub(2);
                        while start > 0 {
                            let prev = start - 1;
                            let is_path = lx.punct(prev, '.')
                                || lx.punct(prev, ':')
                                || lx.ident(prev).is_some();
                            if is_path {
                                start = prev;
                            } else {
                                break;
                            }
                        }
                        (name, start, close + 1)
                    })
                } else {
                    None
                };
                let Some((Some(name), expr_start, mut after)) = acquisition else {
                    i += 1;
                    continue;
                };
                let Some(rank) = ranks.get(&name) else {
                    i += 1;
                    continue;
                };
                // Swallow one poison adapter.
                if lx.punct(after, '.') {
                    if let Some(adapter) = lx.ident(after + 1) {
                        if matches!(adapter, "unwrap" | "expect" | "unwrap_or_else")
                            && lx.punct(after + 2, '(')
                        {
                            if let Some(c) = match_paren(lx, after + 2) {
                                after = c + 1;
                            }
                        }
                    }
                }
                for g in &live {
                    if g.mutex != name && g.rank >= rank.rank {
                        out.push(ctx.violation(
                            "A6",
                            lx.toks[i].line,
                            format!(
                                "acquires `{name}` (rank {}) while holding `{}` (rank {}) — \
                                 lock ranks must strictly ascend",
                                rank.rank, g.mutex, g.rank
                            ),
                        ));
                    }
                }
                let stmt_temp = lx.punct(after, '.');
                let bound_name = if stmt_temp {
                    None
                } else {
                    let_binding_name(lx, expr_start)
                };
                live.push(LiveGuard {
                    stmt_temp: stmt_temp || bound_name.is_none(),
                    name: bound_name,
                    mutex: name,
                    rank: rank.rank,
                    depth,
                });
                i = after;
            }
            _ => i += 1,
        }
    }
}

fn prev_is_dot(lx: &Lexed, i: usize) -> bool {
    i > 0 && lx.punct(i - 1, '.')
}

/// If the tokens immediately before `expr_start` are `let [mut] NAME =`,
/// return `NAME`.
fn let_binding_name(lx: &Lexed, expr_start: usize) -> Option<String> {
    if expr_start < 2 || !lx.punct(expr_start - 1, '=') {
        return None;
    }
    let name = lx.ident(expr_start - 2)?;
    let before = expr_start.checked_sub(3)?;
    match lx.ident(before) {
        Some("let") => Some(name.to_string()),
        Some("mut") if lx.ident(before.checked_sub(1)?) == Some("let") => Some(name.to_string()),
        _ => None,
    }
}

/// Whole-workspace audit over pre-read sources: `files` maps the
/// root-relative forward-slash path to file contents.
pub fn audit_sources(files: &BTreeMap<String, String>) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut ranks: BTreeMap<String, LockRank> = BTreeMap::new();
    let mut ctxs: Vec<FileCtx> = Vec::new();

    for (rel, src) in files {
        let ctx = FileCtx::new(rel.clone(), src);
        a1_safety_comments(&ctx, &mut out);
        a3_partial_cmp_unwrap(&ctx, &mut out);
        a4_hot_path_unwraps(&ctx, &mut out);
        a5_raw_pointer_ops(&ctx, &mut out);
        a7_fault_sites(&ctx, &mut out);
        if a6_in_scope(&ctx.rel) {
            a6_collect_ranks(&ctx, &mut ranks, &mut out);
        }
        ctxs.push(ctx);
    }

    // A6 pass 2 needs the full rank registry.
    for ctx in &ctxs {
        if a6_in_scope(&ctx.rel) {
            a6_check_acquisitions(ctx, &ranks, &mut out);
        }
    }

    // A2: group files by crate root (nearest ancestor with a Cargo.toml is
    // resolved by the caller into the path prefix; here we use the
    // `crates/NAME` / `vendor/NAME` / root convention).
    let mut crate_has_unsafe: HashMap<String, (String, u32)> = HashMap::new();
    let mut crate_has_deny: HashSet<String> = HashSet::new();
    for ctx in &ctxs {
        let krate = crate_of(&ctx.rel);
        let first_unsafe = ctx
            .lx
            .toks
            .iter()
            .find(|t| matches!(&t.kind, TokKind::Ident(s) if s == "unsafe"))
            .map(|t| t.line);
        if let Some(line) = first_unsafe {
            crate_has_unsafe
                .entry(krate.clone())
                .or_insert_with(|| (ctx.rel.clone(), line));
        }
        let is_root = ctx.rel.ends_with("src/lib.rs") || ctx.rel.ends_with("src/main.rs");
        if is_root {
            let mut saw_deny = false;
            let mut saw_lint = false;
            for t in &ctx.lx.toks {
                if let TokKind::Ident(s) = &t.kind {
                    if s == "deny" {
                        saw_deny = true;
                    }
                    if s == "unsafe_op_in_unsafe_fn" {
                        saw_lint = true;
                    }
                }
            }
            if saw_deny && saw_lint {
                crate_has_deny.insert(krate);
            }
        }
    }
    for (krate, (witness, line)) in &crate_has_unsafe {
        if !crate_has_deny.contains(krate) {
            out.push(Violation {
                lint: "A2",
                file: witness.clone(),
                line: *line,
                message: format!(
                    "crate `{krate}` contains `unsafe` but its root does not declare \
                     `#![deny(unsafe_op_in_unsafe_fn)]`"
                ),
                excerpt: String::new(),
            });
        }
    }

    out.sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    out
}

/// Crate key for a root-relative path: `crates/NAME`, `vendor/NAME`, the
/// first path component for fixture layouts, or `.` for the root package.
fn crate_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates" | "vendor", name, ..] => format!("{}/{name}", parts[0]),
        [] | [_] => ".".to_string(),
        ["src" | "tests" | "benches" | "examples", ..] => ".".to_string(),
        [first, ..] => (*first).to_string(),
    }
}

/// Convenience: audit a single in-memory file (used by tests).
pub fn audit_one(rel: &str, src: &str) -> Vec<Violation> {
    let mut files = BTreeMap::new();
    files.insert(rel.to_string(), src.to_string());
    audit_sources(&files)
}

//! Workspace discovery and file walking.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Ascend from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect every `.rs` file under `root`, skipping build output and VCS
/// metadata. Returns root-relative forward-slash paths mapped to file
/// contents, in sorted order (deterministic reports).
pub fn read_sources(root: &Path) -> std::io::Result<BTreeMap<String, String>> {
    let mut out = BTreeMap::new();
    walk(root, root, &mut out)?;
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, String>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.insert(rel, fs::read_to_string(&path)?);
        }
    }
    Ok(())
}

//! CLI for the workspace audit. Exit codes: 0 clean, 1 violations,
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use tahoma_audit::{run_audit, Allowlist};

fn usage() -> &'static str {
    "usage: tahoma-audit [--root PATH] [--allow PATH] [--json]\n\
     \n\
     Lints every .rs file in the workspace (deny by default; see SAFETY.md).\n\
     --root   workspace root (default: discovered from the current directory)\n\
     --allow  allowlist path (default: <root>/audit-allow.toml; absent = empty)\n\
     --json   machine-readable output for CI\n"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return fail("--root requires a path"),
            },
            "--allow" => match args.next() {
                Some(p) => allow_path = Some(PathBuf::from(p)),
                None => return fail("--allow requires a path"),
            },
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match tahoma_audit::workspace::find_root(&cwd) {
                Some(r) => r,
                None => return fail("no workspace root found above the current directory"),
            }
        }
    };

    let allow_path = allow_path.unwrap_or_else(|| root.join("audit-allow.toml"));
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => return fail(&format!("{}: {e}", allow_path.display())),
        },
        Err(_) => Allowlist::default(),
    };

    match run_audit(&root, &allow) {
        Ok(report) => {
            if json {
                print!("{}", report.json());
            } else {
                print!("{}", report.human());
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(&format!("audit failed to read sources: {e}")),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("tahoma-audit: {msg}");
    eprint!("{}", usage());
    ExitCode::from(2)
}

//! Audit report: human-readable table and machine-readable JSON (both
//! hand-rolled; no serde on the offline box).

use crate::allow::AllowEntry;
use crate::lints::Violation;
use std::fmt::Write as _;

/// The outcome of one audit run, after allowlist application. Stale
/// allowlist entries are folded into `violations` as lint `A0` so that a
/// single emptiness check decides the exit code.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    /// Violations excused by the allowlist.
    pub allowed: usize,
    /// Files scanned.
    pub files: usize,
}

impl Report {
    /// Build a report, folding unused allowlist entries in as `A0`.
    pub fn new(
        mut violations: Vec<Violation>,
        allowed: usize,
        unused: Vec<&AllowEntry>,
        files: usize,
    ) -> Report {
        for e in unused {
            violations.push(Violation {
                lint: "A0",
                file: "audit-allow.toml".to_string(),
                line: e.line,
                message: format!(
                    "stale allowlist entry (file = \"{}\", lint = \"{}\") matched nothing — \
                     delete it",
                    e.file, e.lint
                ),
                excerpt: String::new(),
            });
        }
        Report {
            violations,
            allowed,
            files,
        }
    }

    /// True when the workspace passed.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable table.
    pub fn human(&self) -> String {
        let mut s = String::new();
        if self.clean() {
            let _ = writeln!(
                s,
                "audit OK: {} files scanned, 0 violations ({} allowlisted)",
                self.files, self.allowed
            );
            return s;
        }
        let _ = writeln!(
            s,
            "LINT  LOCATION                                      FINDING"
        );
        for v in &self.violations {
            let loc = format!("{}:{}", v.file, v.line);
            let _ = writeln!(s, "{:<5} {:<45} {}", v.lint, loc, v.message);
            if !v.excerpt.is_empty() {
                let _ = writeln!(s, "      | {}", v.excerpt);
            }
        }
        let _ = writeln!(
            s,
            "audit FAILED: {} violations across {} files ({} allowlisted)",
            self.violations.len(),
            self.files,
            self.allowed
        );
        s
    }

    /// Machine-readable JSON for CI.
    pub fn json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files);
        let _ = writeln!(s, "  \"allowed\": {},", self.allowed);
        let _ = writeln!(s, "  \"violation_count\": {},", self.violations.len());
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            let _ = write!(
                s,
                "\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"excerpt\": {}",
                json_str(v.lint),
                json_str(&v.file),
                v.line,
                json_str(&v.message),
                json_str(&v.excerpt)
            );
            s.push('}');
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// JSON string escaping.
fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let r = Report::new(
            vec![Violation {
                lint: "A4",
                file: "a\"b.rs".to_string(),
                line: 3,
                message: "x\ny".to_string(),
                excerpt: String::new(),
            }],
            2,
            Vec::new(),
            10,
        );
        let j = r.json();
        assert!(j.contains("\"violation_count\": 1"));
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("x\\ny"));
        assert!(!r.clean());
    }
}

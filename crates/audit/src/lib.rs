//! `tahoma-audit`: the workspace invariant linter.
//!
//! PRs 1–6 built the hot path on ~75 `unsafe` SIMD sites, NaN-total
//! orderings, and a Mutex/Condvar coalescing broker — invariants that
//! were enforced only by convention. This crate machine-checks them on
//! every CI run (see `SAFETY.md` at the workspace root for the policy the
//! lints encode, and [`lints`] for the rule catalogue A1–A7).
//!
//! Run it locally with `scripts/audit.sh`, or directly:
//!
//! ```text
//! cargo run -p tahoma-audit --           # human table, exit 1 on findings
//! cargo run -p tahoma-audit -- --json    # machine-readable, for CI
//! ```
//!
//! Exceptions live in `audit-allow.toml`; every entry carries a reason
//! and stale entries fail the audit (lint `A0`).

pub mod allow;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod workspace;

pub use allow::Allowlist;
pub use lints::Violation;
pub use report::Report;

use std::collections::BTreeMap;
use std::path::Path;

/// Audit every `.rs` file under `root` and apply `allow`.
pub fn run_audit(root: &Path, allow: &Allowlist) -> std::io::Result<Report> {
    let sources = workspace::read_sources(root)?;
    Ok(audit_in_memory(&sources, allow))
}

/// Audit pre-read sources (fixture tests feed violations through this
/// without touching the filesystem).
pub fn audit_in_memory(sources: &BTreeMap<String, String>, allow: &Allowlist) -> Report {
    let violations = lints::audit_sources(sources);
    let files = sources.len();
    let (remaining, allowed, unused) = allow.apply(violations);
    Report::new(remaining, allowed, unused, files)
}

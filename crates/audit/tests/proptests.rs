//! Property tests for the audit tokenizer: for randomized source shapes,
//! literals and comments must hide their contents from the token stream
//! (an `unsafe` inside a string must never trip lint A1), line numbers
//! must stay exact, and the lexer must never panic on any input it is
//! handed.

use proptest::prelude::*;
use tahoma_audit::lexer::{lex, TokKind};

/// Deterministic word picker (splitmix64) — the vendored proptest has no
/// string strategies, so string shapes are derived from integer seeds.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Junk that looks like the things the lints hunt for, safe to embed in
/// any literal or comment (no quotes, hashes, backslashes, or `*/`).
fn spicy_junk(seed: u64, words: usize) -> String {
    const WORDS: &[&str] = &[
        "unsafe",
        ".add(p)",
        ".offset(1)",
        "from_raw_parts",
        "partial_cmp(b).unwrap()",
        "lock().expect(x)",
        "Mutex<u32>",
        "SAFETY:",
    ];
    (0..words)
        .map(|i| WORDS[(mix(seed ^ i as u64) % WORDS.len() as u64) as usize])
        .collect::<Vec<_>>()
        .join(" ")
}

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .toks
        .into_iter()
        .filter_map(|t| match t.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Anything inside a plain string literal is invisible: the only
    /// `unsafe` the lexer reports is the real one outside the string.
    #[test]
    fn string_literals_hide_their_contents(seed in 0u64..1_000_000, words in 1usize..8) {
        let junk = spicy_junk(seed, words);
        let src = format!("let s = \"{junk}\";\nunsafe {{ () }}\n");
        let ids = idents(&src);
        prop_assert_eq!(ids.iter().filter(|s| *s == "unsafe").count(), 1);
        prop_assert!(!ids.iter().any(|s| s == "from_raw_parts"));
        let lx = lex(&src);
        prop_assert!(lx.toks.iter().any(|t| t.kind == TokKind::Str));
        // The real `unsafe` sits on line 2, wherever the junk ended.
        let line = lx.toks.iter()
            .find(|t| matches!(&t.kind, TokKind::Ident(s) if s == "unsafe"))
            .map(|t| t.line);
        prop_assert_eq!(line, Some(2));
    }

    /// Raw strings with any hash depth hide quotes and junk alike.
    #[test]
    fn raw_strings_hide_their_contents(seed in 0u64..1_000_000, hashes in 1usize..5) {
        let h = "#".repeat(hashes);
        // Embedded plain quotes are legal inside r#"…"# for hashes >= 1.
        let junk = format!("say \"{}\" loudly", spicy_junk(seed, 3));
        let src = format!("let s = r{h}\"{junk}\"{h};\nfn tail() {{}}\n");
        let ids = idents(&src);
        prop_assert!(!ids.iter().any(|s| s == "unsafe"), "leaked from {src}");
        prop_assert!(ids.iter().any(|s| s == "tail"), "lost the code after: {src}");
    }

    /// Block comments nest to arbitrary depth; their contents never
    /// become tokens and the line counter stays exact.
    #[test]
    fn nested_block_comments_hide_contents(seed in 0u64..1_000_000, depth in 1usize..6) {
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        let junk = spicy_junk(seed, 4);
        let src = format!("{open} {junk}\nstill hidden {close}\nfn tail() {{}}\n");
        let lx = lex(&src);
        let ids = idents(&src);
        prop_assert!(!ids.iter().any(|s| s == "unsafe"));
        prop_assert!(ids.iter().any(|s| s == "tail"));
        prop_assert_eq!(lx.comments.len(), 1);
        prop_assert_eq!(lx.comments[0].line, 1);
        prop_assert_eq!(lx.comments[0].end_line, 2);
        // `fn` of the tail is on line 3.
        let fn_line = lx.toks.iter()
            .find(|t| matches!(&t.kind, TokKind::Ident(s) if s == "fn"))
            .map(|t| t.line);
        prop_assert_eq!(fn_line, Some(3));
    }

    /// `//` vs `///` classification: the SAFETY-comment lint (A1) must see
    /// plain comments as plain and doc comments as doc, whatever follows.
    #[test]
    fn line_comment_docness(seed in 0u64..1_000_000, style in 0usize..3) {
        let marker = ["//", "///", "//!"][style];
        let src = format!("{marker} SAFETY: {}\n", spicy_junk(seed, 2));
        let lx = lex(&src);
        prop_assert_eq!(lx.comments.len(), 1);
        prop_assert_eq!(lx.comments[0].doc, style != 0);
        prop_assert!(lx.toks.is_empty(), "comment leaked tokens: {src}");
    }

    /// Tuple-index chains: for any index, `x.N.add(y)` must still yield
    /// the `.`/`add` tokens A5 hunts for (float lexing must not eat them).
    #[test]
    fn tuple_index_chain_keeps_method_tokens(n in 0u32..10_000) {
        let src = format!("let v = x.{n}.add(y);\n");
        let ids = idents(&src);
        prop_assert!(ids.iter().any(|s| s == "add"), "lost .add in {src}");
        // And a genuine float with the same digits stays one number: no
        // spurious `add` appears from `{n}.5f32`.
        let float_src = format!("let f = {n}.5f32;\n");
        let lx = lex(&float_src);
        prop_assert!(lx.toks.iter().any(|t| t.kind == TokKind::Num));
        prop_assert!(!idents(&float_src).iter().any(|s| s == "add"));
    }

    /// Lifetimes vs char literals: `'a` stays a lifetime token, `'a'`
    /// stays a char literal, for every ASCII letter.
    #[test]
    fn lifetime_vs_char_disambiguation(letter in 0u8..26) {
        let ch = (b'a' + letter) as char;
        let lt = format!("fn f<'{ch}>(x: &'{ch} u32) {{}}\n");
        let lx = lex(&lt);
        prop_assert!(lx.toks.iter().any(|t| t.kind == TokKind::Lifetime));
        prop_assert!(!lx.toks.iter().any(|t| t.kind == TokKind::CharLit));
        let cl = format!("let c = '{ch}';\n");
        let lx = lex(&cl);
        prop_assert!(lx.toks.iter().any(|t| t.kind == TokKind::CharLit));
        prop_assert!(!lx.toks.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    /// Robustness: random byte soup (printable-ish) never panics the
    /// lexer, and reported line numbers never exceed the line count.
    #[test]
    fn arbitrary_soup_never_panics(seed in 0u64..1_000_000, len in 0usize..400) {
        const ALPHABET: &[u8] =
            b"abz_ '\"\\/*#!.019{}()<>;:,&r\n\t-+=%^|?@$[]~`";
        let src: String = (0..len)
            .map(|i| ALPHABET[(mix(seed ^ i as u64) % ALPHABET.len() as u64) as usize] as char)
            .collect();
        let lx = lex(&src);
        for t in &lx.toks {
            prop_assert!(t.line >= 1 && t.line <= lx.n_lines.max(1));
        }
        for c in &lx.comments {
            prop_assert!(c.line <= c.end_line);
        }
    }
}

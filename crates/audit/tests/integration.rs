//! End-to-end lint coverage: seeded violations per lint must be caught,
//! clean fixtures must pass, the allowlist must excuse exactly what it
//! names (and fail when stale), and the real workspace must audit clean.

use std::collections::BTreeMap;
use tahoma_audit::{audit_in_memory, Allowlist, Report};

fn fixture(files: &[(&str, &str)]) -> BTreeMap<String, String> {
    files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

fn audit(files: &[(&str, &str)]) -> Report {
    audit_in_memory(&fixture(files), &Allowlist::default())
}

fn lints_of(report: &Report) -> Vec<&str> {
    report.violations.iter().map(|v| v.lint).collect()
}

/// A compliant crate: unsafe with SAFETY comments, the crate-level
/// attribute, no panicking calls in serve scope.
const CLEAN_LIB: &str = r#"
#![deny(unsafe_op_in_unsafe_fn)]
pub fn double(xs: &mut [f32]) {
    let p = xs.as_mut_ptr();
    for i in 0..xs.len() {
        // SAFETY: i < xs.len(), so p + i is in bounds.
        unsafe { *p.add(i) *= 2.0 };
    }
}
"#;

#[test]
fn clean_fixture_audits_clean() {
    let report = audit(&[
        ("crates/nn/src/gemm.rs", CLEAN_LIB),
        (
            "crates/nn/src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\npub mod gemm;\n",
        ),
        (
            "crates/serve/src/lib.rs",
            "pub fn ok() -> Option<u32> { Some(1) }\n",
        ),
    ]);
    assert!(report.clean(), "unexpected findings: {}", report.human());
}

const NN_LIB: &str = "#![deny(unsafe_op_in_unsafe_fn)]\npub mod gemm;\n";

#[test]
fn a1_uncommented_unsafe_is_caught() {
    let report = audit(&[
        (
            "crates/nn/src/gemm.rs",
            "pub fn f(p: *const f32) -> f32 { unsafe { *p } }\n",
        ),
        ("crates/nn/src/lib.rs", NN_LIB),
    ]);
    assert_eq!(lints_of(&report), ["A1"], "{}", report.human());
    // The same unsafe with a SAFETY comment passes.
    let ok = audit(&[
        (
            "crates/nn/src/gemm.rs",
            "// SAFETY: caller contract.\npub fn f(p: *const f32) -> f32 { unsafe { *p } }\n",
        ),
        ("crates/nn/src/lib.rs", NN_LIB),
    ]);
    assert!(ok.clean(), "{}", ok.human());
}

#[test]
fn a1_doc_safety_section_counts() {
    let ok = audit(&[
        (
            "crates/nn/src/gemm.rs",
            "/// Reads one element.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *const f32) -> f32 { unsafe { *p } }\n",
        ),
        ("crates/nn/src/lib.rs", NN_LIB),
    ]);
    assert!(ok.clean(), "{}", ok.human());
}

#[test]
fn a2_missing_crate_attribute_is_caught() {
    let report = audit(&[
        (
            "crates/widget/src/simd.rs",
            "// SAFETY: test fixture.\npub fn f(p: *const f32) -> f32 { unsafe { *p } }\n",
        ),
        ("crates/widget/src/lib.rs", "pub mod simd;\n"),
    ]);
    assert!(
        lints_of(&report).contains(&"A2"),
        "expected A2 for missing deny(unsafe_op_in_unsafe_fn): {}",
        report.human()
    );
}

#[test]
fn a3_partial_cmp_unwrap_is_caught_outside_order_module() {
    let bad = "pub fn max(xs: &[f32]) -> f32 {\n    let mut v = xs.to_vec();\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    v[v.len() - 1]\n}\n";
    let report = audit(&[("crates/nn/src/train.rs", bad)]);
    assert_eq!(lints_of(&report), ["A3"], "{}", report.human());
    // The NaN-total-order module itself is the sanctioned home.
    let order = audit(&[("crates/core/src/order.rs", bad)]);
    assert!(order.clean(), "{}", order.human());
}

#[test]
fn a4_unwrap_in_serve_scope_is_caught() {
    let report = audit(&[(
        "crates/serve/src/service.rs",
        "pub fn first(xs: &[u32]) -> u32 { *xs.first().unwrap() }\n",
    )]);
    assert_eq!(lints_of(&report), ["A4"], "{}", report.human());
    // Same code in a non-serving crate is fine...
    let ok = audit(&[(
        "crates/nn/src/model.rs",
        "pub fn first(xs: &[u32]) -> u32 { *xs.first().unwrap() }\n",
    )]);
    assert!(ok.clean(), "{}", ok.human());
    // ...and so is test code inside the serving crate.
    let test_ok = audit(&[(
        "crates/serve/src/service.rs",
        "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(*[1u32].first().unwrap(), 1); }\n}\n",
    )]);
    assert!(test_ok.clean(), "{}", test_ok.human());
}

#[test]
fn a5_raw_pointer_ops_confined_to_kernel_files() {
    let raw = "#![deny(unsafe_op_in_unsafe_fn)]\npub fn f(p: *const f32) -> f32 {\n    // SAFETY: fixture.\n    unsafe { *p.add(1) }\n}\n";
    let report = audit(&[
        ("crates/core/src/exec.rs", raw),
        (
            "crates/core/src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\npub mod exec;\n",
        ),
    ]);
    assert!(
        lints_of(&report).contains(&"A5"),
        "raw pointer op outside the kernel files must be flagged: {}",
        report.human()
    );
    // The same op inside a sanctioned kernel file passes.
    let ok = audit(&[
        ("crates/nn/src/gemm.rs", raw),
        (
            "crates/nn/src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\npub mod gemm;\n",
        ),
    ]);
    assert!(ok.clean(), "{}", ok.human());
}

#[test]
fn a6_lock_order_annotations_and_inversions() {
    // A Mutex field without a LOCK-ORDER annotation.
    let report = audit(&[(
        "crates/serve/src/thing.rs",
        "use std::sync::Mutex;\npub struct S {\n    inner: Mutex<u32>,\n}\n",
    )]);
    assert_eq!(lints_of(&report), ["A6"], "{}", report.human());

    // Descending acquisition order across two ranked mutexes.
    let inversion = r#"
use std::sync::{Mutex, MutexGuard};
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() { Ok(g) => g, Err(p) => p.into_inner() }
}
pub struct S {
    // LOCK-ORDER: 10
    low: Mutex<u32>,
    // LOCK-ORDER: 20
    high: Mutex<u32>,
}
impl S {
    pub fn bad(&self) -> u32 {
        let h = lock(&self.high);
        let l = lock(&self.low);
        *h + *l
    }
}
"#;
    let report = audit(&[("crates/serve/src/thing.rs", inversion)]);
    assert_eq!(lints_of(&report), ["A6"], "{}", report.human());

    // Ascending order passes.
    let ascending = inversion.replace(
        "let h = lock(&self.high);\n        let l = lock(&self.low);",
        "let l = lock(&self.low);\n        let h = lock(&self.high);",
    );
    let ok = audit(&[("crates/serve/src/thing.rs", ascending.as_str())]);
    assert!(ok.clean(), "{}", ok.human());
}

#[test]
fn a6_scope_covers_the_segment_store_shard_locks() {
    // The representation store and the sharded segment store hold
    // mutexes outside the serve crate; both files are explicitly in A6
    // scope so those ranks stay audited.
    let unranked = "use std::sync::Mutex;\npub struct Shard {\n    seg_writer: Mutex<u32>,\n}\n";
    let report = audit(&[("crates/imagery/src/segment.rs", unranked)]);
    assert_eq!(lints_of(&report), ["A6"], "{}", report.human());
    let report = audit(&[("crates/imagery/src/store.rs", unranked)]);
    assert_eq!(lints_of(&report), ["A6"], "{}", report.human());
    // The rest of the imagery crate is not in A6 scope.
    let ok = audit(&[("crates/imagery/src/codec.rs", unranked)]);
    assert!(ok.clean(), "{}", ok.human());
}

#[test]
fn a7_fault_sites_confined_to_allowlisted_modules_and_marked() {
    // An injection site in a non-allowlisted module is flagged no matter
    // how well it is commented.
    let stray = "pub fn f() {\n    // FAULT: stray site.\n    tahoma_faults::fire(3);\n}\n";
    let report = audit(&[("crates/core/src/exec.rs", stray)]);
    assert_eq!(lints_of(&report), ["A7"], "{}", report.human());

    // In an allowlisted module, an unmarked site is flagged...
    let unmarked = "pub fn f() {\n    tahoma_faults::fire(3);\n}\n";
    let report = audit(&[("crates/serve/src/broker.rs", unmarked)]);
    assert_eq!(lints_of(&report), ["A7"], "{}", report.human());

    // ...a `// FAULT:` comment clears it, and one comment covers an
    // adjacent run of sites (the segment read path's idiom).
    let marked = "pub fn f() {\n    // FAULT: leader dies mid-batch.\n    tahoma_faults::fire(3);\n    tahoma_faults::stall(4);\n}\n";
    let ok = audit(&[("crates/serve/src/broker.rs", marked)]);
    assert!(ok.clean(), "{}", ok.human());

    // Test code arms plans rather than hosting sites: exempt, both as
    // in-file test modules and as tests/ files.
    let test_mod = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { tahoma_faults::fire(1); }\n}\n";
    let ok = audit(&[("crates/core/src/exec.rs", test_mod)]);
    assert!(ok.clean(), "{}", ok.human());
    let ok = audit(&[("crates/serve/tests/chaos.rs", unmarked)]);
    assert!(ok.clean(), "{}", ok.human());

    // The faults crate itself is where the machinery lives.
    let ok = audit(&[("crates/faults/src/lib.rs", unmarked)]);
    assert!(ok.clean(), "{}", ok.human());
}

#[test]
fn allowlist_excuses_named_violation_and_stale_entries_fail() {
    let files = fixture(&[(
        "crates/serve/src/service.rs",
        "pub fn first(xs: &[u32]) -> u32 { *xs.first().unwrap() }\n",
    )]);
    let allow = Allowlist::parse(
        r#"
[[allow]]
file = "crates/serve/src/service.rs"
lint = "A4"
needle = "xs.first().unwrap()"
reason = "fixture"
"#,
    )
    .expect("valid allowlist");
    let report = audit_in_memory(&files, &allow);
    assert!(report.clean(), "{}", report.human());
    assert_eq!(report.allowed, 1);

    // The same allowlist against sources without the violation: the entry
    // is stale and must fail the audit as A0.
    let clean = fixture(&[("crates/serve/src/service.rs", "pub fn ok() {}\n")]);
    let report = audit_in_memory(&clean, &allow);
    assert_eq!(lints_of(&report), ["A0"], "{}", report.human());
}

#[test]
fn allowlist_rejects_entries_without_reason() {
    let err = Allowlist::parse("[[allow]]\nfile = \"x.rs\"\nlint = \"A4\"\n")
        .expect_err("reason is mandatory");
    assert!(err.contains("reason"), "unhelpful error: {err}");
}

/// The acceptance gate on the real tree: the workspace audits clean with
/// the committed allowlist, which stays within its entry budget.
#[test]
fn real_workspace_audits_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let allow_text =
        std::fs::read_to_string(root.join("audit-allow.toml")).expect("read audit-allow.toml");
    let allow = Allowlist::parse(&allow_text).expect("valid committed allowlist");
    assert!(
        allow.entries.len() <= 10,
        "allowlist over budget: {} entries",
        allow.entries.len()
    );
    let report = tahoma_audit::run_audit(&root, &allow).expect("scan workspace");
    assert!(
        report.clean(),
        "workspace must audit clean:\n{}",
        report.human()
    );
}

//! Seeded, deterministic fault injection for the serving stack.
//!
//! The reliability layer (retry, quarantine, degradation ladders — see
//! `RELIABILITY.md`) is only trustworthy if its failure paths actually
//! run, and real I/O faults are too rare and too irreproducible to test
//! against. This crate plants *injection points* at the stack's failure
//! edges — segment reads/writes, store fetch/ingest, the coalescing
//! broker's leader, the protocol socket loop — and lets a test arm them
//! with a seeded [`FaultPlan`]: per-site fault rates in permille, decided
//! by a splitmix64 counter stream, so one seed reproduces one exact fault
//! schedule and 1000 seeds explore 1000 different ones (the chaos
//! campaign in `tahoma-serve/tests/chaos.rs`).
//!
//! The same `ARMED` fast-path discipline as `tahoma_serve::sched`: hooks
//! compiled without the `fault-inject` feature are `const` no-ops the
//! optimizer deletes, so production builds are bitwise-transparent; with
//! the feature on but no plan installed, each hook costs one relaxed
//! atomic load. Decisions consume one per-site counter each, so a serial
//! request sequence replays the identical schedule for a given seed;
//! under concurrency the *set* of decisions is still drawn from the
//! seeded stream, but which thread draws which depends on interleaving.
//!
//! Injection points in production code are audited: lint A7 in
//! `tahoma-audit` confines `tahoma_faults` usage to an allowlisted module
//! set and requires a `// FAULT:` tag at every call site (see
//! `SAFETY.md`).

/// Injection sites. Values are arbitrary but stable so a seed reproduces
/// a schedule even when new sites are added at the end; they index the
/// plan's rate table directly.
pub mod site {
    /// Segment payload read: transient I/O error (retryable).
    pub const SEG_READ: u32 = 0;
    /// Segment payload read: CRC-corrupt record (permanent; quarantine).
    pub const SEG_READ_CORRUPT: u32 = 1;
    /// Segment payload read: short read (surfaces as transient I/O).
    pub const SEG_READ_SHORT: u32 = 2;
    /// Segment payload read: slow read (stall, no error).
    pub const SEG_READ_SLOW: u32 = 3;
    /// Segment append: transient I/O error.
    pub const SEG_WRITE: u32 = 4;
    /// Segment mmap (re)publish fails, forcing the pread fallback.
    pub const SEG_MMAP: u32 = 5;
    /// `RepresentationStore::fetch`: transient error above the tier.
    pub const STORE_FETCH: u32 = 6;
    /// `RepresentationStore::ingest`: transient error before the tier.
    pub const STORE_INGEST: u32 = 7;
    /// Coalescing broker: leader dies mid-merge (panic inside the guard).
    pub const BROKER_LEAD: u32 = 8;
    /// Protocol: connection read dropped mid-stream.
    pub const PROTO_READ: u32 = 9;
    /// Protocol: response write fails (client gone / partial write).
    pub const PROTO_WRITE: u32 = 10;
    /// Protocol: stalled client (stall, no error).
    pub const PROTO_STALL: u32 = 11;
    /// Standing-query tick evaluation fails once (retryable).
    pub const STREAM_TICK: u32 = 12;

    /// Number of sites (rate/counter table size).
    pub const COUNT: usize = 13;
}

/// Per-site fault rates in permille, plus the seed deciding which
/// individual hook executions fire. `rate = 1000` fires every time,
/// `rate = 0` (the default for every site) never.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Root seed of the decision stream.
    pub seed: u64,
    rates: [u16; site::COUNT],
}

impl FaultPlan {
    /// A plan that injects nothing; add rates with [`FaultPlan::with_rate`].
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0; site::COUNT],
        }
    }

    /// Set `site`'s fault rate in permille (clamped to 1000). Out-of-range
    /// sites are ignored.
    pub fn with_rate(mut self, site: u32, per_mille: u16) -> FaultPlan {
        if let Some(r) = self.rates.get_mut(site as usize) {
            *r = per_mille.min(1000);
        }
        self
    }

    /// Set every site's rate at once (the chaos campaign's broad-spectrum
    /// schedules).
    pub fn with_uniform_rate(mut self, per_mille: u16) -> FaultPlan {
        self.rates = [per_mille.min(1000); site::COUNT];
        self
    }
}

/// splitmix64 finalizer: decorrelates consecutive counters into
/// independent-looking decisions (same mixer as `tahoma_serve::sched`).
#[cfg(feature = "fault-inject")]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(feature = "fault-inject")]
mod armed {
    use super::{mix, site, FaultPlan};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard};

    /// Process-wide arm flag: hooks pay one relaxed load when no plan is
    /// installed (worker threads are spawned by the server, so the state
    /// is process-global, not thread-local).
    static ARMED: AtomicBool = AtomicBool::new(false);

    struct State {
        plan: FaultPlan,
        /// One decision counter per site: each hook execution consumes
        /// exactly one draw, so serial request sequences replay.
        counters: [u64; site::COUNT],
        /// Faults actually injected per site (test assertions).
        injected: [u64; site::COUNT],
    }

    static STATE: Mutex<Option<State>> = Mutex::new(None);

    fn lock() -> MutexGuard<'static, Option<State>> {
        match STATE.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Guard returned by [`install`]; disarms the process on drop so one
    /// chaos schedule never leaks into the next.
    pub struct Installed {
        _priv: (),
    }

    impl Drop for Installed {
        fn drop(&mut self) {
            ARMED.store(false, Ordering::SeqCst);
            *lock() = None;
        }
    }

    /// Arm fault injection process-wide with `plan`. The previous plan
    /// (if any) is replaced; counters restart from zero.
    #[must_use]
    pub fn install(plan: FaultPlan) -> Installed {
        *lock() = Some(State {
            plan,
            counters: [0; site::COUNT],
            injected: [0; site::COUNT],
        });
        ARMED.store(true, Ordering::SeqCst);
        Installed { _priv: () }
    }

    /// Draw `site`'s next decision: true = inject a fault here.
    pub fn fire(s: u32) -> bool {
        if !ARMED.load(Ordering::Relaxed) {
            return false;
        }
        let mut g = lock();
        let Some(st) = g.as_mut() else { return false };
        let i = s as usize;
        if i >= site::COUNT {
            return false;
        }
        let rate = st.plan.rates[i];
        if rate == 0 {
            return false;
        }
        let counter = st.counters[i];
        st.counters[i] += 1;
        let hit = mix(st.plan.seed ^ ((s as u64) << 32) ^ counter) % 1000 < rate as u64;
        if hit {
            st.injected[i] += 1;
        }
        hit
    }

    /// Faults injected at `site` since the current plan was installed.
    pub fn injected(s: u32) -> u64 {
        lock()
            .as_ref()
            .and_then(|st| st.injected.get(s as usize).copied())
            .unwrap_or(0)
    }

    /// Total faults injected across all sites under the current plan.
    pub fn injected_total() -> u64 {
        lock()
            .as_ref()
            .map(|st| st.injected.iter().sum())
            .unwrap_or(0)
    }
}

#[cfg(feature = "fault-inject")]
pub use armed::{injected, injected_total, install, Installed};

/// Draw the next decision for `site`: should a fault be injected here?
/// Always `false` without the `fault-inject` feature (and compiled away).
#[cfg(feature = "fault-inject")]
#[inline]
pub fn fire(site: u32) -> bool {
    armed::fire(site)
}

/// Draw the next decision for `site`: should a fault be injected here?
/// Always `false` without the `fault-inject` feature (and compiled away).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn fire(_site: u32) -> bool {
    false
}

/// A transient I/O error for `site`, when its decision fires. The kind is
/// `Interrupted` — classified retryable by every consumer.
#[inline]
pub fn transient_io(site: u32) -> Option<std::io::Error> {
    if fire(site) {
        Some(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("injected transient fault (site {site})"),
        ))
    } else {
        None
    }
}

/// Deterministically stall for a few hundred microseconds when `site`'s
/// decision fires — the "slow read" / "stalled client" fault shape, which
/// must perturb timing without changing results.
#[inline]
pub fn stall(site: u32) {
    if fire(site) {
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_hooks_never_fire() {
        assert!(!fire(site::SEG_READ));
        assert!(transient_io(site::SEG_WRITE).is_none());
    }

    #[test]
    fn seeded_schedule_replays_exactly() {
        let draw = |seed: u64| -> Vec<bool> {
            let _g = install(FaultPlan::new(seed).with_rate(site::SEG_READ, 250));
            (0..64).map(|_| fire(site::SEG_READ)).collect()
        };
        let a = draw(7);
        let b = draw(7);
        let c = draw(8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn rates_bound_behavior_and_counters_track() {
        {
            let _g = install(FaultPlan::new(1).with_uniform_rate(1000));
            for _ in 0..10 {
                assert!(fire(site::BROKER_LEAD));
            }
            assert_eq!(injected(site::BROKER_LEAD), 10);
            assert_eq!(injected_total(), 10);
        }
        // Guard dropped: disarmed again.
        assert!(!fire(site::BROKER_LEAD));
        assert_eq!(injected_total(), 0);
        let _g = install(FaultPlan::new(2));
        assert!(!fire(site::SEG_READ), "zero-rate site never fires");
    }

    #[test]
    fn sites_decorrelate() {
        let _g = install(FaultPlan::new(3).with_uniform_rate(500));
        let a: Vec<bool> = (0..64).map(|_| fire(site::SEG_READ)).collect();
        let b: Vec<bool> = (0..64).map(|_| fire(site::SEG_WRITE)).collect();
        assert_ne!(a, b);
    }
}

//! Architecture specifications **A** (paper §VII-A).
//!
//! The paper varies: conv layers in {1, 2, 4}, conv nodes per layer in
//! {16, 32}, dense nodes in {16, 32, 64} — 18 architectures.

use tahoma_imagery::Representation;
use tahoma_nn::{CnnSpec, Shape};

/// Paper values for the number of convolutional layers.
pub const PAPER_CONV_LAYERS: [usize; 3] = [1, 2, 4];
/// Paper values for convolutional nodes per layer.
pub const PAPER_CONV_NODES: [usize; 2] = [16, 32];
/// Paper values for dense-layer nodes.
pub const PAPER_DENSE_NODES: [usize; 3] = [16, 32, 64];

/// One point in the architecture hyperparameter space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchSpec {
    /// Number of conv->relu->maxpool blocks.
    pub conv_layers: usize,
    /// Output channels of every conv layer.
    pub conv_nodes: usize,
    /// Units in the fully connected ReLU layer.
    pub dense_nodes: usize,
}

impl ArchSpec {
    /// The paper's 18 architectures, in deterministic order.
    pub fn all_paper() -> Vec<ArchSpec> {
        let mut out = Vec::with_capacity(18);
        for &conv_layers in &PAPER_CONV_LAYERS {
            for &conv_nodes in &PAPER_CONV_NODES {
                for &dense_nodes in &PAPER_DENSE_NODES {
                    out.push(ArchSpec {
                        conv_layers,
                        conv_nodes,
                        dense_nodes,
                    });
                }
            }
        }
        out
    }

    /// Stable identifier like `"c4x32-d64"`.
    pub fn tag(&self) -> String {
        format!(
            "c{}x{}-d{}",
            self.conv_layers, self.conv_nodes, self.dense_nodes
        )
    }

    /// Relative representational capacity used by the surrogate accuracy
    /// model: grows with depth fastest (each block both adds nonlinearity
    /// and doubles the receptive field), then width, then the dense head.
    /// Normalized so the smallest paper architecture scores 1.0.
    pub fn capacity_score(&self) -> f64 {
        (self.conv_layers as f64).powf(0.55)
            * (self.conv_nodes as f64 / 16.0).powf(0.30)
            * (self.dense_nodes as f64 / 16.0).powf(0.12)
    }

    /// The `tahoma-nn` spec for this architecture on a given input
    /// representation.
    pub fn cnn_spec(&self, input: Representation) -> CnnSpec {
        CnnSpec {
            input: Shape::new(input.mode.channels(), input.size, input.size),
            conv_channels: vec![self.conv_nodes; self.conv_layers],
            kernel: 3,
            dense_units: self.dense_nodes,
        }
    }

    /// Inference FLOPs on a given input (delegates to the `CnnSpec` FLOPs
    /// model, which is tested to agree with built networks).
    pub fn flops(&self, input: Representation) -> u64 {
        self.cnn_spec(input).flops()
    }
}

impl std::fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_imagery::ColorMode;

    #[test]
    fn eighteen_paper_architectures() {
        let all = ArchSpec::all_paper();
        assert_eq!(all.len(), 18);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 18);
    }

    #[test]
    fn capacity_is_monotone_in_each_axis() {
        let base = ArchSpec {
            conv_layers: 1,
            conv_nodes: 16,
            dense_nodes: 16,
        };
        assert!((base.capacity_score() - 1.0).abs() < 1e-12);
        let deeper = ArchSpec {
            conv_layers: 2,
            ..base
        };
        let wider = ArchSpec {
            conv_nodes: 32,
            ..base
        };
        let denser = ArchSpec {
            dense_nodes: 64,
            ..base
        };
        assert!(deeper.capacity_score() > base.capacity_score());
        assert!(wider.capacity_score() > base.capacity_score());
        assert!(denser.capacity_score() > base.capacity_score());
        // Depth matters more than width, width more than the dense head.
        assert!(deeper.capacity_score() > wider.capacity_score());
        assert!(wider.capacity_score() > denser.capacity_score());
    }

    #[test]
    fn flops_increase_with_input_size_and_depth() {
        let arch = ArchSpec {
            conv_layers: 2,
            conv_nodes: 16,
            dense_nodes: 32,
        };
        let small = arch.flops(Representation::new(30, ColorMode::Gray));
        let big = arch.flops(Representation::new(224, ColorMode::Rgb));
        assert!(big > small * 50, "{big} vs {small}");
        let deep = ArchSpec {
            conv_layers: 4,
            conv_nodes: 16,
            dense_nodes: 32,
        };
        assert!(
            deep.flops(Representation::new(60, ColorMode::Rgb))
                > arch.flops(Representation::new(60, ColorMode::Rgb))
        );
    }

    #[test]
    fn grayscale_deep_vs_color_shallow_tradeoff_exists() {
        // The paper's §I M1/M2 example: a deeper grayscale model can cost
        // fewer FLOPs than a shallower full-color one at the same size.
        let m1 = ArchSpec {
            conv_layers: 1,
            conv_nodes: 32,
            dense_nodes: 32,
        }; // color, shallow
        let m2 = ArchSpec {
            conv_layers: 2,
            conv_nodes: 16,
            dense_nodes: 32,
        }; // gray, deeper
        let f1 = m1.flops(Representation::new(120, ColorMode::Rgb));
        let f2 = m2.flops(Representation::new(120, ColorMode::Gray));
        assert!(
            f2 < f1,
            "gray-deep {f2} should cost less than color-shallow {f1}"
        );
    }

    #[test]
    fn cnn_spec_builds_across_the_design_space() {
        // Full 360-point weight initialization is exercised (in release) by
        // the trainer integration tests; here cover the extremes of both
        // axes, which is where pooling/shape bugs would appear.
        let small = Representation::new(30, ColorMode::Gray);
        for arch in ArchSpec::all_paper() {
            assert!(arch.cnn_spec(small).build(1).is_ok(), "{arch} on {small}");
        }
        let tiny_arch = ArchSpec {
            conv_layers: 4,
            conv_nodes: 16,
            dense_nodes: 16,
        };
        for rep in Representation::paper_set() {
            assert!(
                tiny_arch.cnn_spec(rep).build(1).is_ok(),
                "{tiny_arch} on {rep}"
            );
        }
    }

    #[test]
    fn tag_format() {
        let a = ArchSpec {
            conv_layers: 4,
            conv_nodes: 32,
            dense_nodes: 64,
        };
        assert_eq!(a.tag(), "c4x32-d64");
    }
}

//! Transform-family subsets for the input-transformation ablation
//! (paper §VII-E, Fig. 10).

use tahoma_imagery::{ColorMode, Representation};

/// Which input transformations the cascade set may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformSet {
    /// No transformations: only full-size, full-color inputs.
    None,
    /// Only color-channel extraction / grayscale (full size).
    ColorVariations,
    /// Only resolution reduction (full color).
    Resizing,
    /// The full TAHOMA transform space.
    Full,
}

impl TransformSet {
    /// All four ablation arms in the paper's order.
    pub const ALL: [TransformSet; 4] = [
        TransformSet::None,
        TransformSet::ColorVariations,
        TransformSet::Resizing,
        TransformSet::Full,
    ];

    /// Display name matching Fig. 10's legend.
    pub fn name(self) -> &'static str {
        match self {
            TransformSet::None => "None",
            TransformSet::ColorVariations => "Color Variations",
            TransformSet::Resizing => "Resizing",
            TransformSet::Full => "Full",
        }
    }

    /// The representations this arm may feed to models.
    pub fn representations(self) -> Vec<Representation> {
        match self {
            TransformSet::None => vec![Representation::full()],
            TransformSet::ColorVariations => ColorMode::ALL
                .iter()
                .map(|&m| Representation::new(tahoma_imagery::repr::FULL_SIZE, m))
                .collect(),
            TransformSet::Resizing => tahoma_imagery::repr::PAPER_SIZES
                .iter()
                .map(|&s| Representation::new(s, ColorMode::Rgb))
                .collect(),
            TransformSet::Full => Representation::paper_set(),
        }
    }
}

impl std::fmt::Display for TransformSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_sizes() {
        assert_eq!(TransformSet::None.representations().len(), 1);
        assert_eq!(TransformSet::ColorVariations.representations().len(), 5);
        assert_eq!(TransformSet::Resizing.representations().len(), 4);
        assert_eq!(TransformSet::Full.representations().len(), 20);
    }

    #[test]
    fn subsets_are_contained_in_full() {
        let full: std::collections::HashSet<_> =
            TransformSet::Full.representations().into_iter().collect();
        for set in [
            TransformSet::None,
            TransformSet::ColorVariations,
            TransformSet::Resizing,
        ] {
            for rep in set.representations() {
                assert!(full.contains(&rep), "{set}: {rep} not in Full");
            }
        }
    }

    #[test]
    fn none_is_identity_only() {
        let reps = TransformSet::None.representations();
        assert!(reps[0].is_identity());
    }
}

//! Reference deep models: the expensive classifiers cascades terminate in.

use crate::variant::{ModelId, ModelKind, ModelVariant};
use tahoma_imagery::Representation;

/// The fine-tuned ResNet50 reference (paper §VII-A: pre-trained on ImageNet,
/// final layers retrained per binary predicate). Consumes the identity
/// representation.
pub fn resnet50(id: ModelId) -> ModelVariant {
    ModelVariant {
        id,
        kind: ModelKind::ResNet50,
        input: Representation::full(),
    }
}

/// The YOLOv2-class detector used as the terminal classifier in the NoScope
/// comparison (§VII-C). Also consumes the full frame.
pub fn yolov2(id: ModelId) -> ModelVariant {
    ModelVariant {
        id,
        kind: ModelKind::YoloV2,
        input: Representation::full(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_consume_full_frames() {
        assert!(resnet50(ModelId(0)).input.is_identity());
        assert!(yolov2(ModelId(1)).input.is_identity());
    }

    #[test]
    fn references_are_flagged() {
        assert!(resnet50(ModelId(0)).is_reference());
        assert!(yolov2(ModelId(0)).is_reference());
    }
}

//! The binary-predicate registry (paper Table II) with the per-predicate
//! difficulty parameters that drive the surrogate accuracy model.

use tahoma_imagery::{ColorMode, ObjectKind};

/// One `contains_object(...)` predicate and its intrinsic hardness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredicateSpec {
    /// Target category (carries name + ImageNet synset id).
    pub kind: ObjectKind,
    /// Maximum achievable latent separation `d_max`: the separation an
    /// unboundedly capable model would reach on this category's synthetic
    /// scenes. Spread across predicates so the experiments cover easy
    /// (komondor-like, strong texture) through hard (ferret-like, low
    /// contrast and generic shape) tasks, as the paper's per-predicate
    /// plots do.
    pub d_max: f64,
}

impl PredicateSpec {
    /// All ten predicates in Table II order.
    pub fn all_paper() -> Vec<PredicateSpec> {
        ObjectKind::ALL
            .iter()
            .map(|&k| PredicateSpec::for_kind(k))
            .collect()
    }

    /// The spec for one category.
    pub fn for_kind(kind: ObjectKind) -> PredicateSpec {
        let d_max = match kind {
            ObjectKind::Acorn => 3.6,
            ObjectKind::Amphibian => 3.0,
            ObjectKind::Cloak => 3.3,
            ObjectKind::Coho => 2.8,
            ObjectKind::Fence => 4.2,
            ObjectKind::Ferret => 2.6,
            ObjectKind::Komondor => 4.6,
            ObjectKind::Pinwheel => 4.4,
            ObjectKind::Scorpion => 3.1,
            ObjectKind::Wallet => 2.9,
        };
        PredicateSpec { kind, d_max }
    }

    /// How much information a color mode retains *for this category*.
    ///
    /// Extends [`ColorMode::information_factor`] with a per-category channel
    /// affinity derived from the glyph's color signature: an amphibian
    /// (green glyph) loses little in the green channel but a lot in blue; a
    /// komondor (near-white) survives any single channel.
    pub fn channel_factor(&self, mode: ColorMode) -> f64 {
        let base = mode.information_factor();
        let tweak = match (self.kind, mode) {
            (_, ColorMode::Rgb) | (_, ColorMode::Gray) => 0.0,
            (ObjectKind::Amphibian, ColorMode::Green) => 0.08,
            (ObjectKind::Amphibian, ColorMode::Blue) => -0.06,
            (ObjectKind::Coho, ColorMode::Red) => 0.08,
            (ObjectKind::Coho, ColorMode::Blue) => -0.05,
            (ObjectKind::Pinwheel, ColorMode::Red) => 0.06,
            (ObjectKind::Pinwheel, ColorMode::Green) => -0.04,
            (ObjectKind::Cloak, ColorMode::Blue) => 0.07,
            (ObjectKind::Komondor, _) => 0.05, // bright glyph, any channel works
            (ObjectKind::Acorn, ColorMode::Red) => 0.05,
            (ObjectKind::Scorpion, ColorMode::Red) => 0.04,
            _ => 0.0,
        };
        (base + tweak).clamp(0.3, 1.0)
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_predicates_cover_table2() {
        let all = PredicateSpec::all_paper();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].name(), "acorn");
        assert_eq!(all[9].name(), "wallet");
    }

    #[test]
    fn difficulty_spread_is_meaningful() {
        let all = PredicateSpec::all_paper();
        let min = all.iter().map(|p| p.d_max).fold(f64::INFINITY, f64::min);
        let max = all.iter().map(|p| p.d_max).fold(0.0, f64::max);
        assert!(min >= 2.0, "easiest possible predicate too hard: {min}");
        assert!(max <= 5.0);
        assert!(max - min >= 1.5, "insufficient spread {min}..{max}");
    }

    #[test]
    fn channel_affinity_respects_glyph_colors() {
        let amphibian = PredicateSpec::for_kind(ObjectKind::Amphibian);
        assert!(
            amphibian.channel_factor(ColorMode::Green) > amphibian.channel_factor(ColorMode::Blue)
        );
        let coho = PredicateSpec::for_kind(ObjectKind::Coho);
        assert!(coho.channel_factor(ColorMode::Red) > coho.channel_factor(ColorMode::Blue));
    }

    #[test]
    fn rgb_never_loses_information() {
        for p in PredicateSpec::all_paper() {
            for mode in ColorMode::ALL {
                assert!(
                    p.channel_factor(ColorMode::Rgb) >= p.channel_factor(mode),
                    "{}: {mode}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn factors_stay_in_unit_range() {
        for p in PredicateSpec::all_paper() {
            for mode in ColorMode::ALL {
                let f = p.channel_factor(mode);
                assert!((0.3..=1.0).contains(&f));
            }
        }
    }
}

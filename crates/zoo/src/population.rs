//! Evaluation populations: the (label, difficulty) view of a dataset split.
//!
//! The optimizer never needs pixels once models have been scored — it needs
//! each image's ground truth and, for the surrogate path, its shared
//! difficulty. A [`Population`] is that view. It can be extracted from a
//! rendered [`Dataset`] (real path) or synthesized directly at paper scale
//! without rendering 224x224 pixels (surrogate path) — the difficulty
//! distribution matches the renderer's (a weighted sum of independent
//! uniform hardness knobs).

use tahoma_imagery::{Dataset, ObjectKind};
use tahoma_mathx::DetRng;

/// Labels and difficulties for one split, in item order.
#[derive(Debug, Clone)]
pub struct Population {
    /// Stable per-item ids.
    pub ids: Vec<u64>,
    /// Ground-truth labels.
    pub labels: Vec<bool>,
    /// Per-item difficulty in [0, 1], shared by all models.
    pub difficulties: Vec<f32>,
}

impl Population {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Count of positive items.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Extract the population view of a rendered dataset.
    pub fn from_dataset(ds: &Dataset) -> Population {
        Population {
            ids: ds.items.iter().map(|i| i.id).collect(),
            labels: ds.items.iter().map(|i| i.label).collect(),
            difficulties: ds.items.iter().map(|i| i.difficulty).collect(),
        }
    }

    /// Synthesize a balanced population without rendering pixels.
    ///
    /// Difficulties follow the renderer's recipe: `0.40*u1 + 0.30*u2 +
    /// 0.15*u3 + 0.15*u4` over independent uniforms, matching
    /// `SceneRenderer::difficulty` in distribution.
    pub fn synthetic(kind: ObjectKind, n: usize, seed: u64) -> Population {
        let mut rng = DetRng::from_coords(seed ^ 0xB0B0, kind.index() as u64);
        let mut ids = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut difficulties = Vec::with_capacity(n);
        for i in 0..n {
            ids.push(i as u64);
            labels.push(i % 2 == 0 && i < n - (n % 2));
            let d = 0.40 * rng.uniform()
                + 0.30 * rng.uniform()
                + 0.15 * rng.uniform()
                + 0.15 * rng.uniform();
            difficulties.push(d as f32);
        }
        Population {
            ids,
            labels,
            difficulties,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_imagery::DatasetSpec;

    #[test]
    fn synthetic_is_balanced_and_deterministic() {
        let a = Population::synthetic(ObjectKind::Fence, 100, 7);
        let b = Population::synthetic(ObjectKind::Fence, 100, 7);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.difficulties, b.difficulties);
        assert_eq!(a.positives(), 50);
    }

    #[test]
    fn synthetic_differs_across_kinds_and_seeds() {
        let a = Population::synthetic(ObjectKind::Fence, 50, 7);
        let b = Population::synthetic(ObjectKind::Acorn, 50, 7);
        let c = Population::synthetic(ObjectKind::Fence, 50, 8);
        assert_ne!(a.difficulties, b.difficulties);
        assert_ne!(a.difficulties, c.difficulties);
    }

    #[test]
    fn difficulties_are_in_unit_interval_with_sane_moments() {
        let p = Population::synthetic(ObjectKind::Coho, 10_000, 3);
        let ds: Vec<f64> = p.difficulties.iter().map(|&d| d as f64).collect();
        for &d in &ds {
            assert!((0.0..=1.0).contains(&d));
        }
        let mean = tahoma_mathx::mean(&ds);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let sd = tahoma_mathx::std_dev(&ds);
        assert!((0.1..0.25).contains(&sd), "sd {sd}");
    }

    #[test]
    fn from_dataset_matches_items() {
        let bundle = DatasetSpec::tiny(ObjectKind::Cloak, 16, 5).generate();
        let p = Population::from_dataset(&bundle.eval);
        assert_eq!(p.len(), bundle.eval.len());
        assert_eq!(p.positives(), bundle.eval.positives());
        assert_eq!(p.ids[0], bundle.eval.items[0].id);
    }
}

//! Calibrated surrogate classifier family (DESIGN.md §2.4).
//!
//! Training 360 CNNs x 10 predicates is a multi-GPU-day job the paper ran
//! once; the optimizer itself only consumes each model's *scores* on the
//! config/eval splits. This module generates those scores from a latent
//! signal-detection model:
//!
//! ```text
//! margin(model, image) = d(model)/2 * (1 - rho * difficulty(image))
//! z = sign(label) * margin + eps,   eps ~ N(0, noise_sd)   per (model, image)
//! score = sigmoid(gain * z)
//! ```
//!
//! where the separation `d` grows with architecture capacity x input
//! informativeness and saturates at the predicate's `d_max`. The difficulty
//! term is *shared across models* — hard images are hard for everyone —
//! which is exactly the correlation structure that limits how much a cascade
//! can gain; assuming independent errors would overstate TAHOMA's win (this
//! is ablated in the benchmark suite).

use crate::population::Population;
use crate::predicates::PredicateSpec;
use crate::variant::{ModelKind, ModelVariant};
use tahoma_imagery::Representation;
use tahoma_mathx::{logistic, normal_cdf, split_seed, DetRng};

/// Tunable parameters of the surrogate family. Defaults are calibrated so
/// specialized-model accuracy spans ≈0.6-0.95 and reference-model accuracy
/// ≈0.9-0.97 across the predicate difficulty spread — the ranges visible in
/// the paper's Figs. 5 and 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogateParams {
    /// Saturation rate of separation in capacity x info.
    pub saturation_k: f64,
    /// Difficulty penalty: at `difficulty = 1/rho` the margin reaches zero.
    pub rho: f64,
    /// Standard deviation of the per-(model, image) noise.
    pub noise_sd: f64,
    /// Logit sharpness of the score mapping (CNNs are overconfident).
    pub gain: f64,
    /// Relative per-model idiosyncratic bias on separation.
    pub model_bias_sd: f64,
    /// Resolution scale of the input-information factor (pixels).
    pub size_scale: f64,
    /// ResNet50 separation: `d_max * mul + add`.
    pub resnet_mul: f64,
    /// Additive part of the ResNet50 separation.
    pub resnet_add: f64,
}

impl Default for SurrogateParams {
    fn default() -> Self {
        SurrogateParams {
            saturation_k: 1.1,
            rho: 1.05,
            noise_sd: 0.6,
            gain: 3.0,
            model_bias_sd: 0.06,
            size_scale: 55.0,
            resnet_mul: 1.08,
            resnet_add: 0.35,
        }
    }
}

impl SurrogateParams {
    /// Variant with independent errors (`rho = 0`): the dishonest regime
    /// used only by the correlation-ablation bench.
    pub fn uncorrelated() -> SurrogateParams {
        SurrogateParams {
            rho: 0.0,
            ..SurrogateParams::default()
        }
    }
}

/// Salt distinguishing config-split noise from eval-split noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Threshold-calibration split.
    Config,
    /// Cascade-evaluation split.
    Eval,
}

impl Split {
    fn salt(self) -> u64 {
        match self {
            Split::Config => 0xC0F1,
            Split::Eval => 0xE7A1,
        }
    }
}

/// Deterministic score generator for one predicate.
#[derive(Debug, Clone)]
pub struct SurrogateScorer {
    /// The predicate being classified.
    pub pred: PredicateSpec,
    /// Family parameters.
    pub params: SurrogateParams,
    /// Root seed.
    pub seed: u64,
}

impl SurrogateScorer {
    /// Create a scorer with default calibration.
    pub fn new(pred: PredicateSpec, seed: u64) -> SurrogateScorer {
        SurrogateScorer {
            pred,
            params: SurrogateParams::default(),
            seed,
        }
    }

    /// Input informativeness in (0, 1]: saturating in resolution, scaled by
    /// the predicate-aware channel factor.
    pub fn info_score(&self, input: Representation) -> f64 {
        let size_factor = 1.0 - (-(input.size as f64) / self.params.size_scale).exp();
        size_factor * self.pred.channel_factor(input.mode)
    }

    /// Latent separation `d` for a variant, including its deterministic
    /// idiosyncratic bias. Always positive.
    pub fn separation(&self, variant: &ModelVariant) -> f64 {
        let base = match variant.kind {
            ModelKind::Cnn(arch) => {
                let raw = arch.capacity_score() * self.info_score(variant.input);
                self.pred.d_max * (1.0 - (-self.params.saturation_k * raw).exp())
            }
            ModelKind::ResNet50 => {
                self.pred.d_max * self.params.resnet_mul + self.params.resnet_add
            }
            ModelKind::YoloV2 => self.pred.d_max * 1.04 + 0.25,
        };
        let mut rng = DetRng::from_coords(split_seed(self.seed, 0xB1A5), variant.id.0 as u64);
        let bias = rng.normal(0.0, self.params.model_bias_sd);
        (base * (1.0 + bias)).max(0.05)
    }

    /// Score of one (model, image) pair. Deterministic in all arguments.
    /// (One [`VariantStream`] derivation per call — callers scoring many
    /// items against one variant should hoist it via
    /// [`SurrogateScorer::variant_stream`].)
    pub fn score(
        &self,
        variant: &ModelVariant,
        split: Split,
        item_id: u64,
        label: bool,
        difficulty: f32,
    ) -> f32 {
        self.variant_stream(variant, split)
            .score(item_id, label, difficulty)
    }

    /// Precompute the per-(variant, split) scoring context — the
    /// separation `d` (a seeded RNG draw plus exponentials) and the split
    /// noise-stream seed — so items can then be scored with per-item work
    /// only. This is the batch-major layout the `tahoma-nn` inference path
    /// uses: variants outer, items inner, nothing re-derived per item.
    pub fn variant_stream(&self, variant: &ModelVariant, split: Split) -> VariantStream {
        VariantStream {
            half_d: 0.5 * self.separation(variant),
            stream: split_seed(split_seed(self.seed, split.salt()), variant.id.0 as u64),
            rho: self.params.rho,
            noise_sd: self.params.noise_sd,
            gain: self.params.gain,
        }
    }

    /// Batch-major scoring of a whole population into `out`, in item
    /// order. Bit-identical to mapping [`SurrogateScorer::score`] over the
    /// items, but the per-variant work is hoisted once through
    /// [`SurrogateScorer::variant_stream`] — what makes scoring a
    /// 360-model family over 1000-item splits cheap enough to rebuild
    /// repositories at query time.
    pub fn score_population(
        &self,
        variant: &ModelVariant,
        split: Split,
        pop: &Population,
        out: &mut Vec<f32>,
    ) {
        let stream = self.variant_stream(variant, split);
        out.clear();
        out.reserve(pop.len());
        out.extend(
            (0..pop.len()).map(|i| stream.score(pop.ids[i], pop.labels[i], pop.difficulties[i])),
        );
    }

    /// Scores for a whole population, in item order (an owning wrapper
    /// over [`SurrogateScorer::score_population`]).
    pub fn scores(&self, variant: &ModelVariant, split: Split, pop: &Population) -> Vec<f32> {
        let mut out = Vec::new();
        self.score_population(variant, split, pop, &mut out);
        out
    }

    /// Analytic expected accuracy at threshold 0.5 over a population:
    /// mean over items of `Phi(margin / noise_sd)`.
    pub fn expected_accuracy(&self, variant: &ModelVariant, pop: &Population) -> f64 {
        let d = self.separation(variant);
        let acc: f64 = pop
            .difficulties
            .iter()
            .map(|&diff| {
                let margin = 0.5 * d * (1.0 - self.params.rho * diff as f64);
                normal_cdf(margin / self.params.noise_sd)
            })
            .sum();
        acc / pop.len().max(1) as f64
    }
}

/// Frozen per-(variant, split) scoring context (see
/// [`SurrogateScorer::variant_stream`]): everything derivable before the
/// items are known. Scoring an item from here is one margin multiply plus
/// one noise draw — the batch-major inner loop of repository building and
/// of the streaming cascade classifiers.
#[derive(Debug, Clone, Copy)]
pub struct VariantStream {
    half_d: f64,
    stream: u64,
    rho: f64,
    noise_sd: f64,
    gain: f64,
}

impl VariantStream {
    /// Score one item; bit-identical to [`SurrogateScorer::score`] with
    /// the originating variant and split. The noise draw uses the
    /// single-variate Box-Muller path ([`DetRng::normal_once`], bitwise
    /// identical to `normal` on the fresh per-item generator) — this is
    /// the innermost loop of every cascade executor, and the cached spare
    /// of the full transform is unreachable from a generator that scores
    /// one item and dies.
    pub fn score(&self, item_id: u64, label: bool, difficulty: f32) -> f32 {
        let margin = self.half_d * (1.0 - self.rho * difficulty as f64);
        let sign = if label { 1.0 } else { -1.0 };
        let mut rng = DetRng::from_coords(self.stream, item_id);
        let z = sign * margin + rng.normal_once(0.0, self.noise_sd);
        logistic(self.gain * z) as f32
    }

    /// Score a pack of `(item_id, label, difficulty)` triples into `out`
    /// (appending, in pack order) — the batch inner loop of the vectorized
    /// cascade executors. Bit-identical to mapping
    /// [`VariantStream::score`] over the pack; the point is that the
    /// per-variant derivation behind this stream happened exactly once,
    /// however many packs it scores.
    pub fn score_into(&self, items: impl Iterator<Item = (u64, bool, f32)>, out: &mut Vec<f32>) {
        out.extend(items.map(|(id, label, difficulty)| self.score(id, label, difficulty)));
    }
}

/// Measured accuracy at threshold 0.5 of a score vector against labels.
pub fn accuracy_at_half(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    if scores.is_empty() {
        return 0.0;
    }
    let correct = scores
        .iter()
        .zip(labels)
        .filter(|(&s, &l)| (s >= 0.5) == l)
        .count();
    correct as f64 / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchSpec;
    use crate::variant::{paper_variants, ModelId};
    use tahoma_imagery::{ColorMode, ObjectKind};

    fn scorer(kind: ObjectKind) -> SurrogateScorer {
        SurrogateScorer::new(PredicateSpec::for_kind(kind), 42)
    }

    fn pop(kind: ObjectKind) -> Population {
        Population::synthetic(kind, 1000, 9)
    }

    fn variant(arch: ArchSpec, input: Representation, id: u32) -> ModelVariant {
        ModelVariant {
            id: ModelId(id),
            kind: ModelKind::Cnn(arch),
            input,
        }
    }

    #[test]
    fn scores_are_deterministic() {
        let s = scorer(ObjectKind::Fence);
        let p = pop(ObjectKind::Fence);
        let v = paper_variants()[17];
        assert_eq!(s.scores(&v, Split::Eval, &p), s.scores(&v, Split::Eval, &p));
    }

    #[test]
    fn batch_major_scoring_matches_per_item_scoring_bitwise() {
        let s = scorer(ObjectKind::Scorpion);
        let p = pop(ObjectKind::Scorpion);
        for v in [paper_variants()[0], paper_variants()[213]] {
            for split in [Split::Config, Split::Eval] {
                let batched = s.scores(&v, split, &p);
                let per_item: Vec<f32> = (0..p.len())
                    .map(|i| s.score(&v, split, p.ids[i], p.labels[i], p.difficulties[i]))
                    .collect();
                assert_eq!(batched, per_item, "{} {split:?}", v.tag());
            }
        }
    }

    #[test]
    fn score_into_matches_per_item_scoring_bitwise() {
        let s = scorer(ObjectKind::Fence);
        let p = pop(ObjectKind::Fence);
        let stream = s.variant_stream(&paper_variants()[42], Split::Eval);
        let mut batched = vec![f32::NAN; 3]; // score_into appends after junk
        stream.score_into(
            (0..p.len()).map(|i| (p.ids[i], p.labels[i], p.difficulties[i])),
            &mut batched,
        );
        let per_item: Vec<f32> = (0..p.len())
            .map(|i| stream.score(p.ids[i], p.labels[i], p.difficulties[i]))
            .collect();
        assert_eq!(&batched[3..], per_item.as_slice());
    }

    #[test]
    fn config_and_eval_noise_streams_differ() {
        let s = scorer(ObjectKind::Fence);
        let p = pop(ObjectKind::Fence);
        let v = paper_variants()[17];
        assert_ne!(
            s.scores(&v, Split::Eval, &p),
            s.scores(&v, Split::Config, &p)
        );
    }

    #[test]
    fn positives_score_higher_on_average() {
        let s = scorer(ObjectKind::Komondor);
        let p = pop(ObjectKind::Komondor);
        let v = paper_variants()[100];
        let scores = s.scores(&v, Split::Eval, &p);
        let (mut pos, mut neg) = (Vec::new(), Vec::new());
        for (i, &sc) in scores.iter().enumerate() {
            if p.labels[i] {
                pos.push(sc as f64)
            } else {
                neg.push(sc as f64)
            }
        }
        assert!(tahoma_mathx::mean(&pos) > tahoma_mathx::mean(&neg) + 0.2);
    }

    #[test]
    fn capacity_and_info_raise_accuracy() {
        let s = scorer(ObjectKind::Scorpion);
        let p = pop(ObjectKind::Scorpion);
        let weak = variant(
            ArchSpec {
                conv_layers: 1,
                conv_nodes: 16,
                dense_nodes: 16,
            },
            Representation::new(30, ColorMode::Blue),
            0,
        );
        let strong = variant(
            ArchSpec {
                conv_layers: 4,
                conv_nodes: 32,
                dense_nodes: 64,
            },
            Representation::new(224, ColorMode::Rgb),
            1,
        );
        let weak_acc = accuracy_at_half(&s.scores(&weak, Split::Eval, &p), &p.labels);
        let strong_acc = accuracy_at_half(&s.scores(&strong, Split::Eval, &p), &p.labels);
        assert!(
            strong_acc > weak_acc + 0.05,
            "strong {strong_acc} vs weak {weak_acc}"
        );
    }

    #[test]
    fn accuracy_ranges_match_calibration_targets() {
        // Across all predicates the specialized family should span roughly
        // 0.55..0.97 with references above the specialized median.
        for pred in PredicateSpec::all_paper() {
            let s = SurrogateScorer::new(pred, 7);
            let p = Population::synthetic(pred.kind, 600, 11);
            let mut accs: Vec<f64> = Vec::new();
            for v in paper_variants().iter().step_by(13) {
                accs.push(accuracy_at_half(&s.scores(v, Split::Eval, &p), &p.labels));
            }
            let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = accs.iter().cloned().fold(0.0, f64::max);
            assert!(
                min > 0.5,
                "{}: weakest model below chance: {min}",
                pred.name()
            );
            assert!(
                max < 0.995,
                "{}: strongest model implausibly perfect",
                pred.name()
            );
            assert!(
                max - min > 0.08,
                "{}: no accuracy spread ({min}..{max})",
                pred.name()
            );
        }
    }

    #[test]
    fn resnet_beats_median_specialized_model() {
        for kind in [ObjectKind::Ferret, ObjectKind::Fence] {
            let s = scorer(kind);
            let p = pop(kind);
            let resnet = ModelVariant {
                id: ModelId(360),
                kind: ModelKind::ResNet50,
                input: Representation::full(),
            };
            let r_acc = accuracy_at_half(&s.scores(&resnet, Split::Eval, &p), &p.labels);
            let mut accs: Vec<f64> = paper_variants()
                .iter()
                .step_by(11)
                .map(|v| accuracy_at_half(&s.scores(v, Split::Eval, &p), &p.labels))
                .collect();
            accs.sort_by(f64::total_cmp);
            let median = accs[accs.len() / 2];
            assert!(r_acc > median, "{kind}: resnet {r_acc} vs median {median}");
        }
    }

    #[test]
    fn errors_are_correlated_through_difficulty() {
        // Images misclassified by model A should be misclassified by model B
        // far above the independence baseline. Use strong models, where
        // errors concentrate on the shared hard images rather than the
        // per-model noise floor.
        let s = scorer(ObjectKind::Komondor);
        let p = pop(ObjectKind::Komondor);
        let a = paper_variants()[340];
        let b = paper_variants()[359];
        let sa = s.scores(&a, Split::Eval, &p);
        let sb = s.scores(&b, Split::Eval, &p);
        let wrong = |sc: &[f32], i: usize| (sc[i] >= 0.5) != p.labels[i];
        let n = p.len() as f64;
        let pa = (0..p.len()).filter(|&i| wrong(&sa, i)).count() as f64 / n;
        let pb = (0..p.len()).filter(|&i| wrong(&sb, i)).count() as f64 / n;
        let pab = (0..p.len())
            .filter(|&i| wrong(&sa, i) && wrong(&sb, i))
            .count() as f64
            / n;
        assert!(
            pab > 1.5 * pa * pb,
            "joint error {pab} not above independence {:.4}",
            pa * pb
        );
    }

    #[test]
    fn uncorrelated_variant_kills_the_correlation() {
        let mut s = scorer(ObjectKind::Wallet);
        s.params = SurrogateParams::uncorrelated();
        let p = pop(ObjectKind::Wallet);
        let a = paper_variants()[40];
        let b = paper_variants()[220];
        let sa = s.scores(&a, Split::Eval, &p);
        let sb = s.scores(&b, Split::Eval, &p);
        let wrong = |sc: &[f32], i: usize| (sc[i] >= 0.5) != p.labels[i];
        let n = p.len() as f64;
        let pa = (0..p.len()).filter(|&i| wrong(&sa, i)).count() as f64 / n;
        let pb = (0..p.len()).filter(|&i| wrong(&sb, i)).count() as f64 / n;
        let pab = (0..p.len())
            .filter(|&i| wrong(&sa, i) && wrong(&sb, i))
            .count() as f64
            / n;
        assert!(
            pab < 2.5 * pa * pb + 0.01,
            "rho=0 still correlated: joint {pab} vs {:.4}",
            pa * pb
        );
    }

    #[test]
    fn measured_accuracy_tracks_analytic_expectation() {
        let s = scorer(ObjectKind::Pinwheel);
        let p = Population::synthetic(ObjectKind::Pinwheel, 4000, 21);
        for v in [paper_variants()[5], paper_variants()[300]] {
            let measured = accuracy_at_half(&s.scores(&v, Split::Eval, &p), &p.labels);
            let expected = s.expected_accuracy(&v, &p);
            assert!(
                (measured - expected).abs() < 0.03,
                "{}: measured {measured} vs expected {expected}",
                v.tag()
            );
        }
    }

    #[test]
    fn separation_positive_for_all_paper_variants() {
        let s = scorer(ObjectKind::Ferret);
        for v in paper_variants() {
            assert!(s.separation(&v) > 0.0, "{}", v.tag());
        }
    }
}

//! The real training path: build a repository by actually training
//! `tahoma-nn` CNNs on rendered synthetic datasets.
//!
//! This is the paper's model-trainer component (Fig. 2) without any
//! substitution: images are transformed into each variant's representation,
//! networks are trained with minibatch Adam on the train split, and the
//! trained networks are scored on the config and eval splits. It runs at
//! reduced scale (smaller source images, fewer variants) — the examples and
//! integration tests use it to validate that the surrogate path's
//! qualitative structure (bigger nets and richer inputs score higher; hard
//! images fail everywhere) emerges from real gradient descent.

use crate::population::Population;
use crate::repository::{ModelEntry, ModelRepository};
use crate::variant::{ModelKind, ModelVariant};
use std::collections::HashMap;
use tahoma_costmodel::DeviceProfile;
use tahoma_imagery::engine::{TranscodeCosts, TranscodeEngine, TranscodePlan};
use tahoma_imagery::{Dataset, DatasetBundle, Representation};
use tahoma_nn::train::{accuracy, Example};
use tahoma_nn::{Adam, Trainer};

/// Training configuration for the real path.
#[derive(Debug, Clone)]
pub struct RealTrainConfig {
    /// Epochs per model.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Stop a model's training early below this mean epoch loss.
    pub early_stop_loss: f32,
    /// Seed for weight init and shuffling.
    pub seed: u64,
}

impl Default for RealTrainConfig {
    fn default() -> Self {
        RealTrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 0.005,
            early_stop_loss: 0.05,
            seed: 0xF17,
        }
    }
}

/// Transform every image of a split into each representation's flat
/// inputs: one lattice-planned transcode per image materializes the whole
/// representation set at once (shared luma plane, borrowed channel planes,
/// cached resize tables — see `tahoma_imagery::engine`), instead of
/// re-running the full pipeline per (image, representation) pair.
///
/// Inputs are standardized per image (zero mean / unit variance) — without
/// this, tiny CNNs on all-positive pixel inputs collapse to the constant
/// predictor (loss pinned at ln 2), the standard failure mode Keras'
/// preprocessing also guards against.
fn transformed_input_sets(
    ds: &Dataset,
    reps: &[Representation],
) -> HashMap<Representation, Vec<Vec<f32>>> {
    let mut out: HashMap<Representation, Vec<Vec<f32>>> = reps
        .iter()
        .map(|&r| (r, Vec::with_capacity(ds.items.len())))
        .collect();
    let mut engine = TranscodeEngine::new();
    // One plan per distinct image shape: a homogeneous dataset plans once,
    // and mixed-size datasets (every shape pattern, including alternating)
    // still plan each shape exactly once.
    let mut plans: HashMap<(usize, usize), TranscodePlan> = HashMap::new();
    for item in &ds.items {
        let shape = (item.image.width(), item.image.height());
        let plan = plans.entry(shape).or_insert_with(|| {
            TranscodePlan::new(shape.0, shape.1, reps, &TranscodeCosts::default())
        });
        let mats = engine
            .apply_planned(&item.image, plan)
            .expect("dataset images are full RGB");
        for (&rep, img) in reps.iter().zip(&mats) {
            out.get_mut(&rep)
                .expect("map seeded with every rep")
                .push(engine.standardize(img).into_data());
        }
        // Only the standardized copies are kept; the materialized pixel
        // buffers go back to the engine for the next image.
        engine.recycle(mats);
    }
    out
}

/// Per-model training outcome (kept for reporting in examples).
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The trained variant.
    pub variant: ModelVariant,
    /// Training-split accuracy after the final epoch.
    pub train_accuracy: f64,
    /// Epochs actually run.
    pub epochs_run: usize,
}

/// Train `variants` on the bundle and assemble a repository.
///
/// All variants must be `ModelKind::Cnn`; reference models have no real
/// implementation here (the surrogate path covers them) and are rejected.
/// Returns the repository plus per-model training outcomes. The trained
/// networks themselves are dropped; query paths that serve real inference
/// (the vectorized executor's NN backend) use
/// [`build_real_repository_keeping_models`] instead.
pub fn build_real_repository(
    bundle: &DatasetBundle,
    variants: &[ModelVariant],
    cfg: &RealTrainConfig,
    device: &DeviceProfile,
) -> Result<(ModelRepository, Vec<TrainOutcome>), String> {
    let (repo, outcomes, _models) =
        build_real_repository_keeping_models(bundle, variants, cfg, device)?;
    Ok((repo, outcomes))
}

/// [`build_real_repository`], but also returning the trained networks,
/// aligned with `repo.entries` — what a query-time real-inference backend
/// registers so the same weights that produced the repository's split
/// scores serve the cascade.
pub fn build_real_repository_keeping_models(
    bundle: &DatasetBundle,
    variants: &[ModelVariant],
    cfg: &RealTrainConfig,
    device: &DeviceProfile,
) -> Result<
    (
        ModelRepository,
        Vec<TrainOutcome>,
        Vec<tahoma_nn::Sequential>,
    ),
    String,
> {
    if variants.is_empty() {
        return Err("no variants to train".into());
    }
    for v in variants {
        if !matches!(v.kind, ModelKind::Cnn(_)) {
            return Err(format!("variant {} is not a trainable CNN", v.tag()));
        }
    }

    // Materialize each distinct representation once per split, all of them
    // in one engine pass per image (the same share-the-transform economics
    // the deployment scenarios price).
    let reps: Vec<Representation> = variants
        .iter()
        .map(|v| v.input)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let train_cache = transformed_input_sets(&bundle.train, &reps);
    let config_cache = transformed_input_sets(&bundle.config, &reps);
    let eval_cache = transformed_input_sets(&bundle.eval, &reps);
    let train_labels = bundle.train.labels();

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let chunk = variants.len().div_ceil(threads);
    type Slot = Option<(ModelEntry, TrainOutcome, tahoma_nn::Sequential)>;
    let mut slots: Vec<Slot> = Vec::new();
    slots.resize_with(variants.len(), || None);

    let result: Result<(), String> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut remaining: &mut [Slot] = &mut slots;
        for (chunk_idx, vs) in variants.chunks(chunk).enumerate() {
            let (head, tail) = remaining.split_at_mut(vs.len());
            remaining = tail;
            let (train_cache, config_cache, eval_cache, train_labels, cfg, device) = (
                &train_cache,
                &config_cache,
                &eval_cache,
                &train_labels,
                cfg,
                device,
            );
            handles.push(scope.spawn(move |_| -> Result<(), String> {
                for (slot, v) in head.iter_mut().zip(vs) {
                    let arch = match v.kind {
                        ModelKind::Cnn(a) => a,
                        _ => unreachable!("validated above"),
                    };
                    let spec = arch.cnn_spec(v.input);
                    let mut model = spec
                        .build(cfg.seed ^ ((chunk_idx as u64) << 32) ^ v.id.0 as u64)
                        .map_err(|e| format!("{}: {e}", v.tag()))?;
                    // One model per worker already saturates the cores;
                    // don't let each model's batch loop spawn another
                    // thread fleet on top.
                    model.set_threads(Some(1));
                    let inputs = &train_cache[&v.input];
                    let examples: Vec<Example> = inputs
                        .iter()
                        .zip(train_labels.iter())
                        .map(|(input, &label)| Example {
                            input: input.clone(),
                            label,
                        })
                        .collect();
                    let trainer = Trainer {
                        epochs: cfg.epochs,
                        batch_size: cfg.batch_size,
                        early_stop_loss: cfg.early_stop_loss,
                        seed: cfg.seed ^ v.id.0 as u64,
                    };
                    let report = trainer.train(&mut model, &examples, &mut Adam::new(cfg.lr));
                    // Score whole splits through the batched GEMM inference
                    // path instead of image-at-a-time forward passes.
                    let mut score_split = |cache: &HashMap<Representation, Vec<Vec<f32>>>| {
                        tahoma_nn::train::predict_scores(&mut model, &cache[&v.input])
                    };
                    let config_scores = score_split(config_cache);
                    let eval_scores = score_split(eval_cache);
                    let train_accuracy = accuracy(&mut model, &examples);
                    *slot = Some((
                        ModelEntry {
                            variant: *v,
                            flops: v.flops(),
                            infer_s: v.infer_s(device),
                            config_scores,
                            eval_scores,
                        },
                        TrainOutcome {
                            variant: *v,
                            train_accuracy,
                            epochs_run: report.epochs_run,
                        },
                        model,
                    ));
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("training thread does not panic")?;
        }
        Ok(())
    })
    .expect("training scope does not panic");
    result?;

    let mut entries = Vec::with_capacity(variants.len());
    let mut outcomes = Vec::with_capacity(variants.len());
    let mut models = Vec::with_capacity(variants.len());
    for slot in slots {
        let (entry, outcome, model) = slot.expect("every slot filled");
        entries.push(entry);
        outcomes.push(outcome);
        models.push(model);
    }
    let repo = ModelRepository {
        kind: bundle.kind,
        entries,
        config: Population::from_dataset(&bundle.config),
        eval: Population::from_dataset(&bundle.eval),
        resnet: None,
        yolo: None,
    };
    repo.validate()?;
    Ok((repo, outcomes, models))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchSpec;
    use crate::variant::cross_variants;
    use tahoma_imagery::{ColorMode, DatasetSpec, ObjectKind};

    fn tiny_variants() -> Vec<ModelVariant> {
        cross_variants(
            &[ArchSpec {
                conv_layers: 1,
                conv_nodes: 4,
                dense_nodes: 8,
            }],
            &[
                Representation::new(12, ColorMode::Gray),
                Representation::new(12, ColorMode::Rgb),
            ],
        )
    }

    fn quick_cfg() -> RealTrainConfig {
        RealTrainConfig {
            epochs: 25,
            batch_size: 8,
            lr: 0.01,
            early_stop_loss: 0.10,
            seed: 3,
        }
    }

    #[test]
    fn trains_and_scores_real_models() {
        let bundle = DatasetSpec::tiny(ObjectKind::Pinwheel, 24, 13).generate();
        let (repo, outcomes) = build_real_repository(
            &bundle,
            &tiny_variants(),
            &quick_cfg(),
            &DeviceProfile::k80(),
        )
        .unwrap();
        assert_eq!(repo.len(), 2);
        assert!(repo.validate().is_ok());
        assert_eq!(outcomes.len(), 2);
        // Training should beat chance on the training split.
        for o in &outcomes {
            assert!(
                o.train_accuracy > 0.6,
                "{}: train accuracy {}",
                o.variant.tag(),
                o.train_accuracy
            );
        }
        // Scores are probabilities.
        for e in &repo.entries {
            for &s in &e.eval_scores {
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn transformed_inputs_handle_mixed_image_shapes() {
        // The per-shape plan must rebuild when the dataset mixes sizes —
        // the old per-image apply path accepted this, so the planned path
        // must too.
        use tahoma_imagery::{ColorMode, Image, LabeledImage};
        let img = |s: usize| {
            Image::from_fn(s, s, ColorMode::Rgb, |c, y, x| {
                ((c + y + x) % 5) as f32 / 5.0
            })
            .unwrap()
        };
        let ds = tahoma_imagery::Dataset {
            name: "mixed".into(),
            items: vec![
                LabeledImage {
                    id: 0,
                    label: true,
                    difficulty: 0.1,
                    image: img(24),
                },
                LabeledImage {
                    id: 1,
                    label: false,
                    difficulty: 0.2,
                    image: img(16),
                },
                LabeledImage {
                    id: 2,
                    label: true,
                    difficulty: 0.3,
                    image: img(24),
                },
            ],
        };
        let reps = vec![
            Representation::new(8, ColorMode::Gray),
            Representation::new(12, ColorMode::Rgb),
        ];
        let sets = transformed_input_sets(&ds, &reps);
        for &rep in &reps {
            let inputs = &sets[&rep];
            assert_eq!(inputs.len(), 3);
            for input in inputs {
                assert_eq!(input.len(), rep.value_count());
            }
        }
        // Matches the per-image path.
        for (i, item) in ds.items.iter().enumerate() {
            for &rep in &reps {
                let want = tahoma_imagery::transform::standardize(&rep.apply(&item.image).unwrap());
                assert_eq!(sets[&rep][i], want.into_data(), "item {i} rep {rep}");
            }
        }
    }

    #[test]
    fn rejects_reference_variants() {
        let bundle = DatasetSpec::tiny(ObjectKind::Fence, 24, 1).generate();
        let bad = vec![crate::reference::resnet50(crate::variant::ModelId(0))];
        assert!(build_real_repository(&bundle, &bad, &quick_cfg(), &DeviceProfile::k80()).is_err());
    }

    #[test]
    fn rejects_empty_variant_list() {
        let bundle = DatasetSpec::tiny(ObjectKind::Fence, 24, 1).generate();
        assert!(build_real_repository(&bundle, &[], &quick_cfg(), &DeviceProfile::k80()).is_err());
    }
}

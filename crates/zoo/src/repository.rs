//! The model repository: everything the optimizer needs to know about every
//! model (paper Fig. 2, "Models" feeding the cost profiler and cascade
//! builder).
//!
//! For each model the repository stores its inference cost and its scores on
//! the config and eval splits. This is the paper's key engineering move
//! (§V-D): models are scored on the splits *once*; the millions of cascades
//! are then simulated from these precomputed outputs without ever running a
//! classifier again.

use crate::population::Population;
use crate::predicates::PredicateSpec;
use crate::reference;
use crate::surrogate::{Split, SurrogateParams, SurrogateScorer};
use crate::variant::{paper_variants, ModelId, ModelVariant};
use tahoma_costmodel::DeviceProfile;
use tahoma_imagery::ObjectKind;

/// One model's repository record.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// The model.
    pub variant: ModelVariant,
    /// Inference FLOPs.
    pub flops: u64,
    /// Device-level inference seconds (scenario-independent).
    pub infer_s: f64,
    /// Scores on the config split (threshold calibration).
    pub config_scores: Vec<f32>,
    /// Scores on the eval split (cascade evaluation).
    pub eval_scores: Vec<f32>,
}

/// All models for one binary predicate plus the split populations.
#[derive(Debug, Clone)]
pub struct ModelRepository {
    /// The predicate's category.
    pub kind: ObjectKind,
    /// Entries indexed by `ModelId::index()`.
    pub entries: Vec<ModelEntry>,
    /// Config split population.
    pub config: Population,
    /// Eval split population.
    pub eval: Population,
    /// Id of the ResNet50 reference, when present.
    pub resnet: Option<ModelId>,
    /// Id of the YOLOv2 reference, when present.
    pub yolo: Option<ModelId>,
}

impl ModelRepository {
    /// Entry lookup.
    pub fn entry(&self, id: ModelId) -> &ModelEntry {
        &self.entries[id.index()]
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no models are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of the specialized (non-reference) models.
    pub fn specialized_ids(&self) -> Vec<ModelId> {
        self.entries
            .iter()
            .filter(|e| !e.variant.is_reference())
            .map(|e| e.variant.id)
            .collect()
    }

    /// Eval-split accuracy of one model at threshold 0.5.
    pub fn eval_accuracy(&self, id: ModelId) -> f64 {
        crate::surrogate::accuracy_at_half(&self.entry(id).eval_scores, &self.eval.labels)
    }

    /// Internal consistency check: ids dense, score lengths match splits.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.entries.iter().enumerate() {
            if e.variant.id.index() != i {
                return Err(format!("entry {i} has id {}", e.variant.id.0));
            }
            if e.config_scores.len() != self.config.len() {
                return Err(format!("entry {i}: config score length mismatch"));
            }
            if e.eval_scores.len() != self.eval.len() {
                return Err(format!("entry {i}: eval score length mismatch"));
            }
            if !e.infer_s.is_finite() || e.infer_s <= 0.0 {
                return Err(format!("entry {i}: non-positive inference time"));
            }
        }
        Ok(())
    }
}

/// Configuration for building a surrogate repository.
#[derive(Debug, Clone)]
pub struct SurrogateBuildConfig {
    /// Config-split size (paper: a few hundred).
    pub n_config: usize,
    /// Eval-split size (paper: ~1000).
    pub n_eval: usize,
    /// Root seed.
    pub seed: u64,
    /// Include the YOLOv2 reference (needed by the NoScope study).
    pub include_yolo: bool,
    /// Surrogate family parameters.
    pub params: SurrogateParams,
    /// Specialized variants; `None` means the paper's 360-model space.
    pub variants: Option<Vec<ModelVariant>>,
}

impl Default for SurrogateBuildConfig {
    fn default() -> Self {
        SurrogateBuildConfig {
            n_config: 400,
            n_eval: 1000,
            seed: 0x7A40,
            include_yolo: false,
            params: SurrogateParams::default(),
            variants: None,
        }
    }
}

/// Build a surrogate-backed repository for one predicate, scoring models in
/// parallel across available cores. Each worker scores its share of the
/// family batch-major ([`SurrogateScorer::score_population`]): variants
/// outer, items inner, with the per-variant separation and noise stream
/// derived once per (variant, split) instead of once per item.
pub fn build_surrogate_repository(
    pred: PredicateSpec,
    cfg: &SurrogateBuildConfig,
    device: &DeviceProfile,
) -> ModelRepository {
    let mut variants = cfg.variants.clone().unwrap_or_else(paper_variants);
    // Re-number to dense ids in case a custom subset was provided.
    for (i, v) in variants.iter_mut().enumerate() {
        v.id = ModelId(i as u32);
    }
    let resnet_id = ModelId(variants.len() as u32);
    variants.push(reference::resnet50(resnet_id));
    let yolo_id = if cfg.include_yolo {
        let id = ModelId(variants.len() as u32);
        variants.push(reference::yolov2(id));
        Some(id)
    } else {
        None
    };

    let config = Population::synthetic(pred.kind, cfg.n_config, cfg.seed ^ 0x0C0F);
    let eval = Population::synthetic(pred.kind, cfg.n_eval, cfg.seed ^ 0x0E7A);
    let scorer = SurrogateScorer {
        pred,
        params: cfg.params,
        seed: cfg.seed,
    };

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let chunk = variants.len().div_ceil(threads);
    let mut entries: Vec<Option<ModelEntry>> = Vec::new();
    entries.resize_with(variants.len(), || None);

    crossbeam::thread::scope(|scope| {
        let mut remaining: &mut [Option<ModelEntry>] = &mut entries;
        for vs in variants.chunks(chunk) {
            let (head, tail) = remaining.split_at_mut(vs.len());
            remaining = tail;
            let (scorer, config, eval, device) = (&scorer, &config, &eval, device);
            scope.spawn(move |_| {
                for (slot, v) in head.iter_mut().zip(vs) {
                    *slot = Some(ModelEntry {
                        variant: *v,
                        flops: v.flops(),
                        infer_s: v.infer_s(device),
                        config_scores: scorer.scores(v, Split::Config, config),
                        eval_scores: scorer.scores(v, Split::Eval, eval),
                    });
                }
            });
        }
    })
    .expect("scoring threads do not panic");

    let entries: Vec<ModelEntry> = entries
        .into_iter()
        .map(|e| e.expect("every slot filled"))
        .collect();
    let repo = ModelRepository {
        kind: pred.kind,
        entries,
        config,
        eval,
        resnet: Some(resnet_id),
        yolo: yolo_id,
    };
    debug_assert!(repo.validate().is_ok());
    repo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SurrogateBuildConfig {
        SurrogateBuildConfig {
            n_config: 120,
            n_eval: 200,
            seed: 5,
            ..SurrogateBuildConfig::default()
        }
    }

    #[test]
    fn builds_paper_scale_repository() {
        let pred = PredicateSpec::for_kind(ObjectKind::Fence);
        let repo = build_surrogate_repository(pred, &small_cfg(), &DeviceProfile::k80());
        assert_eq!(repo.len(), 361); // 360 + resnet
        assert!(repo.validate().is_ok());
        assert_eq!(repo.specialized_ids().len(), 360);
        assert_eq!(repo.resnet, Some(ModelId(360)));
        assert!(repo.yolo.is_none());
    }

    #[test]
    fn yolo_inclusion() {
        let pred = PredicateSpec::for_kind(ObjectKind::Coho);
        let cfg = SurrogateBuildConfig {
            include_yolo: true,
            ..small_cfg()
        };
        let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
        assert_eq!(repo.len(), 362);
        assert_eq!(repo.yolo, Some(ModelId(361)));
        assert!(matches!(
            repo.entry(ModelId(361)).variant.kind,
            crate::variant::ModelKind::YoloV2
        ));
    }

    #[test]
    fn build_is_deterministic_despite_parallelism() {
        let pred = PredicateSpec::for_kind(ObjectKind::Wallet);
        let a = build_surrogate_repository(pred, &small_cfg(), &DeviceProfile::k80());
        let b = build_surrogate_repository(pred, &small_cfg(), &DeviceProfile::k80());
        for (ea, eb) in a.entries.iter().zip(&b.entries) {
            assert_eq!(ea.eval_scores, eb.eval_scores);
            assert_eq!(ea.config_scores, eb.config_scores);
        }
    }

    #[test]
    fn custom_variant_subsets_are_renumbered() {
        let pred = PredicateSpec::for_kind(ObjectKind::Acorn);
        let mut subset = paper_variants();
        subset.truncate(10);
        // Scramble ids to prove renumbering.
        subset[3].id = ModelId(999);
        let cfg = SurrogateBuildConfig {
            variants: Some(subset),
            ..small_cfg()
        };
        let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
        assert_eq!(repo.len(), 11);
        assert!(repo.validate().is_ok());
    }

    #[test]
    fn resnet_is_among_most_accurate() {
        let pred = PredicateSpec::for_kind(ObjectKind::Ferret);
        let repo = build_surrogate_repository(pred, &small_cfg(), &DeviceProfile::k80());
        let resnet_acc = repo.eval_accuracy(repo.resnet.unwrap());
        let better = repo
            .specialized_ids()
            .iter()
            .filter(|&&id| repo.eval_accuracy(id) > resnet_acc)
            .count();
        assert!(
            better < 36,
            "{better} of 360 specialized models beat ResNet50 (expected < 10%)"
        );
    }

    #[test]
    fn inference_costs_span_orders_of_magnitude() {
        let pred = PredicateSpec::for_kind(ObjectKind::Pinwheel);
        let repo = build_surrogate_repository(pred, &small_cfg(), &DeviceProfile::k80());
        let times: Vec<f64> = repo
            .specialized_ids()
            .iter()
            .map(|&id| repo.entry(id).infer_s)
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 20.0, "cost spread only {:.1}x", max / min);
    }
}

//! Model variants: the cross product of architectures and representations,
//! plus the reference deep models.

use crate::arch::ArchSpec;
use tahoma_costmodel::calibration;
use tahoma_costmodel::DeviceProfile;
use tahoma_imagery::Representation;

/// Index of a model within its repository. Dense and stable: specialized
/// models first (arch-major over the cross product), then references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(pub u32);

impl ModelId {
    /// Usable as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What kind of classifier a variant is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// A specialized small CNN from the paper's design space.
    Cnn(ArchSpec),
    /// Fine-tuned ResNet50 (the paper's expensive image classifier).
    ResNet50,
    /// YOLOv2-class detector (terminal classifier in the NoScope study).
    YoloV2,
}

/// One classifier in the zoo: a kind plus the representation it consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelVariant {
    /// Repository index.
    pub id: ModelId,
    /// Architecture / reference kind.
    pub kind: ModelKind,
    /// Physical input representation.
    pub input: Representation,
}

impl ModelVariant {
    /// Inference FLOPs.
    pub fn flops(&self) -> u64 {
        match self.kind {
            ModelKind::Cnn(arch) => arch.flops(self.input),
            ModelKind::ResNet50 => calibration::RESNET50_FLOPS,
            ModelKind::YoloV2 => calibration::YOLOV2_FLOPS,
        }
    }

    /// Device-level inference seconds. Reference models with published
    /// measured throughput use their anchor instead of the generic FLOPs
    /// fit (YOLO's fused layers beat it).
    pub fn infer_s(&self, device: &DeviceProfile) -> f64 {
        match self.kind {
            ModelKind::YoloV2 => 1.0 / calibration::YOLOV2_MEASURED_FPS,
            _ => device.infer_time(self.flops(), self.input.value_count()),
        }
    }

    /// True for the expensive reference models.
    pub fn is_reference(&self) -> bool {
        !matches!(self.kind, ModelKind::Cnn(_))
    }

    /// Stable display tag, e.g. `"c1x16-d16@30x30-gray"` or `"resnet50"`.
    pub fn tag(&self) -> String {
        match self.kind {
            ModelKind::Cnn(arch) => format!("{}@{}", arch.tag(), self.input.tag()),
            ModelKind::ResNet50 => "resnet50".to_string(),
            ModelKind::YoloV2 => "yolov2".to_string(),
        }
    }
}

/// Build the paper's 360 specialized variants (arch-major order), with ids
/// starting at 0.
pub fn paper_variants() -> Vec<ModelVariant> {
    let mut out = Vec::with_capacity(360);
    let mut next = 0u32;
    for arch in ArchSpec::all_paper() {
        for input in Representation::paper_set() {
            out.push(ModelVariant {
                id: ModelId(next),
                kind: ModelKind::Cnn(arch),
                input,
            });
            next += 1;
        }
    }
    out
}

/// Build variants over arbitrary architecture / representation sets (used by
/// the transform-ablation experiment and the scaled-down real trainer).
pub fn cross_variants(archs: &[ArchSpec], inputs: &[Representation]) -> Vec<ModelVariant> {
    let mut out = Vec::with_capacity(archs.len() * inputs.len());
    let mut next = 0u32;
    for &arch in archs {
        for &input in inputs {
            out.push(ModelVariant {
                id: ModelId(next),
                kind: ModelKind::Cnn(arch),
                input,
            });
            next += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_imagery::ColorMode;

    #[test]
    fn paper_space_has_360_models() {
        let vs = paper_variants();
        assert_eq!(vs.len(), 360);
        // ids are dense 0..360
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(v.id.index(), i);
        }
    }

    #[test]
    fn variants_are_unique() {
        let vs = paper_variants();
        let set: std::collections::HashSet<String> = vs.iter().map(|v| v.tag()).collect();
        assert_eq!(set.len(), 360);
    }

    #[test]
    fn resnet_anchor_throughput() {
        let dev = DeviceProfile::k80();
        let resnet = ModelVariant {
            id: ModelId(360),
            kind: ModelKind::ResNet50,
            input: Representation::full(),
        };
        let fps = 1.0 / resnet.infer_s(&dev);
        assert!((70.0..80.0).contains(&fps), "{fps}");
    }

    #[test]
    fn yolo_uses_measured_anchor() {
        let dev = DeviceProfile::k80();
        let yolo = ModelVariant {
            id: ModelId(361),
            kind: ModelKind::YoloV2,
            input: Representation::full(),
        };
        let fps = 1.0 / yolo.infer_s(&dev);
        assert!((66.0..68.0).contains(&fps), "{fps}");
    }

    #[test]
    fn smallest_variant_near_paper_ceiling() {
        let dev = DeviceProfile::k80();
        let vs = paper_variants();
        let fastest = vs
            .iter()
            .map(|v| 1.0 / v.infer_s(&dev))
            .fold(0.0f64, f64::max);
        assert!(
            (15_000.0..30_000.0).contains(&fastest),
            "fastest specialized model {fastest:.0} fps (paper ~20.9k)"
        );
    }

    #[test]
    fn full_res_models_are_ingest_bound() {
        // 224x224 RGB shallow models must sit well under the small-input
        // ceiling (this is what keeps the CAMERA frontier near the paper's
        // ~1.5k fps).
        let dev = DeviceProfile::k80();
        let v = ModelVariant {
            id: ModelId(0),
            kind: ModelKind::Cnn(ArchSpec {
                conv_layers: 1,
                conv_nodes: 16,
                dense_nodes: 16,
            }),
            input: Representation::new(224, ColorMode::Rgb),
        };
        let fps = 1.0 / v.infer_s(&dev);
        assert!(fps < 2_500.0, "full-res shallow model too fast: {fps:.0}");
    }

    #[test]
    fn cross_variants_respects_inputs() {
        let archs = [ArchSpec {
            conv_layers: 1,
            conv_nodes: 16,
            dense_nodes: 16,
        }];
        let inputs = [
            Representation::new(16, ColorMode::Gray),
            Representation::new(32, ColorMode::Rgb),
        ];
        let vs = cross_variants(&archs, &inputs);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[1].input.size, 32);
    }
}

//! The model zoo: everything TAHOMA's optimizer chooses between.
//!
//! §V-B of the paper: the model design space is the cross product of
//! architecture specifications **A** (number/width of conv layers, dense
//! width — 18 combinations) and input transformation functions **F** (4
//! resolutions x 5 color modes — 20 representations), i.e. **360 specialized
//! models per predicate**, plus a fine-tuned ResNet50 and (for the NoScope
//! comparison) a YOLOv2-class reference.
//!
//! Two interchangeable ways to obtain model behavior:
//!
//! * [`surrogate::SurrogateScorer`] — the calibrated statistical family used
//!   at paper scale (DESIGN.md §2.4): per-(model, image) scores from a
//!   latent signal-detection model with shared per-image difficulty;
//! * [`trainer`] — the real path: trains `tahoma-nn` CNNs on rendered
//!   datasets at reduced scale and produces the same repository shape.
//!
//! Either way the product is a [`repository::ModelRepository`]: for every
//! model, its scores on the config and eval splits plus its inference cost —
//! exactly the inputs the core optimizer consumes.

pub mod arch;
pub mod population;
pub mod predicates;
pub mod reference;
pub mod repository;
pub mod surrogate;
pub mod trainer;
pub mod transform_sets;
pub mod variant;

pub use arch::ArchSpec;
pub use population::Population;
pub use predicates::PredicateSpec;
pub use repository::{ModelEntry, ModelRepository};
pub use surrogate::{SurrogateParams, SurrogateScorer};
pub use transform_sets::TransformSet;
pub use variant::{ModelId, ModelKind, ModelVariant};

//! Persistent scoped worker pool — the process-wide compute threads behind
//! every data-parallel loop in the workspace.
//!
//! The GEMM and batched-convolution paths in `tahoma-nn` originally spawned
//! OS threads per call through `std::thread::scope`. That is correct but
//! pays thread creation/teardown on every large product — measurable in the
//! `gemm_threads` bench even when the spawned workers do substantial work,
//! and fatal for a query service that runs thousands of batched inference
//! calls per second. This module keeps `available_parallelism() - 1`
//! workers parked on a condvar for the life of the process and hands out
//! [`scope`], a drop-in replacement for `std::thread::scope` with the same
//! borrow-the-stack API:
//!
//! ```
//! let mut a = [0u64; 4];
//! tahoma_mathx::pool::scope(|s| {
//!     for (i, slot) in a.iter_mut().enumerate() {
//!         s.spawn(move || *slot = i as u64 + 1);
//!     }
//! });
//! assert_eq!(a, [1, 2, 3, 4]);
//! ```
//!
//! Design points:
//!
//! * **Caller helps.** The scope owner drains the shared queue while it
//!   waits, so a task is never stranded: even with zero pool workers (a
//!   1-core machine) every spawned closure runs — inline, with no boxing
//!   and no synchronization at all, which makes the pool free exactly
//!   where threading cannot help.
//! * **Panic-safe.** A panicking task is caught on the worker, recorded,
//!   and re-raised on the scope owner after every sibling task finished —
//!   the same contract as `std::thread::scope`, and the queue/workers
//!   survive for the next caller.
//! * **No shutdown.** Workers are process-lifetime daemons; they hold no
//!   resources beyond a parked stack, so they simply die with the process.
//!
//! Soundness of the lifetime erasure: a spawned closure may borrow the
//! caller's stack (`'scope`), but the queue stores `'static` boxed jobs.
//! The transmute in [`Scope::spawn`] is sound because [`scope`] does not
//! return — not even by unwinding — until every job it spawned has run to
//! completion, which bounds every borrow.
//!
//! This is one of the four files sanctioned to contain `unsafe`; see
//! `SAFETY.md` at the repository root for the unsafe policy and the
//! `checked-kernels` feature, under which [`scope`] asserts its
//! no-live-jobs invariant before returning.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Lock that shrugs off poisoning: pool bookkeeping must stay usable after
/// a task panicked (the panic is re-raised on the scope owner; the queue
/// state itself is never left mid-update because critical sections below
/// do not call user code).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
    workers: usize,
}

impl PoolShared {
    fn push(&self, job: Job) {
        lock(&self.queue).push_back(job);
        self.work_cv.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        lock(&self.queue).pop_front()
    }
}

fn worker_loop(shared: &'static PoolShared) {
    loop {
        let mut q = lock(&shared.queue);
        loop {
            if let Some(job) = q.pop_front() {
                drop(q);
                // The job wrapper (built in `Scope::spawn`) catches panics
                // itself, so the worker thread never unwinds.
                job();
                break;
            }
            q = match shared.work_cv.wait(q) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

fn shared() -> &'static PoolShared {
    static POOL: OnceLock<PoolShared> = OnceLock::new();
    let pool = POOL.get_or_init(|| {
        let hw = std::thread::available_parallelism().map_or(1, |v| v.get());
        PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            workers: hw.saturating_sub(1),
        }
    });
    static STARTED: OnceLock<()> = OnceLock::new();
    STARTED.get_or_init(|| {
        for i in 0..pool.workers {
            std::thread::Builder::new()
                .name(format!("tahoma-pool-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("spawn pool worker");
        }
    });
    pool
}

/// Number of persistent pool workers (machine parallelism minus the
/// caller's own thread; zero on a single-core machine, where every spawn
/// runs inline).
pub fn workers() -> usize {
    shared().workers
}

struct ScopeState {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct ScopeSync {
    state: Mutex<ScopeState>,
    done_cv: Condvar,
}

/// Handle for spawning borrow-carrying tasks; see [`scope`]. Mirrors
/// `std::thread::Scope` (both lifetimes invariant, so the handle cannot be
/// smuggled out of the closure).
pub struct Scope<'scope, 'env: 'scope> {
    sync: Arc<ScopeSync>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope> Scope<'scope, '_> {
    /// Queue `f` on the pool (or run it inline when the pool has no
    /// workers). The closure may borrow anything that outlives the
    /// enclosing [`scope`] call; it is guaranteed to have finished when
    /// [`scope`] returns.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let pool = shared();
        if pool.workers == 0 {
            // Single-core: run in place. No boxing, no locks — threading
            // could only add overhead here, so the pool adds none either.
            f();
            return;
        }
        lock(&self.sync.state).pending += 1;
        let sync = Arc::clone(&self.sync);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            let mut st = lock(&sync.state);
            if let Err(p) = result {
                if st.panic.is_none() {
                    st.panic = Some(p);
                }
            }
            st.pending -= 1;
            if st.pending == 0 {
                sync.done_cv.notify_all();
            }
        });
        // SAFETY: `scope` blocks until `pending` drops to zero before
        // returning (normally or by unwind), so every borrow in `f`
        // outlives the job's execution; the 'scope -> 'static transmute
        // only widens the lifetime the queue stores, never the lifetime
        // the job actually runs under.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        pool.push(job);
    }
}

/// Run `f` with a [`Scope`] whose spawned tasks execute on the persistent
/// pool, returning once every task has completed. Drop-in replacement for
/// `std::thread::scope`: tasks may borrow the caller's stack, and a panic
/// in any task resurfaces on the caller after all tasks finish.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    let pool = shared();
    let sc = Scope {
        sync: Arc::new(ScopeSync {
            state: Mutex::new(ScopeState {
                pending: 0,
                panic: None,
            }),
            done_cv: Condvar::new(),
        }),
        _scope: PhantomData,
        _env: PhantomData,
    };
    // Run the user closure, but even if it panics the queued tasks borrow
    // this stack frame and must finish before we unwind through it.
    let result = catch_unwind(AssertUnwindSafe(|| f(&sc)));
    if pool.workers > 0 {
        loop {
            // Help: run queued jobs (ours or another scope's) instead of
            // idling — on a loaded machine the scope owner is often the
            // first thread free to execute its own spawns.
            while let Some(job) = pool.try_pop() {
                job();
            }
            let st = lock(&sc.sync.state);
            if st.pending == 0 {
                break;
            }
            // Short timed wait, then re-check the queue: our remaining
            // jobs are either mid-run on a worker (the wait ends when the
            // last one notifies) or still queued behind other scopes' work
            // (the timeout sends us back to helping).
            let _ = sc.sync.done_cv.wait_timeout(st, Duration::from_millis(1));
        }
    }
    // The soundness of the 'scope -> 'static transmute in `spawn` is
    // exactly this: no job survives the scope that lent it borrows.
    crate::checked::invariant(
        lock(&sc.sync.state).pending == 0,
        "pool scope returning with live borrowed jobs",
    );
    let panic = lock(&sc.sync.state).panic.take();
    match result {
        Err(p) => resume_unwind(p),
        Ok(v) => {
            if let Some(p) = panic {
                resume_unwind(p);
            }
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn tasks_borrow_and_fill_disjoint_slots() {
        let mut data = vec![0usize; 64];
        scope(|s| {
            for (i, chunk) in data.chunks_mut(8).enumerate() {
                s.spawn(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = i * 8 + j;
                    }
                });
            }
        });
        assert_eq!(data, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn scope_returns_closure_value() {
        let n = scope(|s| {
            s.spawn(|| {});
            41 + 1
        });
        assert_eq!(n, 42);
    }

    #[test]
    fn sequential_scopes_reuse_the_pool() {
        let counter = AtomicUsize::new(0);
        for _ in 0..100 {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn concurrent_scopes_from_many_threads() {
        // The serving scenario: many threads each running their own scoped
        // fan-out against one shared pool.
        let total = AtomicUsize::new(0);
        std::thread::scope(|outer| {
            for _ in 0..8 {
                outer.spawn(|| {
                    for _ in 0..50 {
                        let mut local = [0usize; 4];
                        scope(|s| {
                            for v in local.iter_mut() {
                                s.spawn(move || *v = 1);
                            }
                        });
                        total.fetch_add(local.iter().sum::<usize>(), Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 50 * 4);
    }

    #[test]
    fn task_panic_propagates_after_siblings_finish() {
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                for i in 0..4 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 2 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "task panic must resurface");
        // With pool workers, all three non-panicking siblings run before
        // the panic resurfaces; inline mode (zero workers) unwinds at the
        // panicking spawn, so the later sibling never starts.
        let done = finished.load(Ordering::Relaxed);
        let want = if workers() == 0 { 2 } else { 3 };
        assert_eq!(done, want);
        // Pool still works afterwards.
        let mut x = 0u32;
        scope(|s| s.spawn(|| x = 7));
        assert_eq!(x, 7);
    }
}

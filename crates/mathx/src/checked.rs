//! Audit-mode assertions for the unsafe SIMD kernels (`checked-kernels`).
//!
//! Every raw-pointer load, store, and gather in the workspace's kernel
//! files (`tahoma-nn`'s GEMM and layer kernels, `tahoma-imagery`'s pixel
//! engine, this crate's worker pool) is preceded by a call into this
//! module stating the invariant the unsafe operation relies on: the span
//! it touches is in bounds, every gathered index is in range, the pointer
//! is element-aligned, parallel writers own disjoint ranges. With the
//! `checked-kernels` feature off (the default) each helper is an
//! `#[inline(always)]` empty body — the release kernels cost nothing.
//! With it on, each invariant becomes a hard `assert!` in every build
//! profile, so CI can run the full test suite with the kernels' safety
//! contracts machine-checked (see `SAFETY.md`).
//!
//! The checks never change results — they only observe — so a suite that
//! passes both with and without the feature demonstrates the kernels are
//! bitwise-transparent to auditing (asserted by `tahoma-nn`'s
//! `checked_kernels` test, which CI runs in both configurations).

/// True when the `checked-kernels` feature is compiled in (used by tests
/// to assert the audit configuration they expect).
#[inline(always)]
#[must_use]
pub fn active() -> bool {
    cfg!(feature = "checked-kernels")
}

/// Assert that `off..off + count` is in bounds for a buffer of `len`
/// elements — the contract of an unaligned vector load/store or a raw
/// row write at offset `off`.
#[inline(always)]
#[track_caller]
pub fn span(len: usize, off: usize, count: usize, what: &str) {
    if cfg!(feature = "checked-kernels") {
        assert!(
            off.checked_add(count).is_some_and(|end| end <= len),
            "checked-kernels: {what}: span {off}..{off}+{count} out of bounds for {len}"
        );
    }
}

/// Assert that every gather index addresses inside a buffer of `len`
/// elements — the contract of `_mm*_i32gather_ps` over `indices`.
#[inline(always)]
#[track_caller]
pub fn gather(indices: &[i32], len: usize, what: &str) {
    if cfg!(feature = "checked-kernels") {
        for (lane, &i) in indices.iter().enumerate() {
            assert!(
                i >= 0 && (i as usize) < len,
                "checked-kernels: {what}: gather lane {lane} index {i} out of bounds for {len}"
            );
        }
    }
}

/// Assert that `ptr` is aligned for its element type — unaligned vector
/// instructions only require element alignment, and slice-derived
/// pointers always have it, so a failure here means a pointer was
/// fabricated or miscast.
#[inline(always)]
#[track_caller]
pub fn aligned<T>(ptr: *const T, what: &str) {
    if cfg!(feature = "checked-kernels") {
        assert!(
            (ptr as usize).is_multiple_of(std::mem::align_of::<T>()),
            "checked-kernels: {what}: pointer {ptr:p} not aligned to {}",
            std::mem::align_of::<T>()
        );
    }
}

/// Assert that column/strip `chunks` are sorted, non-overlapping
/// half-open ranges within `0..len` — the aliasing contract that lets
/// parallel GEMM workers share one raw output pointer.
#[inline(always)]
#[track_caller]
pub fn disjoint_chunks(chunks: &[(usize, usize)], len: usize, what: &str) {
    if cfg!(feature = "checked-kernels") {
        let mut prev_end = 0usize;
        for &(lo, hi) in chunks {
            assert!(
                lo >= prev_end && lo <= hi && hi <= len,
                "checked-kernels: {what}: chunk {lo}..{hi} overlaps or exceeds {len}"
            );
            prev_end = hi;
        }
    }
}

/// Assert an arbitrary kernel invariant stated at the call site (used
/// where the condition does not fit the shaped helpers above, e.g. the
/// worker pool's "no live borrowed jobs at scope exit").
#[inline(always)]
#[track_caller]
pub fn invariant(cond: bool, what: &str) {
    if cfg!(feature = "checked-kernels") {
        assert!(cond, "checked-kernels: {what}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // With the feature off every helper must accept anything (they are
    // empty); with it on, the in-bounds cases here must still pass. The
    // violating cases are only exercised under the feature, where they
    // must panic.

    #[test]
    fn in_bounds_cases_pass_in_both_modes() {
        span(16, 8, 8, "test");
        gather(&[0, 3, 15], 16, "test");
        aligned(vec![0f32; 4].as_ptr(), "test");
        disjoint_chunks(&[(0, 8), (8, 16)], 16, "test");
        invariant(true, "test");
    }

    #[cfg(feature = "checked-kernels")]
    #[test]
    fn violations_panic_when_active() {
        use std::panic::catch_unwind;
        assert!(active());
        assert!(catch_unwind(|| span(16, 9, 8, "t")).is_err());
        assert!(catch_unwind(|| span(16, usize::MAX, 2, "t")).is_err());
        assert!(catch_unwind(|| gather(&[16], 16, "t")).is_err());
        assert!(catch_unwind(|| gather(&[-1], 16, "t")).is_err());
        // Address 1: misaligned for f32 (align 4) without any real allocation.
        let misaligned = std::ptr::dangling::<u8>().cast::<f32>();
        assert!(catch_unwind(|| aligned(misaligned, "t")).is_err());
        assert!(catch_unwind(|| disjoint_chunks(&[(0, 9), (8, 16)], 16, "t")).is_err());
        assert!(catch_unwind(|| invariant(false, "t")).is_err());
    }
}

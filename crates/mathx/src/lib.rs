//! Small deterministic math utilities shared across the TAHOMA reproduction.
//!
//! Everything in the reproduction must be seed-reproducible: the synthetic
//! corpora, the surrogate classifier scores, and the experiment harnesses all
//! derive their randomness from a single root seed through [`split_seed`].
//! This crate also provides normal sampling (the approved crate set does not
//! include `rand_distr`) and the handful of descriptive statistics the
//! evaluation needs.
//!
//! As the lowest crate in the workspace it additionally hosts
//! [`simd_policy`]: the per-op-class kernel-tier policy that the SIMD
//! dispatchers in `tahoma-nn` and `tahoma-imagery` consult when resolving
//! `Kernel::Auto`, and that `tahoma-costmodel`'s measured calibration
//! tunes; and [`pool`]: the persistent scoped worker pool every
//! data-parallel loop in the workspace (threaded GEMM, batched
//! convolution, the query service) spawns onto instead of creating OS
//! threads per call.
//!
//! [`checked`] hosts the `checked-kernels` audit assertions: invariant
//! statements the workspace's unsafe SIMD kernels make before every raw
//! pointer operation, compiled to nothing unless the feature is on.

// Unsafe hygiene (audited by `tahoma-audit`, lint A2; policy in
// SAFETY.md): every operation inside an `unsafe fn` must carry its own
// `unsafe` block.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod checked;
pub mod pool;
pub mod rng;
pub mod simd_policy;
pub mod stats;

pub use rng::{hash64, split_seed, DetRng};
pub use simd_policy::{KernelPolicy, OpClass, SimdTier};
pub use stats::{logistic, mean, normal_cdf, normal_quantile, percentile, std_dev, Summary};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let mut r = DetRng::new(split_seed(42, 1));
        let x = r.normal(0.0, 1.0);
        assert!(x.is_finite());
        assert!((logistic(0.0) - 0.5).abs() < 1e-12);
    }
}

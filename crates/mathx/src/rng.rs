//! Deterministic random number generation.
//!
//! The reproduction needs randomness that is (a) stable across runs and
//! platforms and (b) cheaply *splittable*: the surrogate model family draws a
//! fresh stream per (predicate, model, image) triple so that re-evaluating any
//! single model yields identical scores regardless of evaluation order. We
//! build streams by hashing coordinates into a seed ([`split_seed`]) and
//! feeding it to a small xoshiro-style generator ([`DetRng`]).

use rand::{RngCore, SeedableRng};

/// Stable 64-bit mixer (splitmix64 finalizer). Used to derive independent
/// seeds from coordinates; passes through zero-avoidance so `DetRng` never
/// sees an all-zero state.
#[inline]
pub fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from a parent seed and a stream index.
///
/// `split_seed(s, a) != split_seed(s, b)` for all observed `a != b`, and the
/// derived streams are statistically independent for the purposes of this
/// simulation (splitmix64 is the standard seeding function for xoshiro).
#[inline]
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    hash64(seed ^ hash64(stream.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// Deterministic generator: xoshiro256** seeded via splitmix64.
///
/// Implements [`rand::RngCore`] so it composes with the `rand` ecosystem, and
/// adds the distribution helpers the simulation needs (`normal`, `uniform`,
/// `bernoulli`, `exponential`).
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    spare_normal: Option<f64>,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = [0u64; 4];
        let mut x = seed;
        for slot in &mut s {
            x = hash64(x.wrapping_add(0x1234_5678_9ABC_DEF0));
            *slot = x;
        }
        // xoshiro must not start in the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        DetRng {
            s,
            spare_normal: None,
        }
    }

    /// Convenience constructor from (seed, stream) coordinates.
    pub fn from_coords(seed: u64, stream: u64) -> Self {
        Self::new(split_seed(seed, stream))
    }

    #[inline]
    fn next_raw(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in [lo, hi).
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform usize in [0, n). Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires n > 0");
        // Multiplicative range reduction; bias is negligible for n << 2^64.
        ((self.next_raw() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box-Muller (the approved crate set has no
    /// `rand_distr`). Caches the second variate.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Rejection-free polar-less Box-Muller; u1 is kept away from zero so
        // ln(u1) is finite.
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// First standard-normal draw of a *fresh* generator, skipping the
    /// Box-Muller sine half entirely: when exactly one variate will ever
    /// be drawn (the batch scoring hot loop builds one generator per item),
    /// computing and caching the spare is pure waste. Bitwise identical to
    /// what [`DetRng::standard_normal`] would return for the same state —
    /// same two uniforms consumed, same `r * cos(theta)` — so streams stay
    /// interchangeable between the two entry points.
    ///
    /// Must not be mixed with [`DetRng::standard_normal`] on one generator
    /// after a spare is cached (the cached variate would be silently
    /// dropped); debug builds assert that.
    #[inline]
    pub fn standard_normal_once(&mut self) -> f64 {
        debug_assert!(
            self.spare_normal.is_none(),
            "standard_normal_once on a generator with a cached spare"
        );
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        r * (std::f64::consts::TAU * u2).cos()
    }

    /// [`DetRng::normal`] through [`DetRng::standard_normal_once`]: the
    /// single-draw fast path, bitwise identical to `normal` on a fresh
    /// generator.
    #[inline]
    pub fn normal_once(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal_once()
    }

    /// Exponential with the given rate (mean = 1/rate).
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        -self.uniform().max(1e-300).ln() / rate
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from [0, n) (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates: only the first k positions need to be final.
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl SeedableRng for DetRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        DetRng::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        DetRng::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_seed_distinguishes_streams() {
        let base = 99;
        let mut seen = std::collections::HashSet::new();
        for stream in 0..10_000u64 {
            assert!(
                seen.insert(split_seed(base, stream)),
                "collision at {stream}"
            );
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = DetRng::new(11);
        let n = 100_000;
        let m: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((m - 0.5).abs() < 0.01, "mean was {m}");
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::new(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn single_draw_normal_is_bitwise_identical_to_first_draw() {
        for seed in 0..5_000u64 {
            let mut full = DetRng::from_coords(seed, seed ^ 0xAB);
            let mut once = full.clone();
            assert_eq!(
                full.standard_normal().to_bits(),
                once.standard_normal_once().to_bits(),
                "seed {seed}"
            );
            let mut full = DetRng::new(seed);
            let mut once = full.clone();
            assert_eq!(
                full.normal(0.25, 1.5).to_bits(),
                once.normal_once(0.25, 1.5).to_bits(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = DetRng::new(6);
        let n = 100_000;
        let m: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn index_bounds_and_coverage() {
        let mut r = DetRng::new(8);
        let mut hits = [0usize; 10];
        for _ in 0..10_000 {
            hits[r.index(10)] += 1;
        }
        for (i, h) in hits.iter().enumerate() {
            assert!(*h > 700, "bucket {i} underrepresented: {h}");
        }
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = DetRng::new(9);
        let s = r.sample_indices(100, 40);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 40);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(10);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_non_multiple_of_eight() {
        let mut r = DetRng::new(12);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = DetRng::new(13);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}

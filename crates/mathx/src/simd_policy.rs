//! Per-op-class SIMD kernel-tier policy shared by every dispatching crate.
//!
//! `tahoma_nn::gemm` and `tahoma_imagery::engine` both carry explicit
//! AVX-512 / AVX2 / portable kernel tiers behind runtime feature detection.
//! Until now each crate resolved `Auto` with one static heuristic — "take
//! the widest ISA the CPU advertises" — which is measurably wrong for some
//! op classes (AVX-512 *gathers* trail the AVX2 gather tier by ~25% on the
//! resize horizontal pass of the Xeon this repo is tuned on, while the
//! contiguous AVX-512 sweeps win). The fix mirrors the paper's stance on
//! physical representations: don't guess, *measure* the alternatives and
//! look the winner up in a table.
//!
//! This module owns that table. It is deliberately dependency-free (both
//! dispatching crates sit below `tahoma-costmodel`, which runs the actual
//! microbenchmarks in `costmodel::kernels`):
//!
//! * [`OpClass`] — the dispatchable operation classes;
//! * [`SimdTier`] — the tier vocabulary (`Auto` = "detect the widest");
//! * [`KernelPolicy`] — the class→tier table, with a serialized text form
//!   (`class=tier` lines) so a calibrated policy survives a process;
//! * a process-global policy ([`install_policy`] / [`global_tier`]) that
//!   the dispatchers consult when asked to resolve `Auto`;
//! * the [`POLICY_ENV`] (`TAHOMA_KERNEL_POLICY`) override, so CI can force
//!   the portable or AVX2 paths on runners that advertise more.
//!
//! A policy never *grants* a tier: dispatchers still verify the chosen tier
//! against `is_x86_feature_detected!` and demote to detection when the CPU
//! cannot run it, so a policy file copied from another machine degrades
//! gracefully instead of faulting.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable overriding the kernel policy. Accepted forms:
///
/// * a tier name (`portable`, `avx2`, `avx512`, `auto`) — force every op
///   class to that tier (CI's forced-tier matrix);
/// * `class=tier` pairs separated by commas (e.g.
///   `resize-h-gather=avx2,gemm=avx512`) — override specific classes on
///   top of the defaults;
/// * `@/path/to/policy` — load a policy file serialized by
///   [`KernelPolicy::serialize`].
pub const POLICY_ENV: &str = "TAHOMA_KERNEL_POLICY";

/// A SIMD kernel tier, the common vocabulary of the per-crate `Kernel`
/// enums. `Auto` inside a policy means "resolve by feature detection" —
/// the pre-policy behavior, kept as the default for classes nobody has
/// measured yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdTier {
    /// Detect the widest supported tier at dispatch time.
    #[default]
    Auto,
    /// The scalar / auto-vectorized fallback kernel.
    Portable,
    /// Explicit AVX2-generation intrinsics.
    Avx2,
    /// Explicit AVX-512 intrinsics.
    Avx512,
}

impl SimdTier {
    /// Every tier, in the order used for stable (de)serialization.
    pub const ALL: [SimdTier; 4] = [
        SimdTier::Auto,
        SimdTier::Portable,
        SimdTier::Avx2,
        SimdTier::Avx512,
    ];

    /// Stable lowercase name (`auto`, `portable`, `avx2`, `avx512`).
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Auto => "auto",
            SimdTier::Portable => "portable",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }

    /// Inverse of [`SimdTier::name`].
    pub fn from_name(name: &str) -> Option<SimdTier> {
        SimdTier::ALL.into_iter().find(|t| t.name() == name)
    }

    fn to_u8(self) -> u8 {
        match self {
            SimdTier::Auto => 0,
            SimdTier::Portable => 1,
            SimdTier::Avx2 => 2,
            SimdTier::Avx512 => 3,
        }
    }

    fn from_u8(v: u8) -> SimdTier {
        match v {
            1 => SimdTier::Portable,
            2 => SimdTier::Avx2,
            3 => SimdTier::Avx512,
            _ => SimdTier::Auto,
        }
    }
}

/// The operation classes whose kernel tier is chosen independently. One
/// class per dispatch site whose best tier can plausibly differ from its
/// neighbors' (gathered vs. contiguous memory access, long vs. short FMA
/// chains, reduction vs. streaming).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// The blocked/packed GEMM macro-kernel (`tahoma_nn::gemm`).
    Gemm,
    /// Short-accumulation GEMM (`k <= 32`): the first-layer convolutions,
    /// where the AVX-512 wide tile competes with AVX2.
    GemmWideK,
    /// Batch-1 dense layers: matrix–vector product with fused accumulate.
    Matvec,
    /// ReLU inference sweep (`max(x, 0)` select).
    Relu,
    /// 2x2/stride-2 max-pool inference sweep.
    Pool,
    /// Horizontal resize pass: *gathered* loads through the span tables —
    /// the class where AVX-512 measured slower than AVX2.
    ResizeHGather,
    /// Vertical resize pass: contiguous two-row lerp.
    ResizeV,
    /// RGB→gray luma reduction (contiguous three-plane sweep).
    Luma,
    /// Standardize: eight-lane f64 mean/variance reductions + normalize.
    Standardize,
}

/// Number of op classes (the policy table's fixed width).
pub const OP_CLASS_COUNT: usize = 9;

impl OpClass {
    /// Every class, in stable serialization order.
    pub const ALL: [OpClass; OP_CLASS_COUNT] = [
        OpClass::Gemm,
        OpClass::GemmWideK,
        OpClass::Matvec,
        OpClass::Relu,
        OpClass::Pool,
        OpClass::ResizeHGather,
        OpClass::ResizeV,
        OpClass::Luma,
        OpClass::Standardize,
    ];

    /// Stable kebab-case name used in policy files and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Gemm => "gemm",
            OpClass::GemmWideK => "gemm-wide-k",
            OpClass::Matvec => "matvec",
            OpClass::Relu => "relu",
            OpClass::Pool => "pool",
            OpClass::ResizeHGather => "resize-h-gather",
            OpClass::ResizeV => "resize-v",
            OpClass::Luma => "luma",
            OpClass::Standardize => "standardize",
        }
    }

    /// Inverse of [`OpClass::name`].
    pub fn from_name(name: &str) -> Option<OpClass> {
        OpClass::ALL.into_iter().find(|c| c.name() == name)
    }

    fn index(self) -> usize {
        OpClass::ALL
            .iter()
            .position(|c| *c == self)
            .expect("ALL is exhaustive")
    }
}

/// The class→tier table. Plain value type: build one (from the heuristic
/// defaults, a file, or `costmodel::kernels::calibrate`), then
/// [`install_policy`] it for the dispatchers to consult.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelPolicy {
    tiers: [SimdTier; OP_CLASS_COUNT],
}

impl Default for KernelPolicy {
    fn default() -> Self {
        KernelPolicy::heuristic()
    }
}

impl KernelPolicy {
    /// The measurement-free default: every class resolves by detection,
    /// except the two resize passes, which are pinned to AVX2. On every
    /// AVX-512 part measured so far the 16-lane `_mm512_i32gather_ps`
    /// kernel trails the 8-lane AVX2 gather by ~25% (ROADMAP, PR 3), so
    /// detection's "widest wins" rule is exactly wrong for the horizontal
    /// pass — and because the two passes interleave row by row, they share
    /// one frequency-license domain: an AVX-512 vertical pass would keep
    /// the core in the reduced 512-bit license while the AVX2 gathers run,
    /// making the *mixed* resize slower than either pure tier (measured:
    /// mixed ~22 µs vs pure-AVX2 ~15 µs for 224→120 gray). A machine
    /// without AVX2 demotes both to detection at dispatch.
    pub fn heuristic() -> KernelPolicy {
        let mut p = KernelPolicy::uniform(SimdTier::Auto);
        p.set(OpClass::ResizeHGather, SimdTier::Avx2);
        p.set(OpClass::ResizeV, SimdTier::Avx2);
        p
    }

    /// Every class forced to one tier (the CI forced-tier matrix).
    pub fn uniform(tier: SimdTier) -> KernelPolicy {
        KernelPolicy {
            tiers: [tier; OP_CLASS_COUNT],
        }
    }

    /// The tier chosen for `class`.
    pub fn tier(&self, class: OpClass) -> SimdTier {
        self.tiers[class.index()]
    }

    /// Set the tier for `class`.
    pub fn set(&mut self, class: OpClass, tier: SimdTier) {
        self.tiers[class.index()] = tier;
    }

    /// Serialized text form: one `class=tier` line per class, stable
    /// order, `#` comments. [`KernelPolicy::parse`] round-trips it.
    pub fn serialize(&self) -> String {
        let mut out = String::from("# tahoma kernel policy: op-class=tier\n");
        for class in OpClass::ALL {
            out.push_str(class.name());
            out.push('=');
            out.push_str(self.tier(class).name());
            out.push('\n');
        }
        out
    }

    /// Parse the [`KernelPolicy::serialize`] form. Unknown classes and
    /// malformed lines are errors (a policy file is small and
    /// hand-auditable; silent salvage would hide typos in CI forcing).
    /// Classes absent from the text keep their heuristic default.
    pub fn parse(text: &str) -> Result<KernelPolicy, String> {
        let mut policy = KernelPolicy::heuristic();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            policy
                .apply_entry(line)
                .map_err(|e| format!("policy line {}: {e} (got {line:?})", ln + 1))?;
        }
        Ok(policy)
    }

    /// Apply one `class=tier` entry.
    fn apply_entry(&mut self, entry: &str) -> Result<(), String> {
        let (class, tier) = entry
            .split_once('=')
            .ok_or_else(|| "expected class=tier".to_string())?;
        let class = OpClass::from_name(class.trim())
            .ok_or_else(|| format!("unknown op class {:?}", class.trim()))?;
        let tier = SimdTier::from_name(tier.trim())
            .ok_or_else(|| format!("unknown tier {:?}", tier.trim()))?;
        self.set(class, tier);
        Ok(())
    }

    /// Apply one [`POLICY_ENV`]-style override spec on top of this policy
    /// (see [`POLICY_ENV`] for the accepted forms).
    pub fn apply_override(&mut self, spec: &str) -> Result<(), String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(());
        }
        if let Some(path) = spec.strip_prefix('@') {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read policy file {path:?}: {e}"))?;
            *self = KernelPolicy::parse(&text)?;
            return Ok(());
        }
        if let Some(tier) = SimdTier::from_name(spec) {
            *self = KernelPolicy::uniform(tier);
            return Ok(());
        }
        // All-or-nothing: build on a scratch copy so a typo halfway
        // through the list leaves `self` untouched (an "ignored" invalid
        // override must not half-apply its valid prefix).
        let mut next = self.clone();
        for entry in spec.split(',') {
            next.apply_entry(entry.trim())?;
        }
        *self = next;
        Ok(())
    }

    /// The heuristic defaults with the [`POLICY_ENV`] value (if any)
    /// applied. An invalid value is reported on stderr and ignored rather
    /// than panicking inside whatever hot path first touched the policy.
    pub fn from_env() -> KernelPolicy {
        KernelPolicy::from_env_spec(std::env::var(POLICY_ENV).ok().as_deref())
    }

    /// [`KernelPolicy::from_env`] with the environment value passed in
    /// (testable without mutating process environment).
    pub fn from_env_spec(spec: Option<&str>) -> KernelPolicy {
        let mut policy = KernelPolicy::heuristic();
        if let Some(spec) = spec {
            if let Err(e) = policy.apply_override(spec) {
                eprintln!("warning: ignoring invalid {POLICY_ENV}: {e}");
            }
        }
        policy
    }

    /// Write the serialized policy to `path`.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.serialize())
    }

    /// Load a policy serialized by [`KernelPolicy::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<KernelPolicy> {
        let text = std::fs::read_to_string(path)?;
        KernelPolicy::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// The process-global policy: one atomic slot per op class, so the hot
/// dispatchers pay a single relaxed load. Initialized lazily from
/// [`KernelPolicy::from_env`].
fn global_slots() -> &'static [AtomicU8; OP_CLASS_COUNT] {
    static SLOTS: OnceLock<[AtomicU8; OP_CLASS_COUNT]> = OnceLock::new();
    SLOTS.get_or_init(|| {
        let policy = KernelPolicy::from_env();
        std::array::from_fn(|i| AtomicU8::new(policy.tiers[i].to_u8()))
    })
}

/// The globally installed tier for `class` — what `Kernel::Auto` resolves
/// through in the dispatching crates. `SimdTier::Auto` means "fall back to
/// feature detection".
pub fn global_tier(class: OpClass) -> SimdTier {
    SimdTier::from_u8(global_slots()[class.index()].load(Ordering::Relaxed))
}

/// Install `policy` as the process-global policy. The [`POLICY_ENV`]
/// override is re-applied on top, so CI forcing beats an in-process
/// calibration (the forced-tier matrix must actually exercise the tier it
/// names). Returns the policy that was actually installed.
pub fn install_policy(policy: &KernelPolicy) -> KernelPolicy {
    let mut effective = policy.clone();
    if let Ok(spec) = std::env::var(POLICY_ENV) {
        if let Err(e) = effective.apply_override(&spec) {
            eprintln!("warning: ignoring invalid {POLICY_ENV}: {e}");
        }
    }
    let slots = global_slots();
    for (slot, tier) in slots.iter().zip(effective.tiers) {
        slot.store(tier.to_u8(), Ordering::Relaxed);
    }
    effective
}

/// Snapshot of the process-global policy.
pub fn global_policy() -> KernelPolicy {
    let slots = global_slots();
    KernelPolicy {
        tiers: std::array::from_fn(|i| SimdTier::from_u8(slots[i].load(Ordering::Relaxed))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for tier in SimdTier::ALL {
            assert_eq!(SimdTier::from_name(tier.name()), Some(tier));
        }
        for class in OpClass::ALL {
            assert_eq!(OpClass::from_name(class.name()), Some(class));
        }
        assert_eq!(SimdTier::from_name("sse9"), None);
        assert_eq!(OpClass::from_name("fft"), None);
    }

    #[test]
    fn heuristic_pins_resize_to_avx2() {
        let p = KernelPolicy::heuristic();
        assert_eq!(p.tier(OpClass::ResizeHGather), SimdTier::Avx2);
        assert_eq!(p.tier(OpClass::ResizeV), SimdTier::Avx2);
        assert_eq!(p.tier(OpClass::Gemm), SimdTier::Auto);
        assert_eq!(p.tier(OpClass::Luma), SimdTier::Auto);
    }

    #[test]
    fn serialize_parse_round_trip() {
        let mut p = KernelPolicy::heuristic();
        p.set(OpClass::Gemm, SimdTier::Avx512);
        p.set(OpClass::Relu, SimdTier::Portable);
        let text = p.serialize();
        let back = KernelPolicy::parse(&text).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(KernelPolicy::parse("gemm").is_err());
        assert!(KernelPolicy::parse("gemm=sse9").is_err());
        assert!(KernelPolicy::parse("fft=avx2").is_err());
        // Comments and blanks are fine; unknown content is not.
        assert!(KernelPolicy::parse("# note\n\ngemm=avx2\n").is_ok());
    }

    #[test]
    fn env_spec_forms() {
        // Tier name forces every class.
        let p = KernelPolicy::from_env_spec(Some("portable"));
        assert_eq!(p, KernelPolicy::uniform(SimdTier::Portable));
        // class=tier list overrides on top of the heuristic.
        let p = KernelPolicy::from_env_spec(Some("gemm=avx512, luma=portable"));
        assert_eq!(p.tier(OpClass::Gemm), SimdTier::Avx512);
        assert_eq!(p.tier(OpClass::Luma), SimdTier::Portable);
        assert_eq!(p.tier(OpClass::ResizeHGather), SimdTier::Avx2);
        // Invalid spec falls back to the heuristic (with a warning).
        let p = KernelPolicy::from_env_spec(Some("?!"));
        assert_eq!(p, KernelPolicy::heuristic());
        // A partially-invalid list is all-or-nothing: the valid prefix
        // must not half-apply.
        let p = KernelPolicy::from_env_spec(Some("gemm=avx512,relu=protable"));
        assert_eq!(p, KernelPolicy::heuristic());
        // Absent spec is the heuristic.
        assert_eq!(KernelPolicy::from_env_spec(None), KernelPolicy::heuristic());
    }

    #[test]
    fn file_round_trip_and_at_override() {
        let dir = std::env::temp_dir().join(format!("tahoma-policy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kernels.policy");
        let mut p = KernelPolicy::heuristic();
        p.set(OpClass::Pool, SimdTier::Avx512);
        p.save(&path).unwrap();
        assert_eq!(KernelPolicy::load(&path).unwrap(), p);
        let from_at = KernelPolicy::from_env_spec(Some(&format!("@{}", path.display())));
        assert_eq!(from_at, p);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn install_and_snapshot_global() {
        // Restore whatever was installed so concurrently running tests that
        // dispatch through `Auto` are perturbed as briefly as possible (any
        // tier they land on is bitwise-identical anyway).
        let before = global_policy();
        let mut p = KernelPolicy::heuristic();
        p.set(OpClass::Standardize, SimdTier::Portable);
        let effective = install_policy(&p);
        // Without an env override, the installed policy is the requested one.
        if std::env::var(POLICY_ENV).is_err() {
            assert_eq!(effective, p);
            assert_eq!(global_tier(OpClass::Standardize), SimdTier::Portable);
            assert_eq!(global_policy(), p);
        }
        install_policy(&before);
    }
}

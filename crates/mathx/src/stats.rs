//! Descriptive statistics and special functions used by the evaluation.

/// Logistic sigmoid, numerically stable for large |x|.
#[inline]
pub fn logistic(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Standard normal CDF via the Abramowitz-Stegun 7.1.26 erf approximation
/// (max absolute error < 1.5e-7, ample for calibration targets).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Inverse standard normal CDF (Acklam's rational approximation).
/// Accurate to ~1e-9 over (0, 1); panics outside the open interval.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); 0.0 for fewer than 2 items.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Percentile with linear interpolation; `q` in [0, 100].
/// Panics on an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "q must be in [0,100]");
    let mut v: Vec<f64> = xs.to_vec();
    // total_cmp keeps the sort total under NaN inputs (NaN sorts last,
    // so it only influences the top percentiles it genuinely occupies).
    v.sort_by(f64::total_cmp);
    let rank = q / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub median: f64,
    pub max: f64,
}

impl Summary {
    /// Summarize a non-empty sample. Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "Summary::of on empty slice");
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min,
            median: percentile(xs, 50.0),
            max,
        }
    }
}

/// Geometric mean of strictly positive values; panics if any value <= 0.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric_mean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric_mean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_symmetry() {
        for &x in &[-30.0, -3.0, -0.5, 0.0, 0.5, 3.0, 30.0] {
            let s = logistic(x) + logistic(-x);
            assert!((s - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn logistic_extremes_do_not_overflow() {
        assert!(logistic(1000.0) <= 1.0);
        assert!(logistic(-1000.0) >= 0.0);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-5, "p={p} x={x}");
        }
    }

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935299395).abs() < 1e-9);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.median - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_powers() {
        let g = geometric_mean(&[1.0, 10.0, 100.0]);
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}

//! The cost profiler from the paper's architecture diagram (Fig. 2).
//!
//! [`AnalyticProfiler`] prices models under a scenario using the calibrated
//! device/storage/transform models — this is what the paper-scale
//! experiments use, so that throughput *shapes* match the authors' GPU
//! testbed. [`MeasuredProfiler`] instead times the real substrate on this
//! machine (codec decode, `Representation::apply`, `tahoma-nn` forward
//! passes); it demonstrates that the profiling machinery is real and is used
//! by the scaled-down experiments and tests.

use crate::device::DeviceProfile;
use crate::scenario::{Scenario, ScenarioCosts};
use std::time::Instant;
use tahoma_imagery::{BlockCodec, Codec, Image, Representation};
use tahoma_nn::Sequential;

/// The three cost terms of `t_classify = t_load + t_transform + t_infer`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Load + decode seconds.
    pub load_s: f64,
    /// Transform seconds.
    pub transform_s: f64,
    /// Inference seconds.
    pub infer_s: f64,
}

impl CostBreakdown {
    /// Total seconds.
    pub fn total_s(&self) -> f64 {
        self.load_s + self.transform_s + self.infer_s
    }

    /// Throughput if this were the cost of every image.
    pub fn fps(&self) -> f64 {
        1.0 / self.total_s()
    }
}

/// Prices the pieces of cascade execution under one deployment scenario.
pub trait CostProfiler {
    /// The scenario being priced.
    fn scenario(&self) -> Scenario;
    /// Cost paid once per image (e.g. ARCHIVE's full-frame load + decode).
    fn per_image_fixed_s(&self) -> f64;
    /// Cost paid once per (image, representation) materialized.
    fn rep_marginal_s(&self, rep: Representation) -> f64;
    /// Inference seconds for a model with the given FLOPs and input size.
    fn infer_s(&self, flops: u64, input_values: usize) -> f64;

    /// Standalone cost of running one model on one image (a single-level
    /// cascade), split into the paper's three terms.
    fn model_cost(&self, rep: Representation, flops: u64) -> CostBreakdown {
        let fixed = self.per_image_fixed_s();
        let marginal = self.rep_marginal_s(rep);
        let (load_s, transform_s) = match self.scenario() {
            Scenario::InferOnly => (0.0, 0.0),
            // ARCHIVE: fixed term is load+decode; marginal is transform.
            Scenario::Archive => (fixed, marginal),
            // ONGOING: marginal is a load of the stored representation.
            Scenario::Ongoing => (marginal, 0.0),
            // CAMERA: marginal is pure transform.
            Scenario::Camera => (0.0, marginal),
        };
        CostBreakdown {
            load_s,
            transform_s,
            infer_s: self.infer_s(flops, rep.value_count()),
        }
    }
}

/// Calibrated analytic profiler (device + scenario cost models).
#[derive(Debug, Clone)]
pub struct AnalyticProfiler {
    /// Compute device.
    pub device: DeviceProfile,
    /// Scenario data-handling pricing.
    pub costs: ScenarioCosts,
}

impl AnalyticProfiler {
    /// K80 + SSD pricing of the given scenario (the paper's testbed).
    pub fn paper_testbed(scenario: Scenario) -> AnalyticProfiler {
        AnalyticProfiler {
            device: DeviceProfile::k80(),
            costs: ScenarioCosts::new(scenario),
        }
    }
}

impl CostProfiler for AnalyticProfiler {
    fn scenario(&self) -> Scenario {
        self.costs.scenario
    }

    fn per_image_fixed_s(&self) -> f64 {
        self.costs.per_image_fixed_s()
    }

    fn rep_marginal_s(&self, rep: Representation) -> f64 {
        self.costs.per_rep_marginal_s(rep)
    }

    fn infer_s(&self, flops: u64, input_values: usize) -> f64 {
        self.device.infer_time(flops, input_values)
    }
}

/// Wall-clock profiler: times the real substrate on this machine.
#[derive(Debug, Clone)]
pub struct MeasuredProfiler {
    /// Scenario whose pipeline is measured.
    pub scenario: Scenario,
    /// Timing repetitions; the median is reported.
    pub repetitions: usize,
}

impl MeasuredProfiler {
    /// Create a measured profiler with a sensible repetition count.
    pub fn new(scenario: Scenario) -> MeasuredProfiler {
        MeasuredProfiler {
            scenario,
            repetitions: 5,
        }
    }

    /// Median wall-clock seconds of `f` over `repetitions` runs.
    pub fn time_median(&self, mut f: impl FnMut()) -> f64 {
        let reps = self.repetitions.max(1);
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(f64::total_cmp);
        samples[reps / 2]
    }

    /// Measure producing `rep` from a real full-resolution frame, including
    /// scenario-appropriate load/decode work.
    pub fn measure_rep_marginal(&self, full: &Image, rep: Representation) -> f64 {
        match self.scenario {
            Scenario::InferOnly => 0.0,
            Scenario::Camera => self.time_median(|| {
                let _ = rep.apply(full).expect("representation applies");
            }),
            Scenario::Archive => {
                // Transform stage only; the full-frame decode is the fixed
                // per-image cost measured separately.
                self.time_median(|| {
                    let _ = rep.apply(full).expect("representation applies");
                })
            }
            Scenario::Ongoing => {
                // Stored representation decode (raw codec roundtrip's read
                // half): encode once outside the timer, time decode.
                let stored = rep.apply(full).expect("representation applies");
                let bytes = tahoma_imagery::RawCodec.encode(&stored);
                self.time_median(|| {
                    let _ = tahoma_imagery::RawCodec.decode(&bytes).expect("decodes");
                })
            }
        }
    }

    /// Measure the ARCHIVE fixed cost: decoding a compressed full frame.
    pub fn measure_full_decode(&self, full: &Image) -> f64 {
        let codec = BlockCodec::default();
        let bytes = codec.encode(full);
        self.time_median(|| {
            let _ = codec.decode(&bytes).expect("decodes");
        })
    }

    /// Measure one real forward pass of a `tahoma-nn` model.
    pub fn measure_infer(&self, model: &mut Sequential, input: &[f32]) -> f64 {
        let reps = self.repetitions.max(1);
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            let _ = model.forward_logit(input);
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(f64::total_cmp);
        samples[reps / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_imagery::ColorMode;
    use tahoma_nn::{CnnSpec, Shape};

    #[test]
    fn cost_breakdown_totals_and_fps() {
        let c = CostBreakdown {
            load_s: 1e-3,
            transform_s: 2e-3,
            infer_s: 7e-3,
        };
        assert!((c.total_s() - 1e-2).abs() < 1e-15);
        assert!((c.fps() - 100.0).abs() < 1e-9);
        let zero = CostBreakdown::default();
        assert_eq!(zero.total_s(), 0.0);
    }

    #[test]
    fn analytic_model_cost_terms_route_by_scenario() {
        let rep = Representation::new(30, ColorMode::Gray);
        let flops = 1_000_000u64;

        let infer_only = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
        let c = infer_only.model_cost(rep, flops);
        assert_eq!(c.load_s, 0.0);
        assert_eq!(c.transform_s, 0.0);
        assert!(c.infer_s > 0.0);

        let archive = AnalyticProfiler::paper_testbed(Scenario::Archive);
        let c = archive.model_cost(rep, flops);
        assert!(c.load_s > 0.0 && c.transform_s > 0.0);

        let ongoing = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
        let c = ongoing.model_cost(rep, flops);
        assert!(c.load_s > 0.0);
        assert_eq!(c.transform_s, 0.0);

        let camera = AnalyticProfiler::paper_testbed(Scenario::Camera);
        let c = camera.model_cost(rep, flops);
        assert_eq!(c.load_s, 0.0);
        assert!(c.transform_s > 0.0);
    }

    #[test]
    fn scenario_throughput_ordering_for_a_small_model() {
        // For a small fast model: INFER-ONLY > ONGOING > CAMERA > ARCHIVE.
        let rep = Representation::new(30, ColorMode::Gray);
        let flops = 400_000u64;
        let fps = |s: Scenario| {
            AnalyticProfiler::paper_testbed(s)
                .model_cost(rep, flops)
                .fps()
        };
        let (io, on, cam, ar) = (
            fps(Scenario::InferOnly),
            fps(Scenario::Ongoing),
            fps(Scenario::Camera),
            fps(Scenario::Archive),
        );
        assert!(io > on, "{io} !> {on}");
        assert!(on > cam, "{on} !> {cam}");
        assert!(cam > ar, "{cam} !> {ar}");
    }

    #[test]
    fn measured_profiler_returns_positive_times() {
        let full = Image::from_fn(224, 224, ColorMode::Rgb, |c, y, x| {
            ((c + y + x) % 13) as f32 / 13.0
        })
        .unwrap();
        let prof = MeasuredProfiler::new(Scenario::Camera);
        let rep = Representation::new(30, ColorMode::Gray);
        assert!(prof.measure_rep_marginal(&full, rep) > 0.0);
        assert!(prof.measure_full_decode(&full) > 0.0);
    }

    #[test]
    fn measured_infer_scales_with_model_size() {
        let prof = MeasuredProfiler::new(Scenario::InferOnly);
        let mut small = CnnSpec {
            input: Shape::new(1, 16, 16),
            conv_channels: vec![4],
            kernel: 3,
            dense_units: 8,
        }
        .build(1)
        .unwrap();
        let mut large = CnnSpec {
            input: Shape::new(3, 64, 64),
            conv_channels: vec![16, 16],
            kernel: 3,
            dense_units: 32,
        }
        .build(1)
        .unwrap();
        let t_small = prof.measure_infer(&mut small, &vec![0.5; 256]);
        let t_large = prof.measure_infer(&mut large, &vec![0.5; 3 * 64 * 64]);
        assert!(
            t_large > t_small,
            "large model not slower: {t_large} vs {t_small}"
        );
    }

    #[test]
    fn measured_ongoing_decode_positive() {
        let full = Image::from_fn(224, 224, ColorMode::Rgb, |_, y, x| {
            ((y * 31 + x) % 7) as f32 / 7.0
        })
        .unwrap();
        let prof = MeasuredProfiler::new(Scenario::Ongoing);
        let rep = Representation::new(60, ColorMode::Rgb);
        assert!(prof.measure_rep_marginal(&full, rep) > 0.0);
    }
}

//! The paper's four deployment scenarios (§III issue 4, §VII-A).
//!
//! A scenario decomposes data-handling cost into:
//!
//! * a **per-image fixed cost**, paid once for every image the query
//!   touches (e.g. ARCHIVE loads and decodes the full frame from SSD before
//!   any representation can be produced), and
//! * a **per-representation marginal cost**, paid once per distinct
//!   representation an image's cascade path actually materializes (§VII-A:
//!   "costs to create that input are incurred only once per image").
//!
//! The cascade evaluator combines these with per-model inference costs.

use crate::calibration;
use crate::storage::StorageProfile;
use crate::transform::TransformCostModel;
use std::fmt;
use tahoma_imagery::Representation;

/// The four deployment scenarios evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scenario {
    /// Only inference cost — the computer-vision-literature convention.
    InferOnly,
    /// Full-size compressed frames on SSD; load + decode + transform.
    Archive,
    /// Pre-transformed representations stored on SSD at ingest; load only.
    Ongoing,
    /// Frames arrive in memory from the sensor; transform only.
    Camera,
}

impl Scenario {
    /// All four scenarios in the paper's presentation order.
    pub const ALL: [Scenario; 4] = [
        Scenario::InferOnly,
        Scenario::Archive,
        Scenario::Ongoing,
        Scenario::Camera,
    ];

    /// Uppercase display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::InferOnly => "INFER ONLY",
            Scenario::Archive => "ARCHIVE",
            Scenario::Ongoing => "ONGOING",
            Scenario::Camera => "CAMERA",
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Concrete data-handling costs for a scenario on given hardware profiles.
#[derive(Debug, Clone)]
pub struct ScenarioCosts {
    /// Which scenario this prices.
    pub scenario: Scenario,
    /// Storage tier for loads (ARCHIVE / ONGOING).
    pub storage: StorageProfile,
    /// Transform-stage cost model (ARCHIVE / CAMERA).
    pub transform: TransformCostModel,
    /// Stored size of a compressed full frame (ARCHIVE), bytes.
    pub archive_frame_bytes: usize,
    /// Decode cost per sample of the compressed full frame (ARCHIVE).
    pub decode_s_per_sample: f64,
    /// Dequantization cost per sample of a stored representation (ONGOING).
    pub dequant_s_per_sample: f64,
}

impl ScenarioCosts {
    /// Default pricing of a scenario on SSD storage with the calibrated
    /// transform model.
    pub fn new(scenario: Scenario) -> ScenarioCosts {
        ScenarioCosts {
            scenario,
            storage: StorageProfile::ssd(),
            transform: TransformCostModel::default(),
            archive_frame_bytes: calibration::ARCHIVE_FRAME_BYTES,
            decode_s_per_sample: calibration::DECODE_S_PER_SAMPLE,
            dequant_s_per_sample: calibration::DEQUANT_S_PER_SAMPLE,
        }
    }

    /// Cost paid once per image regardless of which models run.
    pub fn per_image_fixed_s(&self) -> f64 {
        match self.scenario {
            Scenario::InferOnly | Scenario::Camera | Scenario::Ongoing => 0.0,
            Scenario::Archive => {
                let full_samples = {
                    let s = self.transform.source_size;
                    (s * s * 3) as f64
                };
                self.storage.load_time(self.archive_frame_bytes)
                    + self.decode_s_per_sample * full_samples
            }
        }
    }

    /// Marginal cost of materializing one representation for one image,
    /// charged once per (image, representation).
    pub fn per_rep_marginal_s(&self, rep: Representation) -> f64 {
        match self.scenario {
            Scenario::InferOnly => 0.0,
            Scenario::Camera | Scenario::Archive => self.transform.transform_time(rep),
            Scenario::Ongoing => {
                let bytes = rep.stored_bytes();
                self.storage.load_time(bytes) + self.dequant_s_per_sample * bytes as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_imagery::ColorMode;

    #[test]
    fn infer_only_has_zero_data_costs() {
        let sc = ScenarioCosts::new(Scenario::InferOnly);
        assert_eq!(sc.per_image_fixed_s(), 0.0);
        for rep in Representation::paper_set() {
            assert_eq!(sc.per_rep_marginal_s(rep), 0.0);
        }
    }

    #[test]
    fn archive_fixed_cost_near_seven_ms() {
        let sc = ScenarioCosts::new(Scenario::Archive);
        let t = sc.per_image_fixed_s();
        assert!((6e-3..8e-3).contains(&t), "ARCHIVE fixed {t}");
    }

    #[test]
    fn camera_charges_transform_only() {
        let sc = ScenarioCosts::new(Scenario::Camera);
        assert_eq!(sc.per_image_fixed_s(), 0.0);
        let rep = Representation::new(30, ColorMode::Gray);
        assert!(sc.per_rep_marginal_s(rep) > 0.0);
        // Identity representation is free: the frame is already in memory.
        assert_eq!(sc.per_rep_marginal_s(Representation::full()), 0.0);
    }

    #[test]
    fn ongoing_charges_load_proportional_to_rep_size() {
        let sc = ScenarioCosts::new(Scenario::Ongoing);
        let small = sc.per_rep_marginal_s(Representation::new(30, ColorMode::Gray));
        let large = sc.per_rep_marginal_s(Representation::new(224, ColorMode::Rgb));
        assert!(small < large);
        // 30x30 gray = 900 bytes: dominated by seek, well under 100 us.
        assert!(small < 100e-6, "small rep load {small}");
    }

    #[test]
    fn ongoing_small_loads_cheaper_than_camera_transforms() {
        // The paper's ONGOING >> CAMERA ordering at fixed accuracy comes
        // from this relation for the small representations.
        let ongoing = ScenarioCosts::new(Scenario::Ongoing);
        let camera = ScenarioCosts::new(Scenario::Camera);
        let rep = Representation::new(30, ColorMode::Gray);
        assert!(ongoing.per_rep_marginal_s(rep) < camera.per_rep_marginal_s(rep));
    }

    #[test]
    fn archive_marginal_matches_camera_marginal() {
        // After the fixed full-frame load, ARCHIVE pays the same transform
        // costs CAMERA does.
        let archive = ScenarioCosts::new(Scenario::Archive);
        let camera = ScenarioCosts::new(Scenario::Camera);
        for rep in Representation::paper_set() {
            assert_eq!(
                archive.per_rep_marginal_s(rep),
                camera.per_rep_marginal_s(rep)
            );
        }
    }

    #[test]
    fn scenario_names_match_paper() {
        assert_eq!(Scenario::InferOnly.name(), "INFER ONLY");
        assert_eq!(Scenario::ALL.len(), 4);
    }
}

//! Measured store-read calibration and the §V storage-budget policy.
//!
//! The paper's §V frames representation storage as a *latency-for-bytes*
//! trade: materializing a lattice node at ingest spends storage
//! amplification to make every later fetch a raw read, while leaving it
//! virtual keeps bytes down but charges each query a source fetch plus a
//! transcode. Pricing that trade requires knowing what a persistent-store
//! read *actually* costs on the running machine — which, per the §IV
//! discipline this repo already applies to SIMD kernels
//! ([`crate::kernels`]), is measured rather than guessed:
//! [`IoProfile::measure`] ingests a scratch corpus into a real
//! [`RepresentationStore`] persistent tier, times the full
//! fetch-and-decode path for two payload size classes with
//! [`MeasuredProfiler`]'s median machinery, and affine-fits a per-fetch
//! overhead plus streaming throughput.
//!
//! [`plan_materialization`] then operationalizes the policy: given a
//! per-item byte budget, it greedily materializes the lattice nodes with
//! the highest query-latency gain per stored byte — gain being the
//! difference between the on-demand cost (source fetch + transcode priced
//! by [`TransformCostModel::transcode_costs`] through the engine's lattice
//! planner, exactly how the serving fallback in `core::exec` executes it)
//! and the direct fetch cost under the measured [`IoProfile`]. The source
//! representation is always materialized: the ONGOING scenario persists
//! the raw frame at ingest (§III) and every on-demand transcode starts
//! from it.

use crate::calibration;
use crate::profiler::MeasuredProfiler;
use crate::scenario::Scenario;
use crate::transform::TransformCostModel;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tahoma_imagery::codec::RAW_HEADER_LEN;
use tahoma_imagery::segment::RECORD_HEADER_LEN;
use tahoma_imagery::{
    ColorMode, Image, ImageryError, Representation, RepresentationStore, TranscodeEngine,
    TranscodePlan,
};

/// Measured cost of one persistent-store fetch, affine in the payload
/// size: `per_fetch_s + bytes / bytes_per_sec`. Covers the *whole* read
/// path the executor pays — shard index lookup, mmap (or pread) byte
/// access, and the raw-codec dequantization into a pooled `f32` buffer —
/// so planning against it prices what `RepresentationStore::fetch`
/// actually does, not just the device's streaming rate.
#[derive(Debug, Clone, PartialEq)]
pub struct IoProfile {
    /// Fixed per-fetch overhead, seconds.
    pub per_fetch_s: f64,
    /// Streaming throughput of the fetch+decode path, bytes per second.
    pub bytes_per_sec: f64,
}

impl IoProfile {
    /// Analytic fallback calibrated to the paper's SSD testbed: the
    /// per-request seek and streaming rate from
    /// [`crate::storage::StorageProfile::ssd`]. Real calibrations come out
    /// faster on a warm page cache; use [`IoProfile::measure`] when the
    /// plan will drive a live store.
    pub fn assumed_ssd() -> IoProfile {
        IoProfile {
            per_fetch_s: calibration::SSD_SEEK_S,
            bytes_per_sec: calibration::SSD_BYTES_PER_SEC,
        }
    }

    /// Seconds to fetch and decode a stored blob of `payload_bytes`.
    pub fn fetch_time(&self, payload_bytes: usize) -> f64 {
        self.per_fetch_s + payload_bytes as f64 / self.bytes_per_sec
    }

    /// Seconds to fetch and decode `rep`'s stored blob.
    pub fn rep_fetch_time(&self, rep: Representation) -> f64 {
        self.fetch_time(stored_payload_bytes(rep))
    }

    /// Measure this machine's store-read profile with the default
    /// profiler (median of 5 repetitions per size class).
    pub fn measure() -> Result<IoProfile, ImageryError> {
        let mut profiler = MeasuredProfiler::new(Scenario::Ongoing);
        profiler.repetitions = 5;
        IoProfile::measure_with(&profiler)
    }

    /// Measure with `profiler`'s median machinery: build a scratch
    /// persistent store in the system temp directory, ingest a small
    /// corpus, time warm fetch sweeps over a small and a large
    /// representation, and affine-fit the two points. The scratch
    /// directory is removed before returning.
    pub fn measure_with(profiler: &MeasuredProfiler) -> Result<IoProfile, ImageryError> {
        let dir = scratch_dir();
        let profile = measure_in(profiler, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        profile
    }
}

/// Distinguishable size classes for the affine fit: 913 B vs 43 213 B
/// payloads, far enough apart that the slope dominates timing noise.
const SMALL_REP: Representation = Representation::new(30, ColorMode::Gray);
const LARGE_REP: Representation = Representation::new(120, ColorMode::Rgb);
/// Corpus size for the calibration sweeps; one sweep fetches every item
/// once, so each timed sample aggregates this many fetches.
const CALIBRATION_ITEMS: u64 = 64;

fn measure_in(
    profiler: &MeasuredProfiler,
    dir: &std::path::Path,
) -> Result<IoProfile, ImageryError> {
    let store = RepresentationStore::persistent(vec![SMALL_REP, LARGE_REP], dir, 4)?;
    // A few distinct synthetic frames cycled across ids: enough to defeat
    // any value-dependent shortcut while keeping frame generation off the
    // calibration's critical path.
    let frames: Vec<Image> = (0..8)
        .map(|seed| {
            Image::from_fn(128, 128, ColorMode::Rgb, move |c, y, x| {
                let h = (x * 31 + y * 17 + c * 97 + seed * 13) % 251;
                h as f32 / 250.0
            })
            .expect("valid dims")
        })
        .collect();
    for id in 0..CALIBRATION_ITEMS {
        store.ingest(id, &frames[(id % 8) as usize])?;
    }
    store.sync()?;

    let mut engine = TranscodeEngine::new();
    let mut sweep = |rep: Representation| -> Result<f64, ImageryError> {
        let mut failed = None;
        let mut t = 0.0;
        // Two passes; the first warms every page so the size classes
        // measure the store's steady state rather than first-touch
        // faults, and only the second pass's median is kept.
        for _pass in 0..2 {
            t = profiler.time_median(|| {
                for id in 0..CALIBRATION_ITEMS {
                    match store.fetch(id, rep, &mut engine) {
                        Some(Ok(img)) => engine.recycle([black_box(img)]),
                        Some(Err(e)) => failed = Some(e),
                        None => {
                            failed = Some(ImageryError::Io(format!(
                                "calibration item {id} missing {rep}"
                            )))
                        }
                    }
                }
            });
            if let Some(e) = failed.take() {
                return Err(e);
            }
        }
        Ok(t / CALIBRATION_ITEMS as f64)
    };
    let t_small = sweep(SMALL_REP)?;
    let t_large = sweep(LARGE_REP)?;

    let b_small = stored_payload_bytes(SMALL_REP) as f64;
    let b_large = stored_payload_bytes(LARGE_REP) as f64;
    let slope = (t_large - t_small) / (b_large - b_small);
    if slope > 0.0 {
        Ok(IoProfile {
            per_fetch_s: (t_small - slope * b_small).max(0.0),
            bytes_per_sec: 1.0 / slope,
        })
    } else {
        // Timing noise inverted the two points (possible on a loaded
        // machine with everything in page cache); fall back to pure
        // throughput from the large class.
        Ok(IoProfile {
            per_fetch_s: 0.0,
            bytes_per_sec: b_large / t_large.max(1e-12),
        })
    }
}

fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "tahoma-io-calibration-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Bytes of `rep`'s raw-codec blob as stored in a segment payload.
pub fn stored_payload_bytes(rep: Representation) -> usize {
    RAW_HEADER_LEN + rep.value_count()
}

/// Bytes `rep` occupies on disk per item, record framing included.
pub fn stored_record_bytes(rep: Representation) -> usize {
    RECORD_HEADER_LEN + stored_payload_bytes(rep)
}

/// Seconds to serve `rep` on demand: fetch the stored source blob, then
/// transcode — priced through the engine's lattice planner with the
/// model's [`TransformCostModel::transcode_costs`], the same machinery the
/// serving fallback executes.
pub fn on_demand_cost_s(
    source: Representation,
    rep: Representation,
    transform: &TransformCostModel,
    io: &IoProfile,
) -> f64 {
    io.rep_fetch_time(source) + transcode_cost_s(source, rep, transform)
}

fn transcode_cost_s(
    source: Representation,
    rep: Representation,
    transform: &TransformCostModel,
) -> f64 {
    TranscodePlan::new(
        source.size,
        source.size,
        &[rep],
        &transform.transcode_costs(),
    )
    .planned_cost_s()
}

/// The materialization decision for one representation set under a byte
/// budget: which lattice nodes to write at ingest and which to transcode
/// on demand at fetch. Produced by [`plan_materialization`].
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializationPlan {
    /// The source (full-detail) representation; always materialized.
    pub source: Representation,
    /// Representations written at ingest, source included, in greedy
    /// selection order (best latency-gain per byte first, after the
    /// mandatory source).
    pub materialized: Vec<Representation>,
    /// Representations served by source fetch + transcode.
    pub on_demand: Vec<Representation>,
    /// Bytes per item the plan stores, record framing included.
    pub stored_bytes_per_item: usize,
    /// The budget the plan was asked to fit.
    pub budget_bytes_per_item: usize,
}

impl MaterializationPlan {
    /// Whether `rep` is written at ingest under this plan.
    pub fn is_materialized(&self, rep: Representation) -> bool {
        self.materialized.contains(&rep)
    }

    /// Expected seconds to serve one `rep` fetch under this plan.
    pub fn fetch_cost_s(
        &self,
        rep: Representation,
        transform: &TransformCostModel,
        io: &IoProfile,
    ) -> f64 {
        if self.is_materialized(rep) {
            io.rep_fetch_time(rep)
        } else {
            on_demand_cost_s(self.source, rep, transform, io)
        }
    }

    /// Expected seconds to serve one fetch of *every* representation in
    /// the set — the per-item cost of a query sweep touching all lattice
    /// nodes. Monotone non-increasing in the budget.
    pub fn sweep_cost_s(&self, transform: &TransformCostModel, io: &IoProfile) -> f64 {
        self.materialized
            .iter()
            .chain(self.on_demand.iter())
            .map(|&r| self.fetch_cost_s(r, transform, io))
            .sum()
    }
}

/// Choose which of `reps` to materialize at ingest under a per-item byte
/// budget (§V). `source` is always materialized — the ONGOING scenario
/// persists the raw frame, and every on-demand transcode reads it — so
/// the plan can exceed a budget smaller than the source record itself.
/// The remaining budget goes to the representations with the highest
/// per-fetch latency gain (on-demand cost minus direct fetch cost, both
/// under the measured `io` profile) per stored byte; representations
/// whose direct fetch would not beat the on-demand path stay virtual at
/// any budget.
pub fn plan_materialization(
    reps: &[Representation],
    source: Representation,
    budget_bytes_per_item: usize,
    transform: &TransformCostModel,
    io: &IoProfile,
) -> MaterializationPlan {
    let mut candidates: Vec<Representation> = Vec::new();
    for &r in reps {
        if r != source && !candidates.contains(&r) {
            candidates.push(r);
        }
    }
    // Greedy by latency-gain density. The sort is total (total_cmp) and
    // tie-broken by the representation tag, so the plan is deterministic
    // across runs and platforms.
    let mut scored: Vec<(f64, f64, Representation)> = candidates
        .into_iter()
        .map(|r| {
            let gain = on_demand_cost_s(source, r, transform, io) - io.rep_fetch_time(r);
            (gain / stored_record_bytes(r) as f64, gain, r)
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.2.tag().cmp(&b.2.tag())));

    let mut materialized = vec![source];
    let mut on_demand = Vec::new();
    let mut stored = stored_record_bytes(source);
    for (_, gain, rep) in scored {
        let bytes = stored_record_bytes(rep);
        if gain > 0.0 && stored + bytes <= budget_bytes_per_item {
            stored += bytes;
            materialized.push(rep);
        } else {
            on_demand.push(rep);
        }
    }
    MaterializationPlan {
        source,
        materialized,
        on_demand,
        stored_bytes_per_item: stored,
        budget_bytes_per_item,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_imagery::{Codec, RawCodec};

    fn paper_reps() -> Vec<Representation> {
        Representation::paper_set()
    }

    fn source() -> Representation {
        Representation::full()
    }

    #[test]
    fn stored_byte_helpers_match_the_real_codec_and_framing() {
        for rep in paper_reps() {
            let img = Image::from_fn(rep.size, rep.size, rep.mode, |c, y, x| {
                ((c + y + x) % 7) as f32 / 6.0
            })
            .unwrap();
            assert_eq!(
                RawCodec.encode(&img).len(),
                stored_payload_bytes(rep),
                "{rep}"
            );
            assert_eq!(
                stored_record_bytes(rep) - stored_payload_bytes(rep),
                RECORD_HEADER_LEN
            );
        }
    }

    #[test]
    fn zero_budget_materializes_only_the_source() {
        let plan = plan_materialization(
            &paper_reps(),
            source(),
            0,
            &TransformCostModel::default(),
            &IoProfile::assumed_ssd(),
        );
        assert_eq!(plan.materialized, vec![source()]);
        assert_eq!(plan.on_demand.len(), paper_reps().len() - 1);
        assert_eq!(plan.stored_bytes_per_item, stored_record_bytes(source()));
    }

    #[test]
    fn unbounded_budget_materializes_every_winning_rep() {
        let model = TransformCostModel::default();
        let io = IoProfile::assumed_ssd();
        let plan = plan_materialization(&paper_reps(), source(), usize::MAX, &model, &io);
        // Under the SSD profile every smaller-than-source rep fetches
        // faster directly than via source fetch + transcode, so nothing
        // stays virtual.
        assert!(plan.on_demand.is_empty(), "{:?}", plan.on_demand);
        assert_eq!(plan.materialized.len(), paper_reps().len());
    }

    #[test]
    fn budget_is_respected_above_the_mandatory_source() {
        let model = TransformCostModel::default();
        let io = IoProfile::assumed_ssd();
        let src_bytes = stored_record_bytes(source());
        for extra in [0, 1_000, 10_000, 100_000] {
            let budget = src_bytes + extra;
            let plan = plan_materialization(&paper_reps(), source(), budget, &model, &io);
            assert!(
                plan.stored_bytes_per_item <= budget,
                "stored {} > budget {budget}",
                plan.stored_bytes_per_item
            );
            assert!(plan.is_materialized(source()));
        }
    }

    #[test]
    fn larger_budgets_monotonically_improve_the_sweep_cost() {
        let model = TransformCostModel::default();
        let io = IoProfile::assumed_ssd();
        let reps = paper_reps();
        let mut last_cost = f64::INFINITY;
        let mut last_count = 0;
        for budget in [0usize, 60_000, 80_000, 120_000, 200_000, 400_000] {
            let plan = plan_materialization(&reps, source(), budget, &model, &io);
            let cost = plan.sweep_cost_s(&model, &io);
            assert!(
                cost <= last_cost + 1e-15,
                "budget {budget}: sweep cost {cost} worse than smaller budget's {last_cost}"
            );
            assert!(plan.materialized.len() >= last_count);
            last_cost = cost;
            last_count = plan.materialized.len();
        }
    }

    #[test]
    fn greedy_spends_the_first_marginal_byte_on_the_densest_gain() {
        let model = TransformCostModel::default();
        let io = IoProfile::assumed_ssd();
        let reps = paper_reps();
        // Find the densest candidate directly, then give the planner just
        // enough budget for one extra rep of that size.
        let best = reps
            .iter()
            .filter(|&&r| r != source())
            .max_by(|&&a, &&b| {
                let da = (on_demand_cost_s(source(), a, &model, &io) - io.rep_fetch_time(a))
                    / stored_record_bytes(a) as f64;
                let db = (on_demand_cost_s(source(), b, &model, &io) - io.rep_fetch_time(b))
                    / stored_record_bytes(b) as f64;
                da.total_cmp(&db)
            })
            .copied()
            .unwrap();
        let budget = stored_record_bytes(source()) + stored_record_bytes(best);
        let plan = plan_materialization(&reps, source(), budget, &model, &io);
        assert!(
            plan.is_materialized(best),
            "densest rep {best} not chosen first: {:?}",
            plan.materialized
        );
    }

    #[test]
    fn on_demand_cost_exceeds_direct_fetch_for_small_reps() {
        let model = TransformCostModel::default();
        let io = IoProfile::assumed_ssd();
        let small = Representation::new(30, ColorMode::Gray);
        assert!(
            on_demand_cost_s(source(), small, &model, &io) > io.rep_fetch_time(small),
            "transcoding a 30px gray from the 224px source must cost more \
             than reading its 913-byte blob"
        );
    }

    #[test]
    fn measured_profile_is_sane_and_affine() {
        let mut profiler = MeasuredProfiler::new(Scenario::Ongoing);
        profiler.repetitions = 3;
        let io = IoProfile::measure_with(&profiler).unwrap();
        assert!(
            io.per_fetch_s.is_finite() && io.per_fetch_s >= 0.0,
            "per_fetch {}",
            io.per_fetch_s
        );
        assert!(
            io.bytes_per_sec.is_finite() && io.bytes_per_sec > 0.0,
            "throughput {}",
            io.bytes_per_sec
        );
        let t_small = io.fetch_time(1_000);
        let t_large = io.fetch_time(1_000_000);
        assert!(t_small > 0.0 && t_large > t_small);
    }
}

//! Cost of materializing a physical representation from the full frame.
//!
//! Mirrors the actual pipeline in `tahoma_imagery::repr::Representation::
//! apply`: color reduction runs over the full-resolution frame, then the
//! (cheaper) resize touches only the surviving channels. The asymmetry is
//! deliberate and observable in the experiments: a 30x30 *red* input is
//! cheaper to produce than a 30x30 *gray* input because channel extraction
//! is a plane copy while grayscale is a weighted sum of three planes.

use crate::calibration;
use tahoma_imagery::{ColorMode, Representation};

/// Analytic cost model for the transform stage.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformCostModel {
    /// Fixed overhead per transform invocation, seconds.
    pub op_overhead_s: f64,
    /// Per-source-pixel cost of single-channel extraction.
    pub extract_s_per_pixel: f64,
    /// Per-source-pixel cost of grayscale reduction.
    pub gray_s_per_pixel: f64,
    /// Per-input-sample cost of the resize read path.
    pub resize_s_per_in_sample: f64,
    /// Per-output-sample cost of the resize write path.
    pub resize_s_per_out_sample: f64,
    /// Side length of the full-resolution source frame.
    pub source_size: usize,
}

impl Default for TransformCostModel {
    fn default() -> Self {
        TransformCostModel {
            op_overhead_s: calibration::TRANSFORM_OP_OVERHEAD_S,
            extract_s_per_pixel: calibration::EXTRACT_S_PER_PIXEL,
            gray_s_per_pixel: calibration::GRAY_S_PER_PIXEL,
            resize_s_per_in_sample: calibration::RESIZE_S_PER_IN_SAMPLE,
            resize_s_per_out_sample: calibration::RESIZE_S_PER_OUT_SAMPLE,
            source_size: tahoma_imagery::repr::FULL_SIZE,
        }
    }
}

impl TransformCostModel {
    /// Seconds to produce `rep` from the in-memory full-resolution frame.
    /// The identity representation costs nothing (the frame is already in
    /// the right form).
    pub fn transform_time(&self, rep: Representation) -> f64 {
        if rep.is_identity() && rep.size == self.source_size {
            return 0.0;
        }
        let src_px = (self.source_size * self.source_size) as f64;
        let mut t = self.op_overhead_s;
        // Stage 1: color reduction over the full-resolution frame.
        match rep.mode {
            ColorMode::Rgb => {}
            ColorMode::Gray => t += self.gray_s_per_pixel * src_px,
            ColorMode::Red | ColorMode::Green | ColorMode::Blue => {
                t += self.extract_s_per_pixel * src_px
            }
        }
        // Stage 2: resize over surviving channels.
        if rep.size != self.source_size {
            let ch = rep.mode.channels() as f64;
            let out = (rep.size * rep.size) as f64;
            t +=
                self.resize_s_per_in_sample * src_px * ch + self.resize_s_per_out_sample * out * ch;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> TransformCostModel {
        TransformCostModel::default()
    }

    #[test]
    fn identity_is_free() {
        assert_eq!(m().transform_time(Representation::full()), 0.0);
    }

    #[test]
    fn extraction_cheaper_than_gray() {
        let red = m().transform_time(Representation::new(30, ColorMode::Red));
        let gray = m().transform_time(Representation::new(30, ColorMode::Gray));
        assert!(red < gray, "red {red} !< gray {gray}");
    }

    #[test]
    fn rgb_resize_touches_three_planes() {
        let rgb = m().transform_time(Representation::new(30, ColorMode::Rgb));
        let red = m().transform_time(Representation::new(30, ColorMode::Red));
        // RGB resize reads 3x the samples but skips the extraction pass.
        assert!(rgb > red, "rgb {rgb} !> red {red}");
    }

    #[test]
    fn smaller_targets_slightly_cheaper() {
        let s30 = m().transform_time(Representation::new(30, ColorMode::Gray));
        let s120 = m().transform_time(Representation::new(120, ColorMode::Gray));
        assert!(s30 < s120);
    }

    #[test]
    fn full_size_color_change_skips_resize() {
        let t224_gray = m().transform_time(Representation::new(224, ColorMode::Gray));
        let expected = m().op_overhead_s + m().gray_s_per_pixel * (224.0 * 224.0);
        assert!((t224_gray - expected).abs() < 1e-12);
    }

    #[test]
    fn all_paper_representations_have_finite_positive_or_zero_cost() {
        for rep in Representation::paper_set() {
            let t = m().transform_time(rep);
            assert!(t.is_finite() && t >= 0.0, "{rep}: {t}");
        }
    }
}

//! Cost of materializing a physical representation from the full frame.
//!
//! Mirrors the actual pipeline in `tahoma_imagery::repr::Representation::
//! apply`: color reduction runs over the full-resolution frame, then the
//! (cheaper) resize touches only the surviving channels. The asymmetry is
//! deliberate and observable in the experiments: a 30x30 *red* input is
//! cheaper to produce than a 30x30 *gray* input because channel extraction
//! is a plane copy while grayscale is a weighted sum of three planes.

use crate::calibration;
use tahoma_imagery::engine::{TranscodeCosts, TranscodePlan};
use tahoma_imagery::{ColorMode, Representation};

/// Analytic cost model for the transform stage.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformCostModel {
    /// Fixed overhead per transform invocation, seconds.
    pub op_overhead_s: f64,
    /// Per-source-pixel cost of single-channel extraction.
    pub extract_s_per_pixel: f64,
    /// Per-source-pixel cost of grayscale reduction.
    pub gray_s_per_pixel: f64,
    /// Per-input-sample cost of the resize read path.
    pub resize_s_per_in_sample: f64,
    /// Per-output-sample cost of the resize write path.
    pub resize_s_per_out_sample: f64,
    /// Side length of the full-resolution source frame.
    pub source_size: usize,
}

impl Default for TransformCostModel {
    fn default() -> Self {
        TransformCostModel {
            op_overhead_s: calibration::TRANSFORM_OP_OVERHEAD_S,
            extract_s_per_pixel: calibration::EXTRACT_S_PER_PIXEL,
            gray_s_per_pixel: calibration::GRAY_S_PER_PIXEL,
            resize_s_per_in_sample: calibration::RESIZE_S_PER_IN_SAMPLE,
            resize_s_per_out_sample: calibration::RESIZE_S_PER_OUT_SAMPLE,
            source_size: tahoma_imagery::repr::FULL_SIZE,
        }
    }
}

impl TransformCostModel {
    /// Seconds to produce `rep` from the in-memory full-resolution frame.
    /// The identity representation costs nothing (the frame is already in
    /// the right form).
    pub fn transform_time(&self, rep: Representation) -> f64 {
        if rep.is_identity() && rep.size == self.source_size {
            return 0.0;
        }
        let src_px = (self.source_size * self.source_size) as f64;
        let mut t = self.op_overhead_s;
        // Stage 1: color reduction over the full-resolution frame.
        match rep.mode {
            ColorMode::Rgb => {}
            ColorMode::Gray => t += self.gray_s_per_pixel * src_px,
            ColorMode::Red | ColorMode::Green | ColorMode::Blue => {
                t += self.extract_s_per_pixel * src_px
            }
        }
        // Stage 2: resize over surviving channels.
        if rep.size != self.source_size {
            let ch = rep.mode.channels() as f64;
            let out = (rep.size * rep.size) as f64;
            t +=
                self.resize_s_per_in_sample * src_px * ch + self.resize_s_per_out_sample * out * ch;
        }
        t
    }

    /// This model's per-unit constants in the form the transcode engine's
    /// lattice planner prices with. Building plans through this keeps the
    /// planner-visible cost of a shared materialization in the same units
    /// as [`TransformCostModel::transform_time`].
    pub fn transcode_costs(&self) -> TranscodeCosts {
        TranscodeCosts {
            op_overhead_s: self.op_overhead_s,
            extract_s_per_pixel: self.extract_s_per_pixel,
            gray_s_per_pixel: self.gray_s_per_pixel,
            resize_s_per_in_sample: self.resize_s_per_in_sample,
            resize_s_per_out_sample: self.resize_s_per_out_sample,
        }
    }

    /// Seconds to materialize a whole representation set from one in-memory
    /// full-resolution frame under the engine's lattice plan (shared luma
    /// sweep, borrowed planes, streaming resizes). Far below the sum of the
    /// per-representation [`TransformCostModel::transform_time`]s whenever
    /// the set shares work, but not a strict per-element lower bound: the
    /// plan prices resize reads as 2 gathered samples per output column of
    /// each touched row, which on a *mild* downscale (e.g. 224→120, where
    /// every source row is touched) comes out slightly above
    /// `transform_time`'s every-input-sample model (bounded at ~10%; the
    /// tests pin both directions).
    pub fn set_transform_time(&self, reps: &[Representation]) -> f64 {
        TranscodePlan::new(
            self.source_size,
            self.source_size,
            reps,
            &self.transcode_costs(),
        )
        .planned_cost_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> TransformCostModel {
        TransformCostModel::default()
    }

    #[test]
    fn identity_is_free() {
        assert_eq!(m().transform_time(Representation::full()), 0.0);
    }

    #[test]
    fn extraction_cheaper_than_gray() {
        let red = m().transform_time(Representation::new(30, ColorMode::Red));
        let gray = m().transform_time(Representation::new(30, ColorMode::Gray));
        assert!(red < gray, "red {red} !< gray {gray}");
    }

    #[test]
    fn rgb_resize_touches_three_planes() {
        let rgb = m().transform_time(Representation::new(30, ColorMode::Rgb));
        let red = m().transform_time(Representation::new(30, ColorMode::Red));
        // RGB resize reads 3x the samples but skips the extraction pass.
        assert!(rgb > red, "rgb {rgb} !> red {red}");
    }

    #[test]
    fn smaller_targets_slightly_cheaper() {
        let s30 = m().transform_time(Representation::new(30, ColorMode::Gray));
        let s120 = m().transform_time(Representation::new(120, ColorMode::Gray));
        assert!(s30 < s120);
    }

    #[test]
    fn full_size_color_change_skips_resize() {
        let t224_gray = m().transform_time(Representation::new(224, ColorMode::Gray));
        let expected = m().op_overhead_s + m().gray_s_per_pixel * (224.0 * 224.0);
        assert!((t224_gray - expected).abs() < 1e-12);
    }

    #[test]
    fn all_paper_representations_have_finite_positive_or_zero_cost() {
        for rep in Representation::paper_set() {
            let t = m().transform_time(rep);
            assert!(t.is_finite() && t >= 0.0, "{rep}: {t}");
        }
    }

    #[test]
    fn engine_default_costs_mirror_calibration() {
        // `TranscodeCosts::default()` (used when planning without a cost
        // model in hand) must stay in sync with the calibrated constants.
        assert_eq!(TranscodeCosts::default(), m().transcode_costs());
    }

    #[test]
    fn planned_set_cost_is_at_most_the_naive_sum() {
        let model = m();
        let reps = Representation::paper_set();
        let naive: f64 = reps.iter().map(|&r| model.transform_time(r)).sum();
        let planned = model.set_transform_time(&reps);
        assert!(
            planned < naive / 2.0,
            "planned {planned} vs naive {naive}: the lattice shares the \
             luma sweep and drops the extraction passes"
        );
        // A single representation prices close to its direct path: the
        // plan's read term counts 2 gathered samples per output column of
        // each touched row, which can slightly exceed the naive
        // every-input-sample model on mild downscales (224 -> 120 touches
        // every row) but is far below it on aggressive ones.
        for &rep in &reps {
            let planned = model.set_transform_time(&[rep]);
            let direct = model.transform_time(rep);
            assert!(
                planned <= direct * 1.1 + 1e-15,
                "{rep}: {planned} vs {direct}"
            );
        }
        // An aggressive downscale keeps the full luma sweep but drops most
        // of the resize's read traffic (60 touched rows instead of 224).
        let small = Representation::new(30, ColorMode::Gray);
        assert!(model.set_transform_time(&[small]) < model.transform_time(small) * 0.6);
    }
}

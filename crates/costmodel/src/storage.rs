//! Storage profiles: load time from byte counts.

use crate::calibration;

/// A storage tier from which image data is loaded.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Fixed per-request latency in seconds (seek / syscall / request).
    pub seek_s: f64,
    /// Streaming throughput in bytes per second.
    pub bytes_per_sec: f64,
}

impl StorageProfile {
    /// Local SSD (the ARCHIVE and ONGOING scenarios).
    pub fn ssd() -> StorageProfile {
        StorageProfile {
            name: "local-ssd",
            seek_s: calibration::SSD_SEEK_S,
            bytes_per_sec: calibration::SSD_BYTES_PER_SEC,
        }
    }

    /// Spinning disk — slower variant for deployment-diversity studies.
    pub fn hdd() -> StorageProfile {
        StorageProfile {
            name: "hdd",
            seek_s: 8e-3,
            bytes_per_sec: 150e6,
        }
    }

    /// Remote object store over a datacenter network.
    pub fn network() -> StorageProfile {
        StorageProfile {
            name: "network-store",
            seek_s: 2e-3,
            bytes_per_sec: 100e6,
        }
    }

    /// Seconds to load `bytes` in one request.
    pub fn load_time(&self, bytes: usize) -> f64 {
        self.seek_s + bytes as f64 / self.bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_time_is_affine_in_bytes() {
        let ssd = StorageProfile::ssd();
        let t0 = ssd.load_time(0);
        let t1 = ssd.load_time(500_000);
        assert!((t0 - ssd.seek_s).abs() < 1e-12);
        assert!((t1 - t0 - 1e-3).abs() < 1e-9); // 500 KB at 500 MB/s = 1 ms
    }

    #[test]
    fn tier_ordering_for_small_objects() {
        // For small objects seek dominates: ssd < network < hdd.
        let b = 10_000;
        assert!(StorageProfile::ssd().load_time(b) < StorageProfile::network().load_time(b));
        assert!(StorageProfile::network().load_time(b) < StorageProfile::hdd().load_time(b));
    }
}

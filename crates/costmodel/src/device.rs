//! Compute-device profiles: inference time from FLOPs and input size.

use crate::calibration;

/// A compute device on which classifier inference runs.
///
/// `t_infer = overhead + flops / flops_per_sec + input_bytes / ingest_rate`.
/// The ingest term models host-to-device input transfer: it is what caps
/// full-resolution inputs well below the small-input throughput ceiling even
/// for shallow networks.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Effective arithmetic throughput, FLOPs per second.
    pub flops_per_sec: f64,
    /// Fixed per-image overhead in seconds (kernel launch, scheduling).
    pub per_image_overhead_s: f64,
    /// Input ingest bandwidth in bytes per second (f32 samples).
    pub ingest_bytes_per_sec: f64,
}

impl DeviceProfile {
    /// Tesla K80-class GPU calibrated to the paper's measured anchors.
    pub fn k80() -> DeviceProfile {
        DeviceProfile {
            name: "tesla-k80",
            flops_per_sec: calibration::K80_EFFECTIVE_FLOPS,
            per_image_overhead_s: calibration::K80_PER_IMAGE_OVERHEAD_S,
            ingest_bytes_per_sec: calibration::K80_INGEST_BYTES_PER_SEC,
        }
    }

    /// A slower edge-class accelerator (1/8 the K80's arithmetic rate,
    /// cheaper ingest since camera memory is local). Used by the
    /// deployment-diversity examples.
    pub fn edge_tpu() -> DeviceProfile {
        DeviceProfile {
            name: "edge-accelerator",
            flops_per_sec: calibration::K80_EFFECTIVE_FLOPS / 8.0,
            per_image_overhead_s: 20e-6,
            ingest_bytes_per_sec: 4e9,
        }
    }

    /// Inference seconds for a model of the given FLOPs and input values.
    pub fn infer_time(&self, flops: u64, input_values: usize) -> f64 {
        self.per_image_overhead_s
            + flops as f64 / self.flops_per_sec
            + (input_values * 4) as f64 / self.ingest_bytes_per_sec
    }

    /// Convenience: throughput in frames/second for one model in isolation.
    pub fn infer_fps(&self, flops: u64, input_values: usize) -> f64 {
        1.0 / self.infer_time(flops, input_values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_anchor() {
        let dev = DeviceProfile::k80();
        let fps = dev.infer_fps(calibration::RESNET50_FLOPS, 224 * 224 * 3);
        assert!((70.0..80.0).contains(&fps), "{fps}");
    }

    #[test]
    fn more_flops_is_slower() {
        let dev = DeviceProfile::k80();
        assert!(dev.infer_time(1_000_000, 900) < dev.infer_time(100_000_000, 900));
    }

    #[test]
    fn bigger_inputs_are_slower() {
        let dev = DeviceProfile::k80();
        assert!(dev.infer_time(1_000_000, 900) < dev.infer_time(1_000_000, 150_528));
    }

    #[test]
    fn overhead_bounds_throughput() {
        let dev = DeviceProfile::k80();
        let fps = dev.infer_fps(0, 0);
        assert!(fps <= 1.0 / dev.per_image_overhead_s + 1.0);
    }

    #[test]
    fn edge_device_slower_than_k80_on_compute() {
        let k80 = DeviceProfile::k80();
        let edge = DeviceProfile::edge_tpu();
        let flops = 100_000_000u64;
        assert!(edge.infer_time(flops, 2700) > k80.infer_time(flops, 2700));
    }
}

//! Calibration constants anchoring the analytic cost model to the paper's
//! measured numbers (see DESIGN.md §2.3).
//!
//! The paper reports, on an AWS p2.xlarge (NVIDIA Tesla K80):
//! * fine-tuned ResNet50: ~75 fps average (§VII-B);
//! * YOLOv2: 8.52 billion operations, ~67 fps (§I);
//! * fastest specialized cascades: 20,926 fps average under INFER-ONLY
//!   (§VII-B) — these are single 30x30 single-channel models;
//! * ARCHIVE throughput ceiling ≈ 142 fps at 10% permissible accuracy loss
//!   (Table III), implying full-image load+decode ≈ 7 ms.
//!
//! The constants below make the analytic profiles reproduce those anchors;
//! the tests in this module pin them.

/// Effective K80 FLOP throughput for our small-CNN workloads (FLOPs/s).
/// Solved jointly with the ingest term from ResNet50's ~75 fps anchor
/// (3.86 GFLOPs, 224x224x3 input).
pub const K80_EFFECTIVE_FLOPS: f64 = 3.8e11;

/// Fixed per-image inference overhead (kernel launch, scheduling), seconds.
/// Solved from the ~21k fps ceiling of the smallest models (§VII-B).
pub const K80_PER_IMAGE_OVERHEAD_S: f64 = 32e-6;

/// Host-to-device input ingest bandwidth (bytes/s of f32 samples),
/// per-image (unbatched staging, as the paper's Keras pipeline measures).
/// This is what pins full-resolution shallow CNNs to the low hundreds of
/// fps — the Baseline cluster visible in Fig. 5 — while 30x30 inputs fly.
pub const K80_INGEST_BYTES_PER_SEC: f64 = 2.0e8;

/// ResNet50 inference FLOPs for a 224x224x3 input (He et al. 2016).
pub const RESNET50_FLOPS: u64 = 3_860_000_000;

/// YOLOv2 inference FLOPs for a 416x416 input (paper §I).
pub const YOLOV2_FLOPS: u64 = 8_520_000_000;

/// YOLOv2 measured throughput anchor (fps) — the paper quotes ~67 fps; the
/// reference model uses this measured value rather than the FLOPs model
/// (YOLO's fused architecture beats the generic FLOPs fit).
pub const YOLOV2_MEASURED_FPS: f64 = 67.0;

/// SSD seek / request overhead, seconds.
pub const SSD_SEEK_S: f64 = 50e-6;

/// SSD streaming read rate, bytes per second.
pub const SSD_BYTES_PER_SEC: f64 = 500e6;

/// Average stored size of a full-resolution compressed frame in ARCHIVE
/// (bytes). Matches our block codec's output on synthetic 224x224 scenes at
/// quality 75 (~0.4 bytes/pixel over 150,528 samples).
pub const ARCHIVE_FRAME_BYTES: usize = 60_000;

/// Full-frame decode cost per sample, seconds (block codec / JPEG-class).
/// Together with the load terms this yields the ~7 ms ARCHIVE fixed cost.
pub const DECODE_S_PER_SAMPLE: f64 = 45e-9;

/// Dequantization cost per sample when loading a stored raw representation
/// in ONGOING, seconds.
pub const DEQUANT_S_PER_SAMPLE: f64 = 2e-9;

/// Per-transform-invocation overhead, seconds.
pub const TRANSFORM_OP_OVERHEAD_S: f64 = 15e-6;

/// Single-channel extraction cost per source pixel, seconds (plane copy).
pub const EXTRACT_S_PER_PIXEL: f64 = 2.5e-9;

/// Grayscale reduction cost per source pixel, seconds (3 reads + weighted
/// sum per output pixel).
pub const GRAY_S_PER_PIXEL: f64 = 8e-9;

/// Resize read cost per input sample, seconds.
pub const RESIZE_S_PER_IN_SAMPLE: f64 = 8e-9;

/// Resize write cost per output sample, seconds.
pub const RESIZE_S_PER_OUT_SAMPLE: f64 = 4e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_compute_time_matches_paper_anchor() {
        let t = RESNET50_FLOPS as f64 / K80_EFFECTIVE_FLOPS
            + K80_PER_IMAGE_OVERHEAD_S
            + (224 * 224 * 3 * 4) as f64 / K80_INGEST_BYTES_PER_SEC;
        let fps = 1.0 / t;
        assert!((70.0..80.0).contains(&fps), "ResNet50 anchor: {fps:.1} fps");
    }

    #[test]
    fn smallest_model_near_paper_ceiling() {
        // 30x30 gray, 1 conv layer of 16 + dense 16 ≈ 0.39 MFLOPs.
        let flops = 0.39e6;
        // (900 f32 samples ingest + overhead dominate)
        let t = flops / K80_EFFECTIVE_FLOPS
            + K80_PER_IMAGE_OVERHEAD_S
            + (900 * 4) as f64 / K80_INGEST_BYTES_PER_SEC;
        let fps = 1.0 / t;
        assert!(
            (18_000.0..26_000.0).contains(&fps),
            "smallest model anchor: {fps:.0} fps (paper: 20,926)"
        );
    }

    #[test]
    fn archive_fixed_cost_matches_table3_ceiling() {
        let t = SSD_SEEK_S
            + ARCHIVE_FRAME_BYTES as f64 / SSD_BYTES_PER_SEC
            + (224 * 224 * 3) as f64 * DECODE_S_PER_SAMPLE;
        let ceiling_fps = 1.0 / t;
        assert!(
            (130.0..160.0).contains(&ceiling_fps),
            "ARCHIVE ceiling {ceiling_fps:.0} fps (Table III caps at ~142)"
        );
    }

    #[test]
    fn camera_transform_bounds_small_gray_rep() {
        // 30x30 gray from 224x224 RGB: gray reduction + 1-plane resize.
        let px = 224.0 * 224.0;
        let t = TRANSFORM_OP_OVERHEAD_S
            + GRAY_S_PER_PIXEL * px
            + RESIZE_S_PER_IN_SAMPLE * px
            + RESIZE_S_PER_OUT_SAMPLE * 900.0;
        let fps = 1.0 / t;
        assert!(
            (1_000.0..1_600.0).contains(&fps),
            "CAMERA small-rep transform ceiling {fps:.0} fps"
        );
    }
}

//! Measured per-op-class kernel-tier calibration.
//!
//! The paper's cost model (§IV) refuses to *guess* what a physical
//! alternative costs: every (model, representation) pair is profiled on the
//! target substrate and the optimizer reads the measured table. This module
//! applies the same discipline one layer down, to the SIMD kernel tiers
//! themselves. The static heuristic — "the widest ISA the CPU advertises
//! wins" — is wrong in exactly the way the paper predicts static rules are:
//! on the Xeon this repo is tuned on, the AVX-512 *gather* kernel loses to
//! the AVX2 gather by ~25% on the resize horizontal pass even though every
//! contiguous AVX-512 sweep wins (ROADMAP, PR 3).
//!
//! [`calibrate`] microbenchmarks **every supported tier of every
//! [`OpClass`]** on the running CPU, reusing [`MeasuredProfiler`]'s
//! median-of-repetitions machinery, and returns the winning tier per class
//! as a [`KernelPolicy`] — which fixes the AVX-512-gather regression by
//! construction rather than by a hand-pinned exception.
//! [`calibrate_and_install`] additionally makes that policy the
//! process-global one, so every `Kernel::Auto` dispatch in `tahoma_nn` and
//! `tahoma_imagery` — and therefore everything the [`MeasuredProfiler`]
//! itself measures for the planner (codec + transform + inference timings)
//! — runs and is priced under the tuned policy. The policy serializes to a
//! small text table ([`KernelPolicy::serialize`]/[`KernelPolicy::save`]),
//! and `TAHOMA_KERNEL_POLICY=@/path/to/policy` (or a bare tier name) forces
//! it from the environment; CI's forced-tier matrix relies on the env
//! override beating an in-process calibration.
//!
//! The microbench workloads mirror the shapes the serving path actually
//! runs (first-layer and deep-layer convs, the post-pool dense matvec,
//! 224px transform sweeps), batched into ~millisecond samples and
//! interleaved across tiers so frequency-license and thermal drift cannot
//! misrank tiers that are ~15% apart. One full calibration is under a
//! second — cheap enough to run once at process start on a serving host,
//! with the result cached to disk for the fleet.

use crate::profiler::MeasuredProfiler;
use crate::scenario::Scenario;
use std::hint::black_box;
use tahoma_imagery::engine as iengine;
use tahoma_imagery::{ColorMode, Image};
use tahoma_mathx::simd_policy::{self, KernelPolicy, OpClass, SimdTier};
use tahoma_mathx::DetRng;
use tahoma_nn::gemm::{self, GemmScratch};
use tahoma_nn::kernels as nkernels;

/// One measured (class, tier) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierSample {
    /// The op class measured.
    pub class: OpClass,
    /// The tier measured.
    pub tier: SimdTier,
    /// Median seconds of one workload iteration for this class.
    pub median_s: f64,
}

/// The result of one calibration run: the winning policy plus every
/// underlying measurement (for logs, benches, and regression artifacts).
#[derive(Debug, Clone)]
pub struct KernelCalibration {
    /// Per-class winners (explicit tiers for every measured class).
    pub policy: KernelPolicy,
    /// All (class, tier) medians, in measurement order.
    pub samples: Vec<TierSample>,
}

impl KernelCalibration {
    /// The fastest measured (tier, median seconds) for `class`.
    pub fn best(&self, class: OpClass) -> Option<(SimdTier, f64)> {
        self.samples
            .iter()
            .filter(|s| s.class == class)
            .min_by(|a, b| a.median_s.total_cmp(&b.median_s))
            .map(|s| (s.tier, s.median_s))
    }

    /// Human-readable calibration table (one row per sample, winners
    /// marked) for logs and CI artifacts.
    pub fn table(&self) -> String {
        let mut out = String::from("op class        tier      median        winner\n");
        for s in &self.samples {
            let win = self.policy.tier(s.class) == s.tier;
            out.push_str(&format!(
                "{:<15} {:<9} {:>10.2} µs  {}\n",
                s.class.name(),
                s.tier.name(),
                s.median_s * 1e6,
                if win { "*" } else { "" }
            ));
        }
        out
    }
}

/// Calibrate with the default profiler (median of 7 repetitions per
/// (class, tier) point).
pub fn calibrate() -> KernelCalibration {
    let mut profiler = MeasuredProfiler::new(Scenario::InferOnly);
    profiler.repetitions = 7;
    calibrate_with(&profiler)
}

/// Microbenchmark every supported tier of every op class with `profiler`'s
/// median machinery and return the per-class winners. Pure measurement: the
/// global policy is not touched (see [`calibrate_and_install`]).
pub fn calibrate_with(profiler: &MeasuredProfiler) -> KernelCalibration {
    let mut samples = Vec::new();
    let mut policy = KernelPolicy::heuristic();
    for class in OpClass::ALL {
        let tiers = supported_tiers(class);
        // Interleave the tiers across rounds and keep each tier's best
        // round. Back-to-back measurement of one tier sits entirely inside
        // whatever frequency window the previous tier's vector width left
        // the core in (AVX-512 license recovery is on the order of the
        // whole measurement), which can misrank tiers ~15% apart;
        // round-robin puts every tier in every window, and min-of-medians
        // keeps the cleanest one.
        let mut medians = vec![f64::INFINITY; tiers.len()];
        for _round in 0..CALIBRATION_ROUNDS {
            for (slot, &tier) in tiers.iter().enumerate() {
                medians[slot] = medians[slot].min(measure_class(profiler, class, tier));
            }
        }
        let mut best: Option<(SimdTier, f64)> = None;
        for (&tier, &median_s) in tiers.iter().zip(&medians) {
            if best.is_none_or(|(_, b)| median_s < b) {
                best = Some((tier, median_s));
            }
            samples.push(TierSample {
                class,
                tier,
                median_s,
            });
        }
        if let Some((tier, _)) = best {
            policy.set(class, tier);
        }
    }
    KernelCalibration { policy, samples }
}

/// Interleaved measurement rounds per (class, tier); see
/// [`calibrate_with`].
const CALIBRATION_ROUNDS: usize = 3;

/// [`calibrate`] and install the winning policy process-globally, so every
/// `Kernel::Auto` dispatch (and everything [`MeasuredProfiler`] measures
/// on behalf of the planner) runs under it. The `TAHOMA_KERNEL_POLICY` env
/// override is re-applied on top by the installer, so CI forcing always
/// wins. Returns the calibration (with the *measured* policy; the
/// installed one may differ under an env override).
pub fn calibrate_and_install() -> KernelCalibration {
    let calibration = calibrate();
    simd_policy::install_policy(&calibration.policy);
    calibration
}

/// The tiers worth measuring for `class` on this CPU: the explicit tiers
/// the owning crate's dispatcher can actually run (never `Auto` — the
/// policy is what `Auto` resolves *through*).
fn supported_tiers(class: OpClass) -> Vec<SimdTier> {
    match class {
        OpClass::Gemm | OpClass::GemmWideK | OpClass::Matvec | OpClass::Relu | OpClass::Pool => {
            gemm::Kernel::available()
                .into_iter()
                .map(|k| k.tier())
                .collect()
        }
        OpClass::ResizeHGather | OpClass::ResizeV | OpClass::Luma | OpClass::Standardize => {
            iengine::Kernel::available()
                .into_iter()
                .map(|k| k.tier())
                .collect()
        }
    }
}

fn rand_vec(rng: &mut DetRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.uniform_in(-1.0, 1.0) as f32).collect()
}

/// Per-sample duration target for [`measure_class`]: long enough that a
/// timer tick or stray interrupt cannot flip a winner, short enough that a
/// full calibration stays in the low hundreds of milliseconds.
const SAMPLE_TARGET_S: f64 = 1e-3;

/// Median seconds of one representative workload iteration of `class` on
/// `tier`. Workload shapes mirror the serving path (see module docs); each
/// iteration runs tens of microseconds, so samples batch enough iterations
/// to reach [`SAMPLE_TARGET_S`] (single-call timings of µs-scale kernels
/// are noisy enough to misrank tiers that are ~15% apart). The first,
/// cold, iteration is a discarded warm-up that also sizes the batch.
fn measure_class(profiler: &MeasuredProfiler, class: OpClass, tier: SimdTier) -> f64 {
    let mut work = workload(class, tier);
    work(); // warm-up: page in buffers, settle feature-detection caches
    let t0 = std::time::Instant::now();
    work();
    let est = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((SAMPLE_TARGET_S / est) as usize).clamp(1, 100_000);
    profiler.time_median(|| {
        for _ in 0..iters {
            work();
        }
    }) / iters as f64
}

/// The calibration workload for one (class, tier) point: a closure running
/// exactly one timed iteration over pre-built state. Public so the
/// `kernel_policy` bench measures the very same workloads criterion-style
/// (the CI bench-trend artifact) that [`calibrate`] bases the policy on.
pub fn workload(class: OpClass, tier: SimdTier) -> Box<dyn FnMut()> {
    let mut rng = DetRng::new(0x1E55 ^ tier.name().len() as u64);
    match class {
        OpClass::Gemm => {
            // The deep-layer conv product: 16x900 against k = 144.
            let (m, n, k) = (16usize, 900usize, 144usize);
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let mut c = vec![0.0f32; m * n];
            let mut scratch = GemmScratch::with_kernel(gemm::Kernel::from_tier(tier));
            scratch.threads = Some(1);
            Box::new(move || {
                c.fill(0.0);
                gemm::gemm_nn(&mut scratch, m, n, k, &a, &b, &mut c);
                black_box(c[0]);
            })
        }
        OpClass::GemmWideK => {
            // A first-layer conv: k_total = 27 <= SMALL_K_MAX, the shape
            // where the AVX-512 wide tile and AVX2 trade places.
            let (c_in, h, w, kk, out_c) = (3usize, 30usize, 30usize, 3usize, 16usize);
            let input = rand_vec(&mut rng, c_in * h * w);
            let weights = rand_vec(&mut rng, out_c * c_in * kk * kk);
            let bias = rand_vec(&mut rng, out_c);
            let mut out = vec![0.0f32; out_c * h * w];
            let mut scratch = GemmScratch::with_kernel(gemm::Kernel::from_tier(tier));
            scratch.threads = Some(1);
            Box::new(move || {
                gemm::conv2d_forward(
                    &mut scratch,
                    &input,
                    c_in,
                    h,
                    w,
                    kk,
                    &weights,
                    &bias,
                    out_c,
                    &mut out,
                );
                black_box(out[0]);
            })
        }
        OpClass::Matvec => {
            // The post-pool dense layer of the 30px family, batch 1,
            // repeated to a measurable duration.
            let (n_out, n_in) = (16usize, 3600usize);
            let weights = rand_vec(&mut rng, n_out * n_in);
            let bias = rand_vec(&mut rng, n_out);
            let x = rand_vec(&mut rng, n_in);
            let mut out = vec![0.0f32; n_out];
            let kernel = gemm::Kernel::from_tier(tier);
            Box::new(move || {
                for _ in 0..16 {
                    nkernels::matvec(kernel, &weights, &bias, &x, &mut out);
                    black_box(out[0]);
                }
            })
        }
        OpClass::Relu => {
            // The dominant serving activation sweep (16ch x 30x30) — small
            // enough that per-sweep overheads are part of what is being
            // chosen on.
            let src = rand_vec(&mut rng, 16 * 30 * 30);
            let mut dst = vec![0.0f32; src.len()];
            let kernel = gemm::Kernel::from_tier(tier);
            Box::new(move || {
                for _ in 0..16 {
                    nkernels::relu(kernel, &src, &mut dst);
                    black_box(dst[0]);
                }
            })
        }
        OpClass::Pool => {
            // 16 channel planes of the serving shape (30x30 -> 15x15):
            // narrow rows, so the deinterleave overhead the vector tiers
            // pay is measured, not hidden by a wide-plane workload.
            let (h, w) = (30usize, 30usize);
            let planes = rand_vec(&mut rng, 16 * h * w);
            let mut out = vec![0.0f32; (h / 2) * (w / 2)];
            let kernel = gemm::Kernel::from_tier(tier);
            Box::new(move || {
                for ch in 0..16 {
                    nkernels::maxpool2_plane(
                        kernel,
                        &planes[ch * h * w..(ch + 1) * h * w],
                        h,
                        w,
                        &mut out,
                    );
                    black_box(out[0]);
                }
            })
        }
        OpClass::ResizeHGather => {
            // The horizontal half of the 224 -> 120 resize: every source
            // row gathered through the span tables once.
            let plan = iengine::ResizePlan::new(224, 224, 120, 120);
            let src = rand_vec(&mut rng, 224 * 224);
            let mut dst = vec![0.0f32; 120];
            let kernel = iengine::Kernel::from_tier(tier);
            Box::new(move || {
                for row in src.chunks_exact(224) {
                    iengine::hlerp_span(kernel, row, &plan, &mut dst);
                }
                black_box(dst[0]);
            })
        }
        OpClass::ResizeV => {
            // The vertical half: 240 output-row lerps of 120-wide rows.
            let top = rand_vec(&mut rng, 120);
            let bot = rand_vec(&mut rng, 120);
            let mut dst = vec![0.0f32; 120];
            let kernel = iengine::Kernel::from_tier(tier);
            Box::new(move || {
                for i in 0..240 {
                    let w1 = (i % 7) as f32 / 7.0;
                    iengine::vlerp_rows(kernel, &top, &bot, 1.0 - w1, w1, &mut dst);
                }
                black_box(dst[0]);
            })
        }
        OpClass::Luma => {
            // One full-frame 224px RGB -> gray reduction.
            let r = rand_vec(&mut rng, 224 * 224);
            let g = rand_vec(&mut rng, 224 * 224);
            let b = rand_vec(&mut rng, 224 * 224);
            let mut dst = vec![0.0f32; 224 * 224];
            let kernel = iengine::Kernel::from_tier(tier);
            Box::new(move || {
                iengine::luma_sweep(kernel, &r, &g, &b, &mut dst);
                black_box(dst[0]);
            })
        }
        OpClass::Standardize => {
            // Full-frame standardize (mean/variance reductions +
            // normalize), with the output buffer recycled so the median
            // measures the sweeps rather than the allocator.
            let src = Image::from_fn(224, 224, ColorMode::Rgb, |c, y, x| {
                ((c * 13 + y * 7 + x * 3) % 17) as f32 / 17.0
            })
            .expect("valid frame");
            let mut engine =
                iengine::TranscodeEngine::with_kernel(iengine::Kernel::from_tier(tier));
            Box::new(move || {
                let img = engine.standardize(&src);
                black_box(img.data()[0]);
                engine.recycle([img]);
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_profiler() -> MeasuredProfiler {
        let mut p = MeasuredProfiler::new(Scenario::InferOnly);
        p.repetitions = 3;
        p
    }

    #[test]
    fn calibration_covers_every_class_with_explicit_winners() {
        let cal = calibrate_with(&quick_profiler());
        for class in OpClass::ALL {
            let (tier, median_s) = cal.best(class).expect("every class measured");
            assert_ne!(tier, SimdTier::Auto, "{}", class.name());
            assert!(median_s > 0.0 && median_s.is_finite());
            // The winner is what the policy records.
            assert_eq!(cal.policy.tier(class), tier, "{}", class.name());
            // Portable is always measured, so every class has >= 1 sample.
            assert!(cal
                .samples
                .iter()
                .any(|s| s.class == class && s.tier == SimdTier::Portable));
        }
        let table = cal.table();
        assert!(table.contains("resize-h-gather"));
        assert!(table.contains('*'));
    }

    #[test]
    fn calibrated_policy_round_trips_through_serialization() {
        let cal = calibrate_with(&quick_profiler());
        let text = cal.policy.serialize();
        assert_eq!(KernelPolicy::parse(&text).unwrap(), cal.policy);
    }

    #[test]
    fn install_makes_auto_dispatch_follow_the_measured_winner() {
        // Snapshot, install a calibrated policy, verify Auto resolves to
        // the winner, restore. Concurrent tests dispatching through Auto
        // may briefly run a different tier — which is bitwise identical,
        // so only speed is perturbed.
        let before = simd_policy::global_policy();
        let cal = calibrate_with(&quick_profiler());
        let effective = simd_policy::install_policy(&cal.policy);
        let want = iengine::Kernel::from_tier(effective.tier(OpClass::ResizeHGather));
        let resolved = iengine::Kernel::Auto.resolve_class(OpClass::ResizeHGather);
        // `resolve_class` demotes a tier this CPU cannot run (possible
        // only when an env override forced one) to detection; every
        // calibrated tier was measured here, so it resolves exactly.
        if iengine::Kernel::available().contains(&want) {
            assert_eq!(resolved, want);
        }
        simd_policy::install_policy(&before);
    }
}

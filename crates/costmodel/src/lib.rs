//! Deployment-scenario cost model (paper §VI).
//!
//! The paper's core observation is that end-to-end classification time is
//!
//! ```text
//! t_classify = t_load + t_transform + t_infer
//! ```
//!
//! and that which term dominates depends on the *deployment scenario*. This
//! crate prices all three terms:
//!
//! * [`device::DeviceProfile`] — inference time from FLOPs, input-ingest
//!   bandwidth, and per-image overhead, calibrated to the paper's measured
//!   anchors (ResNet50 ≈ 75 fps, smallest specialized CNN ≈ 21k fps on a
//!   Tesla K80);
//! * [`storage::StorageProfile`] — load time from byte counts (SSD seek +
//!   streaming rate) plus decode work;
//! * [`transform::TransformCostModel`] — the cost of materializing a
//!   [`Representation`] from the full-resolution frame, mirroring the actual
//!   pipeline in `tahoma_imagery::repr` (color reduction, then resize);
//! * [`scenario::Scenario`] — the paper's four scenarios (INFER-ONLY,
//!   ARCHIVE, ONGOING, CAMERA) expressed as a per-image fixed cost plus a
//!   per-representation marginal cost charged once per image per
//!   representation (§VII-A);
//! * [`profiler`] — the cost profiler from Fig. 2: analytic (calibrated to
//!   the paper's GPU testbed) and measured (times this machine's real codec,
//!   transform and `tahoma-nn` inference);
//! * [`kernels`] — the same measured-profiling discipline applied one layer
//!   down: microbenchmark every SIMD kernel tier per op class on the
//!   running CPU and install the winners as the process-global
//!   `Kernel::Auto` policy, so both the serving hot paths and the costs the
//!   measured profiler reports to the planner reflect the tuned kernels;
//! * [`io`] — the measured-profiling discipline applied to the persistent
//!   representation store: calibrate the real fetch+decode path
//!   ([`io::IoProfile::measure`]) and spend a §V storage budget on the
//!   lattice nodes with the best latency gain per stored byte
//!   ([`io::plan_materialization`]);
//! * [`reliability`] — error classification (transient vs permanent) and
//!   expected-cost pricing of the store's bounded-retry and degradation
//!   policies (RELIABILITY.md), which the serve layer's deadline budgeting
//!   consumes.
//!
//! [`Representation`]: tahoma_imagery::Representation

pub mod calibration;
pub mod device;
pub mod io;
pub mod kernels;
pub mod profiler;
pub mod reliability;
pub mod scenario;
pub mod storage;
pub mod transform;

pub use device::DeviceProfile;
pub use io::{plan_materialization, IoProfile, MaterializationPlan};
pub use kernels::{calibrate_and_install, KernelCalibration, TierSample};
pub use profiler::{AnalyticProfiler, CostBreakdown, CostProfiler, MeasuredProfiler};
pub use reliability::{ErrorClass, RetryPolicy};
pub use scenario::{Scenario, ScenarioCosts};
pub use storage::StorageProfile;
pub use transform::TransformCostModel;

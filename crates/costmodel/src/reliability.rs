//! Error classification and retry/degradation pricing for the serving
//! stack's reliability layer (RELIABILITY.md).
//!
//! The store's fetch path (`tahoma_imagery::store`) retries *transient*
//! I/O errors with bounded jittered backoff and quarantines records whose
//! errors are permanent or whose retries are exhausted, degrading those
//! fetches to a transcode-from-source. Both halves of that policy are
//! priceable with the same discipline the rest of this crate applies to
//! kernels and I/O: classification says *which* branch an error takes,
//! and [`RetryPolicy`] prices what the branch costs in expectation —
//! extra attempts and backoff sleeps for transients, the source fetch +
//! transcode surcharge for degraded records. The serve layer's deadline
//! budgeting uses these expectations to decide whether a retry still fits
//! inside a query's remaining budget.
//!
//! The numeric constants mirror the store's actual retry loop (4 total
//! attempts, 32 µs exponential base, ~32 µs mean jitter) so expectations
//! track the executing code rather than an idealized policy.

use tahoma_imagery::ImageryError;

/// Whether an error is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The same operation may succeed if repeated: interrupted syscall,
    /// timeout, would-block. Retried with bounded backoff.
    Transient,
    /// Retrying cannot help: corruption, decode failure, missing file,
    /// permission. Fed straight to the degradation ladder (quarantine,
    /// fallback, or explicit error).
    Permanent,
}

/// Classify an [`ImageryError`] for the retry layer.
pub fn classify(e: &ImageryError) -> ErrorClass {
    if e.is_transient() {
        ErrorClass::Transient
    } else {
        ErrorClass::Permanent
    }
}

/// Classify a raw [`std::io::ErrorKind`] — the same partition
/// `ImageryError::from::<std::io::Error>` applies, exposed for callers
/// still holding the io error.
pub fn classify_io(kind: std::io::ErrorKind) -> ErrorClass {
    use std::io::ErrorKind;
    match kind {
        ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock => {
            ErrorClass::Transient
        }
        _ => ErrorClass::Permanent,
    }
}

/// The store's bounded-retry policy, priced: `max_attempts` total tries
/// per operation with exponential backoff between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries).
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is `base_backoff_s << (k-1)`
    /// plus ~`jitter_mean_s` of decorrelation jitter.
    pub base_backoff_s: f64,
    /// Mean of the per-retry jitter term.
    pub jitter_mean_s: f64,
}

impl RetryPolicy {
    /// The policy the representation store actually runs (see
    /// `tahoma_imagery::store`): 4 attempts, 32 µs base doubling per
    /// retry, jitter uniform in [0, 64) µs.
    pub fn store_fetch() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_s: 32e-6,
            jitter_mean_s: 32e-6,
        }
    }

    /// Probability the operation eventually succeeds, given independent
    /// per-attempt transient-failure probability `p` (clamped to [0, 1]).
    pub fn success_probability(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        1.0 - p.powi(self.max_attempts as i32)
    }

    /// Probability the operation exhausts its budget and degrades.
    pub fn degraded_rate(&self, p: f64) -> f64 {
        p.clamp(0.0, 1.0).powi(self.max_attempts as i32)
    }

    /// Expected number of attempts executed (truncated geometric).
    pub fn expected_attempts(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        // sum_{k=1..m} p^(k-1) = (1 - p^m) / (1 - p); m at p == 1.
        if (1.0 - p).abs() < 1e-12 {
            self.max_attempts as f64
        } else {
            (1.0 - p.powi(self.max_attempts as i32)) / (1.0 - p)
        }
    }

    /// Expected backoff sleep per operation: retry `k` happens with
    /// probability `p^k` and sleeps `base << (k-1)` plus mean jitter.
    pub fn expected_backoff_s(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let mut total = 0.0;
        for k in 1..self.max_attempts {
            let sleep =
                self.base_backoff_s * f64::from(1u32 << (k - 1).min(8)) + self.jitter_mean_s;
            total += p.powi(k as i32) * sleep;
        }
        total
    }

    /// Expected wall-clock of one operation under the policy: `op_s` per
    /// attempt plus backoff sleeps. Excludes the degradation surcharge —
    /// add [`degraded_fetch_surcharge_s`] weighted by
    /// [`RetryPolicy::degraded_rate`] for the full ladder expectation.
    pub fn expected_cost_s(&self, op_s: f64, p: f64) -> f64 {
        self.expected_attempts(p) * op_s + self.expected_backoff_s(p)
    }
}

/// Extra latency a *degraded* fetch pays over a direct one: the stored
/// representation is quarantined, so the serving fallback fetches the
/// source representation and transcodes (`core::exec`'s materialize path).
/// Negative results are clamped to zero — degrading is never priced as a
/// speedup.
pub fn degraded_fetch_surcharge_s(
    direct_fetch_s: f64,
    source_fetch_s: f64,
    transcode_s: f64,
) -> f64 {
    (source_fetch_s + transcode_s - direct_fetch_s).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_partitions_errors() {
        let transient: ImageryError =
            std::io::Error::new(std::io::ErrorKind::Interrupted, "eintr").into();
        let permanent: ImageryError =
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert_eq!(classify(&transient), ErrorClass::Transient);
        assert_eq!(classify(&permanent), ErrorClass::Permanent);
        assert_eq!(
            classify(&ImageryError::Decode("bad".into())),
            ErrorClass::Permanent
        );
        assert_eq!(
            classify_io(std::io::ErrorKind::TimedOut),
            ErrorClass::Transient
        );
        assert_eq!(
            classify_io(std::io::ErrorKind::UnexpectedEof),
            ErrorClass::Permanent
        );
    }

    #[test]
    fn retry_expectations_are_sane() {
        let rp = RetryPolicy::store_fetch();
        // Fault-free: exactly one attempt, no backoff, full success.
        assert_eq!(rp.expected_attempts(0.0), 1.0);
        assert_eq!(rp.expected_backoff_s(0.0), 0.0);
        assert_eq!(rp.success_probability(0.0), 1.0);
        assert_eq!(rp.degraded_rate(0.0), 0.0);
        // Always-failing: every attempt runs, the operation degrades.
        assert_eq!(rp.expected_attempts(1.0), rp.max_attempts as f64);
        assert_eq!(rp.degraded_rate(1.0), 1.0);
        // Monotone in p.
        assert!(rp.expected_attempts(0.5) > rp.expected_attempts(0.1));
        assert!(rp.expected_cost_s(1e-3, 0.5) > rp.expected_cost_s(1e-3, 0.1));
        // Success + degraded partition the outcome space.
        let p = 0.3;
        assert!((rp.success_probability(p) + rp.degraded_rate(p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degraded_surcharge_clamps_at_zero() {
        assert_eq!(degraded_fetch_surcharge_s(1e-3, 2e-3, 3e-3), 4e-3);
        assert_eq!(degraded_fetch_surcharge_s(9.0, 1e-3, 1e-3), 0.0);
    }
}

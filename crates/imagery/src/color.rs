//! Color modes: the color-depth axis of TAHOMA's physical representations.
//!
//! The paper's experiments use five color variations per image size: full
//! 3-channel color, each individual R/G/B channel, and single-channel
//! grayscale (§VII-A). Reducing three channels to one cuts a CNN's input
//! tensor — and the leading convolution's work — by two thirds, which is one
//! of the two data-handling levers the optimizer exploits.

use std::fmt;

/// ITU-R BT.601 luma weights used for grayscale reduction.
pub const LUMA_WEIGHTS: [f32; 3] = [0.299, 0.587, 0.114];

/// The color depth / channel selection of a physical representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ColorMode {
    /// Full 3-channel color.
    Rgb,
    /// Red channel only.
    Red,
    /// Green channel only.
    Green,
    /// Blue channel only.
    Blue,
    /// Luma grayscale (BT.601 weighted sum).
    Gray,
}

impl ColorMode {
    /// All five modes in the paper's order.
    pub const ALL: [ColorMode; 5] = [
        ColorMode::Rgb,
        ColorMode::Red,
        ColorMode::Green,
        ColorMode::Blue,
        ColorMode::Gray,
    ];

    /// Number of channels in this mode.
    #[inline]
    pub fn channels(self) -> usize {
        match self {
            ColorMode::Rgb => 3,
            _ => 1,
        }
    }

    /// Index of the extracted source channel, if this mode is a plain
    /// channel extraction from RGB.
    #[inline]
    pub fn source_channel(self) -> Option<usize> {
        match self {
            ColorMode::Red => Some(0),
            ColorMode::Green => Some(1),
            ColorMode::Blue => Some(2),
            _ => None,
        }
    }

    /// Short stable identifier (used in model names and serialization).
    pub fn tag(self) -> &'static str {
        match self {
            ColorMode::Rgb => "rgb",
            ColorMode::Red => "r",
            ColorMode::Green => "g",
            ColorMode::Blue => "b",
            ColorMode::Gray => "gray",
        }
    }

    /// Parse a tag produced by [`ColorMode::tag`].
    pub fn from_tag(tag: &str) -> Option<ColorMode> {
        match tag {
            "rgb" => Some(ColorMode::Rgb),
            "r" => Some(ColorMode::Red),
            "g" => Some(ColorMode::Green),
            "b" => Some(ColorMode::Blue),
            "gray" => Some(ColorMode::Gray),
            _ => None,
        }
    }

    /// Relative information retention of this mode versus full color, used
    /// by the surrogate accuracy model. Grayscale keeps overall luminance
    /// structure (higher) while a single channel discards two primaries.
    pub fn information_factor(self) -> f64 {
        match self {
            ColorMode::Rgb => 1.0,
            ColorMode::Gray => 0.88,
            ColorMode::Green => 0.80, // green carries most luma energy
            ColorMode::Red => 0.76,
            ColorMode::Blue => 0.72,
        }
    }
}

impl fmt::Display for ColorMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_counts() {
        assert_eq!(ColorMode::Rgb.channels(), 3);
        for m in [
            ColorMode::Red,
            ColorMode::Green,
            ColorMode::Blue,
            ColorMode::Gray,
        ] {
            assert_eq!(m.channels(), 1);
        }
    }

    #[test]
    fn tag_roundtrip() {
        for m in ColorMode::ALL {
            assert_eq!(ColorMode::from_tag(m.tag()), Some(m));
        }
        assert_eq!(ColorMode::from_tag("nope"), None);
    }

    #[test]
    fn source_channels() {
        assert_eq!(ColorMode::Red.source_channel(), Some(0));
        assert_eq!(ColorMode::Green.source_channel(), Some(1));
        assert_eq!(ColorMode::Blue.source_channel(), Some(2));
        assert_eq!(ColorMode::Rgb.source_channel(), None);
        assert_eq!(ColorMode::Gray.source_channel(), None);
    }

    #[test]
    fn luma_weights_sum_to_one() {
        let s: f32 = LUMA_WEIGHTS.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn information_ordering() {
        assert!(ColorMode::Rgb.information_factor() > ColorMode::Gray.information_factor());
        assert!(ColorMode::Gray.information_factor() > ColorMode::Green.information_factor());
        assert!(ColorMode::Green.information_factor() > ColorMode::Blue.information_factor());
    }
}

//! Image substrate for the TAHOMA reproduction.
//!
//! TAHOMA's central idea is that the *physical representation* of a
//! classifier's input — its resolution and color depth — is part of the query
//! plan. This crate supplies everything the optimizer manipulates at the data
//! layer:
//!
//! * [`image::Image`] — planar `f32` rasters with [`color::ColorMode`]s
//!   (full RGB, single R/G/B channels, grayscale);
//! * [`transform`] — the input transformation functions **F** from §V-B of
//!   the paper: resolution scaling, channel extraction, grayscale reduction,
//!   plus flip augmentation and normalization;
//! * [`engine`] — the runtime-dispatched SIMD transcode engine behind those
//!   transforms (separable resize with cached span tables, AVX-512/AVX2
//!   kernels, reusable scratch) and the representation-lattice
//!   [`engine::TranscodePlan`] that shares work when one frame is
//!   materialized into many representations;
//! * [`repr::Representation`] — a (size, color-mode) pair, the unit the cost
//!   model and cascade evaluator reason about;
//! * [`codec`] — on-disk encodings (raw planar, PPM, lossy block codec) so
//!   that load/decode costs in the ARCHIVE and ONGOING deployment scenarios
//!   are grounded in real byte counts and real decode work;
//! * [`store`] — the representation store behind the ONGOING scenario's
//!   ingest-time materialization, with a RAM tier for fixtures and a
//!   persistent tier whose per-item materialization set is chosen by the
//!   §V byte-budget policy in `tahoma_costmodel::io`;
//! * [`segment`] — the persistent tier's substrate: item-id-sharded
//!   append-only segment files with CRC-framed records, mmap (or pread)
//!   read access, and crash recovery to the last complete record;
//! * [`synth`] — the synthetic planted-object corpus that substitutes for
//!   ImageNet categories (see DESIGN.md §2), and
//! * [`dataset`] — labeled datasets with the paper's train/config/eval split
//!   protocol and left-right flip augmentation.

// Unsafe hygiene (audited by `tahoma-audit`, lint A2; policy in
// SAFETY.md): every operation inside an `unsafe fn` must carry its own
// `unsafe` block. `engine` re-declares this locally; the crate-root deny
// covers any future unsafe elsewhere.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod codec;
pub mod color;
pub mod dataset;
pub mod engine;
pub mod error;
pub mod image;
pub mod repr;
pub mod segment;
pub mod store;
pub mod synth;
pub mod transform;

pub use codec::{BlockCodec, Codec, PpmCodec, RawCodec};
pub use color::ColorMode;
pub use dataset::{Dataset, DatasetBundle, DatasetSpec, LabeledImage};
pub use engine::{TranscodeCosts, TranscodeEngine, TranscodePlan};
pub use error::ImageryError;
pub use image::Image;
pub use repr::Representation;
pub use segment::{AccessMode, RecoveryReport, SegmentStore};
pub use store::{Fetched, ReliabilityStats, RepresentationStore};
pub use synth::{ObjectKind, SceneParams, SceneRenderer};

//! Sharded, persistent, append-only segment files — the storage layer
//! behind [`crate::store::RepresentationStore`]'s persistent tier.
//!
//! The paper's ONGOING scenario (§III) assumes representations are
//! *persisted at ingest* ("transformed into appropriate representations
//! that are stored on SSD for later queries") and fetched per query; §V
//! prices the resulting storage amplification. This module is that layout
//! made real:
//!
//! * **Item-id sharding.** `id % shards` picks the segment file, so ingest
//!   appends and query fetches on different shards never contend — each
//!   shard has its own writer and index locks.
//! * **Append-only segment files.** Each record is a fixed-width header
//!   (`TREC` magic, item id, representation, payload length, payload
//!   CRC32) followed by the raw-codec payload, framed via the vendored
//!   `bytes` shim. The in-memory index maps `(id, rep)` to a payload
//!   offset and is rebuilt by a header scan on open.
//! * **mmap read side with a pread fallback.** Readers clone an
//!   `Arc`-snapshotted memory map and fetch without any lock held; when
//!   mapping is unavailable (non-unix, `TAHOMA_STORE_NO_MMAP=1`, or an
//!   `mmap` failure) fetches fall back to positioned reads into a
//!   caller-supplied scratch buffer.
//! * **Crash consistency.** Appends go through positioned writes into
//!   preallocated capacity (the zero-filled tail doubles as a scan
//!   terminator); on open the scan verifies each record's CRC and
//!   truncates to the last complete record — a torn tail loses at most
//!   the records past the tear, never yields corrupt payload bytes.
//!
//! Lock order (audited, lint A6; see `SAFETY.md`): per shard, the writer
//! lock (`seg_writer`, rank 70) is acquired before the index lock
//! (`seg_index`, rank 71). Fetches take only `seg_index`, and only long
//! enough to snapshot an entry + `Arc<Mmap>`; payload bytes are read with
//! no lock held. Both ranks sit above every `tahoma-serve` rank, so a
//! serving thread holding service locks may always enter the store.

use crate::codec::{mode_code, mode_from_code};
use crate::repr::Representation;
use bytes::{Buf, BufMut};
use std::collections::{BTreeMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"TSG1";
/// Segment format version (bumped on layout changes).
pub const SEGMENT_VERSION: u32 = 1;
/// Segment file header: magic + version + shard index + reserved word.
pub const SEGMENT_HEADER_LEN: u64 = 16;
/// Magic bytes opening every record.
pub const RECORD_MAGIC: [u8; 4] = *b"TREC";
/// Record header: magic(4) + id(8) + size(4) + mode(1) + len(4) + crc(4).
pub const RECORD_HEADER_LEN: usize = 25;

/// Smallest preallocation step for a shard file. Appends extend capacity
/// by doubling (at least this much) so `set_len`/remap cost amortizes.
const MIN_CAPACITY_STEP: u64 = 1 << 20;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, the zlib/PNG variant).

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

const CRC_INIT: u32 = 0xFFFF_FFFF;

#[inline]
fn crc_update(mut state: u32, chunk: &[u8]) -> u32 {
    for &b in chunk {
        state = CRC_TABLE[((state ^ u32::from(b)) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

#[inline]
fn crc_finish(state: u32) -> u32 {
    !state
}

/// CRC32 (IEEE) of a byte slice, e.g. `crc32(b"123456789") == 0xCBF4_3926`.
pub fn crc32(data: &[u8]) -> u32 {
    crc_finish(crc_update(CRC_INIT, data))
}

// ---------------------------------------------------------------------------
// Memory-mapped read view.

#[cfg(unix)]
mod mm {
    //! Minimal read-only `mmap` wrapper. The container vendors no `libc`
    //! crate, but every Rust binary on unix already links the platform
    //! libc, so the two symbols are declared directly.

    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_SHARED: i32 = 1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A read-only `MAP_SHARED` mapping of the first `len` bytes of a
    /// file. `MAP_SHARED` means positioned writes through another handle
    /// to the same file are page-cache coherent with reads through the
    /// map, which is what lets the shard writer append while readers hold
    /// an older map of the same (preallocated) capacity.
    #[derive(Debug)]
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    impl Mmap {
        /// Map `len` bytes of `file` read-only, or `None` when the kernel
        /// refuses (callers fall back to pread).
        pub fn new(file: &File, len: usize) -> Option<Mmap> {
            if len == 0 {
                return None;
            }
            // SAFETY: ffi call with a null placement hint, a length the
            // caller bounds by the file's allocated size, read-only
            // protection, and a file descriptor that outlives the call
            // (`file` is borrowed across it). The returned region is only
            // ever exposed as `&[u8]` of exactly `len` bytes.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                None
            } else {
                Some(Mmap { ptr, len })
            }
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` came from a successful `mmap` of exactly
            // `len` readable bytes and stays mapped until `Drop` runs
            // (`munmap` is the only unmap site, and `&self` borrows
            // prevent it running concurrently). The mapping is private to
            // this struct and read-only, so no aliasing `&mut` exists.
            // Reads within `len` are in-bounds even past the file's
            // logical end: capacity is preallocated with `set_len`, so
            // every mapped page is backed.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        /// Mapped length in bytes.
        pub fn len(&self) -> usize {
            self.len
        }

        /// True when nothing is mapped (never constructed; see `new`).
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    // SAFETY: the mapping is read-only and the struct owns it exclusively
    // until Drop; sharing `&Mmap` across threads only performs concurrent
    // reads of immutable-from-this-side pages, and moving the struct moves
    // plain pointer + length values.
    unsafe impl Send for Mmap {}
    // SAFETY: as above — `&Mmap` exposes only `&[u8]` reads.
    unsafe impl Sync for Mmap {}

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` are the exact values returned by the
            // successful `mmap` in `new`; this is the only unmap site and
            // runs at most once (Drop). Any `&[u8]` handed out borrowed
            // `self`, so none outlive this point.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(not(unix))]
mod mm {
    //! Non-unix stub: never constructs, so every fetch takes the
    //! positioned-read path.

    use std::fs::File;

    #[derive(Debug)]
    pub struct Mmap;

    impl Mmap {
        pub fn new(_file: &File, _len: usize) -> Option<Mmap> {
            None
        }

        pub fn as_slice(&self) -> &[u8] {
            &[]
        }

        pub fn len(&self) -> usize {
            0
        }

        pub fn is_empty(&self) -> bool {
            true
        }
    }
}

pub use mm::Mmap;

// ---------------------------------------------------------------------------
// Positioned I/O helpers (pread/pwrite equivalents).

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(windows)]
fn read_exact_at(file: &File, mut buf: &mut [u8], mut offset: u64) -> io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        let n = file.seek_read(buf, offset)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short positioned read",
            ));
        }
        buf = &mut buf[n..];
        offset += n as u64;
    }
    Ok(())
}

#[cfg(unix)]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(windows)]
fn write_all_at(file: &File, mut buf: &[u8], mut offset: u64) -> io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        let n = file.seek_write(buf, offset)?;
        buf = &buf[n..];
        offset += n as u64;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Framing.

/// How the read side accesses segment bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Memory-map each shard file (unix); falls back to `Pread` per shard
    /// when the mapping cannot be established.
    Mmap,
    /// Positioned reads into a caller-supplied scratch buffer.
    Pread,
}

impl AccessMode {
    /// Platform default: mmap on unix unless `TAHOMA_STORE_NO_MMAP` is
    /// set, positioned reads elsewhere.
    pub fn auto() -> AccessMode {
        if cfg!(unix) && std::env::var_os("TAHOMA_STORE_NO_MMAP").is_none() {
            AccessMode::Mmap
        } else {
            AccessMode::Pread
        }
    }
}

/// A parsed record header.
#[derive(Debug, Clone, Copy)]
struct RecHeader {
    id: u64,
    rep: Representation,
    len: u32,
    crc: u32,
}

/// Frame one record header + payload into `buf` (cleared first).
fn encode_record(buf: &mut Vec<u8>, id: u64, rep: Representation, payload: &[u8]) {
    buf.clear();
    buf.reserve(RECORD_HEADER_LEN + payload.len());
    buf.put_slice(&RECORD_MAGIC);
    buf.put_u64_le(id);
    buf.put_u32_le(rep.size as u32);
    buf.put_u8(mode_code(rep.mode));
    buf.put_u32_le(payload.len() as u32);
    buf.put_u32_le(crc32(payload));
    buf.put_slice(payload);
}

/// Parse a record header, `None` on bad magic / unknown mode / absurd
/// size — all of which terminate the recovery scan.
fn parse_record_header(bytes: &[u8]) -> Option<RecHeader> {
    if bytes.len() < RECORD_HEADER_LEN || bytes[..4] != RECORD_MAGIC {
        return None;
    }
    let mut b = &bytes[4..];
    let id = b.get_u64_le();
    let size = b.get_u32_le();
    let mode = mode_from_code(b.get_u8()).ok()?;
    let len = b.get_u32_le();
    let crc = b.get_u32_le();
    if size == 0 || size > 1 << 16 {
        return None;
    }
    Some(RecHeader {
        id,
        rep: Representation::new(size as usize, mode),
        len,
        crc,
    })
}

// ---------------------------------------------------------------------------
// Shard state.

#[derive(Debug)]
struct ShardWriter {
    file: File,
    /// End of the valid record region (everything below is durable frame
    /// data; everything above is preallocated zeros).
    committed: u64,
    /// Allocated file length (`set_len`), what the mmap covers.
    capacity: u64,
    /// Capacity changed since the last published map.
    map_stale: bool,
    /// Reusable frame buffer so steady-state appends don't allocate.
    scratch: Vec<u8>,
}

#[derive(Debug, Default)]
struct ShardIndex {
    /// `(id, rep)` → (payload offset, payload length).
    entries: BTreeMap<(u64, Representation), (u64, u32)>,
    /// Current read map (mmap mode only). Readers clone the `Arc` under
    /// the lock and read bytes after releasing it; superseded maps are
    /// unmapped when their last reader drops.
    map: Option<Arc<Mmap>>,
    /// Committed bytes including record headers (stats).
    bytes: u64,
}

#[derive(Debug)]
struct Shard {
    /// Dedicated read handle: positioned reads need no lock and never
    /// touch the writer's cursorless append handle.
    reader: File,
    // Append state: file handle, committed/capacity watermarks, frame
    // scratch. Held across the publish into `seg_index` (rank ascends).
    // LOCK-ORDER: 70
    seg_writer: Mutex<ShardWriter>,
    // Entry map + current mmap snapshot. Fetches hold this only long
    // enough to copy an entry and clone the map Arc.
    // LOCK-ORDER: 71
    seg_index: Mutex<ShardIndex>,
}

/// Poison-tolerant lock (same idiom as `tahoma-serve`): an unrelated
/// panic must not wedge the store; critical sections publish fully-formed
/// values, so a poisoned guard holds consistent state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// What the open-time recovery scan found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Complete, CRC-valid records indexed.
    pub records: u64,
    /// Bytes discarded past the last complete record (torn tails and
    /// preallocated-but-unwritten capacity).
    pub truncated_bytes: u64,
    /// Shards whose file had to be (re)initialized from scratch.
    pub reinitialized_shards: usize,
}

struct ScanResult {
    committed: u64,
    records: u64,
    entries: BTreeMap<(u64, Representation), (u64, u32)>,
    bytes: u64,
}

/// Item-id-sharded persistent segment store. All operations take `&self`;
/// per-shard mutexes serialize appends while fetches run lock-free after
/// an index snapshot.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    mode: AccessMode,
    shards: Vec<Shard>,
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}.seg"))
}

fn encode_file_header(shard: u32) -> [u8; SEGMENT_HEADER_LEN as usize] {
    let mut h = [0u8; SEGMENT_HEADER_LEN as usize];
    h[..4].copy_from_slice(&SEGMENT_MAGIC);
    h[4..8].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    h[8..12].copy_from_slice(&shard.to_le_bytes());
    h
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl SegmentStore {
    /// Create a fresh store under `dir` (existing shard files are
    /// truncated). `shards` must be at least 1.
    pub fn create(dir: &Path, shards: usize, mode: AccessMode) -> io::Result<SegmentStore> {
        assert!(shards >= 1, "segment store needs at least one shard");
        fs::create_dir_all(dir)?;
        let mut out = Vec::with_capacity(shards);
        for s in 0..shards {
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(shard_path(dir, s))?;
            write_all_at(&file, &encode_file_header(s as u32), 0)?;
            let reader = File::open(shard_path(dir, s))?;
            out.push(Shard {
                reader,
                seg_writer: Mutex::new(ShardWriter {
                    file,
                    committed: SEGMENT_HEADER_LEN,
                    capacity: SEGMENT_HEADER_LEN,
                    map_stale: false,
                    scratch: Vec::new(),
                }),
                seg_index: Mutex::new(ShardIndex::default()),
            });
        }
        Ok(SegmentStore {
            dir: dir.to_path_buf(),
            mode,
            shards: out,
        })
    }

    /// Open an existing store, rebuilding each shard's index by scanning
    /// record headers and verifying payload CRCs. The scan stops at the
    /// first incomplete or corrupt record (a torn tail from a crash, or
    /// the zero-filled preallocation region) and the file is truncated to
    /// the last complete record — later appends resume cleanly.
    pub fn open(
        dir: &Path,
        shards: usize,
        mode: AccessMode,
    ) -> io::Result<(SegmentStore, RecoveryReport)> {
        assert!(shards >= 1, "segment store needs at least one shard");
        let mut report = RecoveryReport::default();
        let mut out = Vec::with_capacity(shards);
        for s in 0..shards {
            let path = shard_path(dir, s);
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                // Existing bytes are the recovered data — never truncate
                // here; the scan below trims any torn tail itself.
                .truncate(false)
                .open(&path)?;
            let file_len = file.metadata()?.len();
            let scan = if file_len < SEGMENT_HEADER_LEN {
                // Crash before this shard's header made it to disk (or a
                // brand-new file): reinitialize as empty.
                write_all_at(&file, &encode_file_header(s as u32), 0)?;
                report.reinitialized_shards += 1;
                ScanResult {
                    committed: SEGMENT_HEADER_LEN,
                    records: 0,
                    entries: BTreeMap::new(),
                    bytes: 0,
                }
            } else {
                Self::scan_shard(&file, s as u32)?
            };
            report.records += scan.records;
            report.truncated_bytes += file_len.saturating_sub(scan.committed.min(file_len));
            // Drop the torn tail / preallocated zeros so the file length
            // is again exactly the committed data.
            file.set_len(scan.committed)?;
            let reader = File::open(&path)?;
            let map = match mode {
                AccessMode::Mmap => Mmap::new(&file, scan.committed as usize).map(Arc::new),
                AccessMode::Pread => None,
            };
            out.push(Shard {
                reader,
                seg_writer: Mutex::new(ShardWriter {
                    file,
                    committed: scan.committed,
                    capacity: scan.committed,
                    map_stale: false,
                    scratch: Vec::new(),
                }),
                seg_index: Mutex::new(ShardIndex {
                    entries: scan.entries,
                    map,
                    bytes: scan.bytes,
                }),
            });
        }
        Ok((
            SegmentStore {
                dir: dir.to_path_buf(),
                mode,
                shards: out,
            },
            report,
        ))
    }

    /// Sequentially scan one shard file: validate the file header, then
    /// walk records verifying CRCs until the first incomplete/corrupt one.
    fn scan_shard(file: &File, shard: u32) -> io::Result<ScanResult> {
        let file_len = file.metadata()?.len();
        let mut rd = BufReader::with_capacity(1 << 16, file);
        // The handle may have been scanned before (verify after open);
        // the scan always starts from byte 0.
        rd.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
        rd.read_exact(&mut header)?;
        if header[..4] != SEGMENT_MAGIC {
            return Err(bad_data(format!("shard {shard}: bad segment magic")));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != SEGMENT_VERSION {
            return Err(bad_data(format!(
                "shard {shard}: segment version {version}, expected {SEGMENT_VERSION}"
            )));
        }
        let stored_shard = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if stored_shard != shard {
            return Err(bad_data(format!(
                "shard file mismatch: header says shard {stored_shard}, path says {shard}"
            )));
        }

        let mut entries = BTreeMap::new();
        let mut committed = SEGMENT_HEADER_LEN;
        let mut records = 0u64;
        let mut bytes = 0u64;
        let mut rec_header = [0u8; RECORD_HEADER_LEN];
        let mut chunk = [0u8; 1 << 16];
        loop {
            if committed + RECORD_HEADER_LEN as u64 > file_len {
                break;
            }
            rd.read_exact(&mut rec_header)?;
            let Some(h) = parse_record_header(&rec_header) else {
                break; // zero tail, torn header, or foreign bytes
            };
            let payload_end = committed + RECORD_HEADER_LEN as u64 + u64::from(h.len);
            if payload_end > file_len {
                break; // payload torn past EOF
            }
            // Stream the payload through the CRC without materializing it.
            let mut remaining = h.len as usize;
            let mut state = CRC_INIT;
            while remaining > 0 {
                let take = remaining.min(chunk.len());
                rd.read_exact(&mut chunk[..take])?;
                state = crc_update(state, &chunk[..take]);
                remaining -= take;
            }
            if crc_finish(state) != h.crc {
                break; // torn payload overwritten by zeros, or bit rot
            }
            entries.insert((h.id, h.rep), (committed + RECORD_HEADER_LEN as u64, h.len));
            records += 1;
            bytes += RECORD_HEADER_LEN as u64 + u64::from(h.len);
            committed = payload_end;
        }
        Ok(ScanResult {
            committed,
            records,
            entries,
            bytes,
        })
    }

    /// Shard index for an item id.
    #[inline]
    pub fn shard_of(&self, id: u64) -> usize {
        (id % self.shards.len() as u64) as usize
    }

    /// Append one record. Only this item's shard is locked, so ingest
    /// fans out across shards. The entry becomes fetchable once the index
    /// publish completes.
    pub fn append(&self, id: u64, rep: Representation, payload: &[u8]) -> io::Result<()> {
        // FAULT: transient write error, injected before any shard state
        // changes so a retried append starts from a clean slate.
        if let Some(e) = tahoma_faults::transient_io(tahoma_faults::site::SEG_WRITE) {
            return Err(e);
        }
        let shard = &self.shards[self.shard_of(id)];
        let rec_len = RECORD_HEADER_LEN as u64 + payload.len() as u64;
        let mut w = lock(&shard.seg_writer);
        let off = w.committed;
        let end = off + rec_len;
        if end > w.capacity {
            // Preallocate in doubling steps: the zero tail terminates the
            // recovery scan, and a stable capacity keeps one mmap valid
            // across many appends.
            let cap = end.max(w.capacity * 2).max(MIN_CAPACITY_STEP);
            w.file.set_len(cap)?;
            w.capacity = cap;
            w.map_stale = true;
        }
        let mut buf = std::mem::take(&mut w.scratch);
        encode_record(&mut buf, id, rep, payload);
        let res = write_all_at(&w.file, &buf, off);
        w.scratch = buf;
        res?;
        w.committed = end;
        // Publish under the index lock while still holding the writer
        // lock (ranks 70 → 71, ascending).
        let mut ix = lock(&shard.seg_index);
        if self.mode == AccessMode::Mmap && (w.map_stale || ix.map.is_none()) {
            // FAULT: a failed mmap (re)publish drops the shard to the pread
            // fallback; the next append retries the mapping.
            ix.map = if tahoma_faults::fire(tahoma_faults::site::SEG_MMAP) {
                None
            } else {
                Mmap::new(&w.file, w.capacity as usize).map(Arc::new)
            };
            if ix.map.is_some() {
                w.map_stale = false;
            }
        }
        ix.entries.insert(
            (id, rep),
            (off + RECORD_HEADER_LEN as u64, payload.len() as u32),
        );
        ix.bytes += rec_len;
        Ok(())
    }

    /// Run `f` over one record's payload bytes. In mmap mode the bytes
    /// come straight from the page cache with no copy; otherwise they are
    /// pread into `scratch` (resized as needed). `Ok(None)` when the
    /// record was never appended.
    pub fn with_payload<R>(
        &self,
        id: u64,
        rep: Representation,
        scratch: &mut Vec<u8>,
        f: impl FnOnce(&[u8]) -> R,
    ) -> io::Result<Option<R>> {
        let shard = &self.shards[self.shard_of(id)];
        let (off, len, map) = {
            let ix = lock(&shard.seg_index);
            let Some(&(off, len)) = ix.entries.get(&(id, rep)) else {
                return Ok(None);
            };
            (off, len, ix.map.clone())
        };
        // FAULT: a slow read stalls without erroring, then a transient
        // read error is retryable by the fetch layer.
        tahoma_faults::stall(tahoma_faults::site::SEG_READ_SLOW);
        if let Some(e) = tahoma_faults::transient_io(tahoma_faults::site::SEG_READ) {
            return Err(e);
        }
        // FAULT: a short read surfaces as Interrupted — retryable.
        if tahoma_faults::fire(tahoma_faults::site::SEG_READ_SHORT) {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected short read for record ({id}, {rep})"),
            ));
        }
        // FAULT: a CRC mismatch is permanent — the fetch layer quarantines
        // the record and degrades to transcode-from-source.
        if tahoma_faults::fire(tahoma_faults::site::SEG_READ_CORRUPT) {
            return Err(bad_data(format!(
                "injected CRC mismatch for record ({id}, {rep})"
            )));
        }
        let end = off as usize + len as usize;
        if let Some(m) = map {
            if end <= m.len() {
                return Ok(Some(f(&m.as_slice()[off as usize..end])));
            }
        }
        scratch.resize(len as usize, 0);
        read_exact_at(&shard.reader, scratch, off)?;
        Ok(Some(f(scratch)))
    }

    /// Stored payload length for a record, if present.
    pub fn payload_len(&self, id: u64, rep: Representation) -> Option<usize> {
        let shard = &self.shards[self.shard_of(id)];
        let ix = lock(&shard.seg_index);
        ix.entries.get(&(id, rep)).map(|&(_, len)| len as usize)
    }

    /// True when the record exists.
    pub fn contains(&self, id: u64, rep: Representation) -> bool {
        self.payload_len(id, rep).is_some()
    }

    /// Total indexed records across shards.
    pub fn records(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| lock(&s.seg_index).entries.len() as u64)
            .sum()
    }

    /// Committed bytes across shards (record headers + payloads, not
    /// counting file headers or preallocated capacity).
    pub fn committed_bytes(&self) -> u64 {
        self.shards.iter().map(|s| lock(&s.seg_index).bytes).sum()
    }

    /// Distinct item ids across shards.
    pub fn distinct_ids(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let ix = lock(&s.seg_index);
                let ids: HashSet<u64> = ix.entries.keys().map(|&(id, _)| id).collect();
                ids.len() as u64
            })
            .sum()
    }

    /// Every `(id, rep)` key, shard by shard (test/verification surface;
    /// snapshots the index, so O(records) memory).
    pub fn keys(&self) -> Vec<(u64, Representation)> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(lock(&s.seg_index).entries.keys().copied());
        }
        out
    }

    /// Durability + compaction point: truncate each shard to its
    /// committed length (dropping preallocated zeros) and flush file
    /// data. After `sync`, `open` finds exactly the appended records.
    pub fn sync(&self) -> io::Result<()> {
        for s in &self.shards {
            let mut w = lock(&s.seg_writer);
            if w.capacity != w.committed {
                w.file.set_len(w.committed)?;
                w.capacity = w.committed;
                // Existing maps stay valid for reads below `committed`
                // (their pages are still backed); new appends regrow and
                // remap.
                w.map_stale = true;
            }
            w.file.sync_data()?;
        }
        Ok(())
    }

    /// Re-scan every shard file, CRC-checking all records, and compare
    /// against the live index — the persistence smoke test's deep check.
    /// Returns the number of verified records.
    pub fn verify_all(&self) -> io::Result<u64> {
        let mut verified = 0u64;
        for (s, shard) in self.shards.iter().enumerate() {
            // Stabilize the file length for the sequential scan.
            let w = lock(&shard.seg_writer);
            let scan = Self::scan_shard(&w.file, s as u32)?;
            drop(w);
            let ix = lock(&shard.seg_index);
            if scan.entries != ix.entries {
                return Err(bad_data(format!(
                    "shard {s}: on-disk scan found {} records, index holds {}",
                    scan.entries.len(),
                    ix.entries.len()
                )));
            }
            verified += scan.records;
        }
        Ok(verified)
    }

    /// Re-scan every shard and return the indexed records whose on-disk
    /// bytes are no longer verifiable — the quarantine feed for serve
    /// startup's `--verify-on-open`. Unlike [`SegmentStore::verify_all`],
    /// corruption is *reported*, not an error; only I/O failures reading
    /// the shard files surface as `Err`. The scan stops at the first bad
    /// record per shard, so everything after a corrupt record in the same
    /// shard is reported too (conservative: quarantined records fall back
    /// to transcode-from-source, never to wrong bytes).
    pub fn unverifiable_records(&self) -> io::Result<Vec<(u64, Representation)>> {
        let mut bad = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            // Stabilize the file length for the sequential scan.
            let w = lock(&shard.seg_writer);
            let scan = Self::scan_shard(&w.file, s as u32)?;
            drop(w);
            let ix = lock(&shard.seg_index);
            for (key, val) in &ix.entries {
                if scan.entries.get(key) != Some(val) {
                    bad.push(*key);
                }
            }
        }
        Ok(bad)
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Configured access mode (individual shards may still fall back to
    /// pread when a mapping cannot be established).
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::ColorMode;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tahoma-seg-{tag}-{}-{seq}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn rep(size: usize, mode: ColorMode) -> Representation {
        Representation::new(size, mode)
    }

    fn payload(id: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| ((id as usize * 131 + i * 7) % 251) as u8)
            .collect()
    }

    fn fetch(store: &SegmentStore, id: u64, r: Representation) -> Option<Vec<u8>> {
        let mut scratch = Vec::new();
        store
            .with_payload(id, r, &mut scratch, |b| b.to_vec())
            .expect("io")
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_fetch_roundtrip_both_modes() {
        for mode in [AccessMode::Mmap, AccessMode::Pread] {
            let dir = tmp_dir("roundtrip");
            let store = SegmentStore::create(&dir, 4, mode).expect("create");
            let reps = [rep(30, ColorMode::Gray), rep(60, ColorMode::Rgb)];
            for id in 0..64u64 {
                for (k, &r) in reps.iter().enumerate() {
                    store
                        .append(id, r, &payload(id * 10 + k as u64, 100 + k * 57))
                        .expect("append");
                }
            }
            assert_eq!(store.records(), 128);
            assert_eq!(store.distinct_ids(), 64);
            for id in 0..64u64 {
                for (k, &r) in reps.iter().enumerate() {
                    let got = fetch(&store, id, r).expect("present");
                    assert_eq!(got, payload(id * 10 + k as u64, 100 + k * 57), "{mode:?}");
                }
            }
            assert!(fetch(&store, 999, reps[0]).is_none());
            assert!(fetch(&store, 0, rep(224, ColorMode::Blue)).is_none());
            fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn reopen_recovers_everything_after_sync() {
        let dir = tmp_dir("reopen");
        let r = rep(30, ColorMode::Gray);
        {
            let store = SegmentStore::create(&dir, 3, AccessMode::Pread).expect("create");
            for id in 0..40u64 {
                store.append(id, r, &payload(id, 64)).expect("append");
            }
            store.sync().expect("sync");
        }
        let (store, report) = SegmentStore::open(&dir, 3, AccessMode::Mmap).expect("open");
        assert_eq!(report.records, 40);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.reinitialized_shards, 0);
        for id in 0..40u64 {
            assert_eq!(fetch(&store, id, r).expect("present"), payload(id, 64));
        }
        assert_eq!(store.verify_all().expect("verify"), 40);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_without_sync_drops_only_preallocated_tail() {
        // No sync: files keep their preallocated zero tails, exactly the
        // state after a crash between appends. Recovery must keep every
        // complete record and truncate the zeros.
        let dir = tmp_dir("nosync");
        let r = rep(30, ColorMode::Gray);
        {
            let store = SegmentStore::create(&dir, 2, AccessMode::Mmap).expect("create");
            for id in 0..10u64 {
                store.append(id, r, &payload(id, 256)).expect("append");
            }
            // `store` dropped without sync.
        }
        let (store, report) = SegmentStore::open(&dir, 2, AccessMode::Mmap).expect("open");
        assert_eq!(report.records, 10);
        assert!(
            report.truncated_bytes > 0,
            "prealloc tail should be dropped"
        );
        for id in 0..10u64 {
            assert_eq!(fetch(&store, id, r).expect("present"), payload(id, 256));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_recovers_to_last_complete_record() {
        let dir = tmp_dir("torn");
        let r = rep(30, ColorMode::Gray);
        let n = 12u64;
        {
            let store = SegmentStore::create(&dir, 1, AccessMode::Pread).expect("create");
            for id in 0..n {
                store.append(id, r, &payload(id, 200)).expect("append");
            }
            store.sync().expect("sync");
        }
        let path = shard_path(&dir, 0);
        let orig = fs::read(&path).expect("read");
        let full = orig.len() as u64;
        let rec = (RECORD_HEADER_LEN + 200) as u64;
        // Tear cases: mid-payload of the last record, mid-header of the
        // last record, exactly at a record boundary, and a deep tear.
        for (cut, survivors) in [
            (full - 100, n - 1),          // payload torn
            (full - rec + 10, n - 1),     // header torn
            (full - rec, n - 1),          // clean boundary
            (full - 2 * rec - 37, n - 3), // deep tear loses two + partial
        ] {
            fs::write(&path, &orig).expect("restore");
            let f = OpenOptions::new().write(true).open(&path).expect("open");
            f.set_len(cut).expect("tear");
            drop(f);
            let (store, report) = SegmentStore::open(&dir, 1, AccessMode::Mmap).expect("open");
            assert_eq!(report.records, survivors, "cut at {cut}");
            for id in 0..survivors {
                assert_eq!(fetch(&store, id, r).expect("survivor"), payload(id, 200));
            }
            for id in survivors..n {
                assert!(
                    fetch(&store, id, r).is_none(),
                    "torn record {id} resurrected"
                );
            }
            // Appends after recovery work and re-verify.
            store.append(1000, r, &payload(1000, 200)).expect("append");
            assert_eq!(
                fetch(&store, 1000, r).expect("appended"),
                payload(1000, 200)
            );
            store.sync().expect("sync");
            assert_eq!(store.verify_all().expect("verify"), survivors + 1);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_payload_is_dropped_not_served() {
        let dir = tmp_dir("corrupt");
        let r = rep(30, ColorMode::Gray);
        {
            let store = SegmentStore::create(&dir, 1, AccessMode::Pread).expect("create");
            for id in 0..5u64 {
                store.append(id, r, &payload(id, 128)).expect("append");
            }
            store.sync().expect("sync");
        }
        let path = shard_path(&dir, 0);
        let mut bytes = fs::read(&path).expect("read");
        // Flip one payload byte of the final record.
        let n = bytes.len();
        bytes[n - 10] ^= 0xFF;
        fs::write(&path, &bytes).expect("write");
        let (store, report) = SegmentStore::open(&dir, 1, AccessMode::Pread).expect("open");
        assert_eq!(report.records, 4, "corrupt record must not be indexed");
        assert!(fetch(&store, 4, r).is_none());
        for id in 0..4u64 {
            assert_eq!(fetch(&store, id, r).expect("intact"), payload(id, 128));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_all_detects_bit_rot_under_live_index() {
        let dir = tmp_dir("bitrot");
        let r = rep(30, ColorMode::Gray);
        let store = SegmentStore::create(&dir, 1, AccessMode::Pread).expect("create");
        for id in 0..6u64 {
            store.append(id, r, &payload(id, 64)).expect("append");
        }
        store.sync().expect("sync");
        assert_eq!(store.verify_all().expect("clean"), 6);
        // Corrupt a middle record behind the store's back.
        let path = shard_path(&dir, 0);
        let mut bytes = fs::read(&path).expect("read");
        let mid =
            SEGMENT_HEADER_LEN as usize + 2 * (RECORD_HEADER_LEN + 64) + RECORD_HEADER_LEN + 5;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).expect("write");
        assert!(
            store.verify_all().is_err(),
            "bit rot must fail verification"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn last_write_wins_for_duplicate_keys() {
        let dir = tmp_dir("dup");
        let r = rep(30, ColorMode::Gray);
        let store = SegmentStore::create(&dir, 2, AccessMode::Pread).expect("create");
        store.append(7, r, &payload(1, 50)).expect("append");
        store.append(7, r, &payload(2, 80)).expect("append");
        assert_eq!(fetch(&store, 7, r).expect("present"), payload(2, 80));
        assert_eq!(store.records(), 1);
        store.sync().expect("sync");
        drop(store);
        let (store, _) = SegmentStore::open(&dir, 2, AccessMode::Pread).expect("open");
        assert_eq!(fetch(&store, 7, r).expect("present"), payload(2, 80));
        assert_eq!(store.records(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_shard_fanout_appends_and_fetches() {
        let dir = tmp_dir("fanout");
        let store = SegmentStore::create(&dir, 4, AccessMode::Mmap).expect("create");
        let r = rep(30, ColorMode::Gray);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..50u64 {
                        let id = t + i * 4; // each thread owns one shard
                        store.append(id, r, &payload(id, 120)).expect("append");
                        let mut scratch = Vec::new();
                        let got = store
                            .with_payload(id, r, &mut scratch, |b| b.to_vec())
                            .expect("io")
                            .expect("just appended");
                        assert_eq!(got, payload(id, 120));
                    }
                });
            }
        });
        assert_eq!(store.records(), 200);
        fs::remove_dir_all(&dir).ok();
    }
}

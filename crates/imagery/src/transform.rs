//! Input transformation functions **F** (paper §V-B, Definition 6).
//!
//! A transformation function maps a raw full-resolution RGB image into the
//! physical representation a particular model consumes: some combination of
//! resolution scaling and color-depth reduction. Resizing and channel
//! reduction are both linear, so their order does not change the output;
//! we reduce color first because it is cheaper (the resize then touches one
//! plane instead of three). The cost model in `tahoma-costmodel` accounts
//! for exactly this pipeline.
//!
//! The hot-path implementations live in [`crate::engine`]: the one-shot
//! functions here route through the thread-local [`TranscodeEngine`]
//! (runtime-dispatched SIMD kernels, cached resize tables), and each keeps
//! a `*_reference` scalar twin — the seed implementation — that the
//! property tests pin the engine against bitwise and the `repr_transform`
//! bench uses as its baseline.
//!
//! [`TranscodeEngine`]: crate::engine::TranscodeEngine

use crate::color::{ColorMode, LUMA_WEIGHTS};
use crate::engine::with_local_engine;
use crate::error::ImageryError;
use crate::image::Image;
use std::borrow::Cow;

/// Convert an image to another color mode.
///
/// Defined conversions: RGB -> any mode (extraction / luma), identity for
/// every mode, and any single-channel mode -> Gray (reinterpretation, the
/// samples are already one plane). Everything else is an error.
///
/// The identity conversion borrows the source (`Cow::Borrowed`) instead of
/// cloning the full buffer; only real conversions allocate.
pub fn convert_mode(src: &Image, target: ColorMode) -> Result<Cow<'_, Image>, ImageryError> {
    with_local_engine(|e| e.convert_mode(src, target))
}

/// Scalar reference for [`convert_mode`] — the seed implementation,
/// allocation per call included. Kept for property tests and the bench
/// baseline.
pub fn convert_mode_reference(src: &Image, target: ColorMode) -> Result<Image, ImageryError> {
    if src.mode() == target {
        return Ok(src.clone());
    }
    match (src.mode(), target) {
        (ColorMode::Rgb, t) => {
            let (w, h) = (src.width(), src.height());
            if let Some(c) = t.source_channel() {
                let plane = src.plane(c).to_vec();
                return Image::from_planar(w, h, t, plane);
            }
            // Gray: weighted sum of planes.
            let n = w * h;
            let mut out = vec![0.0f32; n];
            let (r, g, b) = (src.plane(0), src.plane(1), src.plane(2));
            for i in 0..n {
                out[i] = LUMA_WEIGHTS[0] * r[i] + LUMA_WEIGHTS[1] * g[i] + LUMA_WEIGHTS[2] * b[i];
            }
            Image::from_planar(w, h, ColorMode::Gray, out)
        }
        (from, ColorMode::Gray) if from.channels() == 1 => Image::from_planar(
            src.width(),
            src.height(),
            ColorMode::Gray,
            src.data().to_vec(),
        ),
        (from, to) => Err(ImageryError::UnsupportedConversion {
            from: from.tag(),
            to: to.tag(),
        }),
    }
}

/// Bilinear resize to `(out_w, out_h)`. Uses edge clamping; this is the
/// resize the paper's resolution-scaling transforms perform. Runs the
/// engine's separable two-pass sweep (bitwise identical to
/// [`resize_bilinear_reference`]).
pub fn resize_bilinear(src: &Image, out_w: usize, out_h: usize) -> Result<Image, ImageryError> {
    with_local_engine(|e| e.resize_bilinear(src, out_w, out_h))
}

/// Scalar reference for [`resize_bilinear`] — the seed's direct per-pixel
/// loop. The engine's separable sweep evaluates the identical lerp chain
/// per output pixel, so the two agree bitwise (property-tested).
pub fn resize_bilinear_reference(
    src: &Image,
    out_w: usize,
    out_h: usize,
) -> Result<Image, ImageryError> {
    if out_w == 0 || out_h == 0 {
        return Err(ImageryError::InvalidDimensions {
            width: out_w,
            height: out_h,
        });
    }
    let (in_w, in_h) = (src.width(), src.height());
    let mut out = Image::zeros(out_w, out_h, src.mode())?;
    // Align pixel centers: map output center to input center.
    let sx = in_w as f32 / out_w as f32;
    let sy = in_h as f32 / out_h as f32;
    for c in 0..src.channels() {
        let plane = src.plane(c);
        for oy in 0..out_h {
            let fy = ((oy as f32 + 0.5) * sy - 0.5).max(0.0);
            let y0 = (fy as usize).min(in_h - 1);
            let y1 = (y0 + 1).min(in_h - 1);
            let wy = fy - y0 as f32;
            for ox in 0..out_w {
                let fx = ((ox as f32 + 0.5) * sx - 0.5).max(0.0);
                let x0 = (fx as usize).min(in_w - 1);
                let x1 = (x0 + 1).min(in_w - 1);
                let wx = fx - x0 as f32;
                let top = plane[y0 * in_w + x0] * (1.0 - wx) + plane[y0 * in_w + x1] * wx;
                let bot = plane[y1 * in_w + x0] * (1.0 - wx) + plane[y1 * in_w + x1] * wx;
                out.set(c, oy, ox, top * (1.0 - wy) + bot * wy);
            }
        }
    }
    Ok(out)
}

/// Nearest-neighbor resize (used by the fast thumbnailing path of the video
/// difference detector, where fidelity matters less than speed).
pub fn resize_nearest(src: &Image, out_w: usize, out_h: usize) -> Result<Image, ImageryError> {
    if out_w == 0 || out_h == 0 {
        return Err(ImageryError::InvalidDimensions {
            width: out_w,
            height: out_h,
        });
    }
    let (in_w, in_h) = (src.width(), src.height());
    let mut out = Image::zeros(out_w, out_h, src.mode())?;
    for c in 0..src.channels() {
        let plane = src.plane(c);
        for oy in 0..out_h {
            let iy = (oy * in_h / out_h).min(in_h - 1);
            for ox in 0..out_w {
                let ix = (ox * in_w / out_w).min(in_w - 1);
                out.set(c, oy, ox, plane[iy * in_w + ix]);
            }
        }
    }
    Ok(out)
}

/// Horizontal flip — the data augmentation the paper applies to double its
/// training sets (§VII-A).
pub fn flip_horizontal(src: &Image) -> Image {
    let (w, h) = (src.width(), src.height());
    let mut out = Image::zeros(w, h, src.mode()).expect("source image has valid dims");
    for c in 0..src.channels() {
        let plane = src.plane(c);
        for y in 0..h {
            for x in 0..w {
                out.set(c, y, x, plane[y * w + (w - 1 - x)]);
            }
        }
    }
    out
}

/// Standardize samples to zero mean / unit variance per image (a common CNN
/// input normalization). Constant images come back all-zero.
///
/// Runs the engine's eight-lane f64 reduction (SIMD on supporting CPUs);
/// every kernel tier agrees bitwise, and the result differs from a naive
/// sequential f64 sum only by float reassociation of the mean/variance.
pub fn standardize(src: &Image) -> Image {
    with_local_engine(|e| e.standardize(src))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::ColorMode;

    fn gradient_rgb(w: usize, h: usize) -> Image {
        Image::from_fn(w, h, ColorMode::Rgb, |c, y, x| {
            (c as f32 * 0.1 + y as f32 * 0.01 + x as f32 * 0.001).min(1.0)
        })
        .unwrap()
    }

    #[test]
    fn convert_identity_is_borrow() {
        let img = gradient_rgb(4, 4);
        let out = convert_mode(&img, ColorMode::Rgb).unwrap();
        assert!(matches!(out, std::borrow::Cow::Borrowed(_)));
        assert_eq!(out.as_ref(), &img);
    }

    #[test]
    fn convert_extracts_channels() {
        let img = gradient_rgb(4, 4);
        for (mode, c) in [
            (ColorMode::Red, 0),
            (ColorMode::Green, 1),
            (ColorMode::Blue, 2),
        ] {
            let out = convert_mode(&img, mode).unwrap();
            assert_eq!(out.mode(), mode);
            assert_eq!(out.plane(0), img.plane(c));
        }
    }

    #[test]
    fn convert_gray_uses_luma() {
        let img = Image::from_fn(
            1,
            1,
            ColorMode::Rgb,
            |c, _, _| if c == 1 { 1.0 } else { 0.0 },
        )
        .unwrap();
        let g = convert_mode(&img, ColorMode::Gray).unwrap();
        assert!((g.get(0, 0, 0) - 0.587).abs() < 1e-6);
    }

    #[test]
    fn convert_matches_reference() {
        let img = gradient_rgb(9, 5);
        for mode in ColorMode::ALL {
            let got = convert_mode(&img, mode).unwrap();
            let want = convert_mode_reference(&img, mode).unwrap();
            assert_eq!(got.as_ref(), &want, "mode {mode}");
        }
    }

    #[test]
    fn convert_rejects_undefined() {
        let gray = Image::zeros(2, 2, ColorMode::Gray).unwrap();
        assert!(convert_mode(&gray, ColorMode::Red).is_err());
        let red = Image::zeros(2, 2, ColorMode::Red).unwrap();
        // single channel -> gray is a reinterpretation and allowed
        assert!(convert_mode(&red, ColorMode::Gray).is_ok());
        assert!(convert_mode(&red, ColorMode::Rgb).is_err());
        assert!(convert_mode_reference(&gray, ColorMode::Red).is_err());
    }

    #[test]
    fn bilinear_preserves_constant_images() {
        let img = Image::from_fn(8, 8, ColorMode::Gray, |_, _, _| 0.42).unwrap();
        let out = resize_bilinear(&img, 3, 5).unwrap();
        assert!(out.data().iter().all(|&v| (v - 0.42).abs() < 1e-6));
    }

    #[test]
    fn bilinear_identity_size_is_near_noop() {
        let img = gradient_rgb(6, 6);
        let out = resize_bilinear(&img, 6, 6).unwrap();
        let d = img.mean_abs_diff(&out).unwrap();
        assert!(d < 1e-6, "diff {d}");
    }

    #[test]
    fn bilinear_downsample_averages() {
        // 2x2 checkerboard of 0/1 downsampled to 1x1 must give ~0.5.
        let img = Image::from_planar(2, 2, ColorMode::Gray, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let out = resize_bilinear(&img, 1, 1).unwrap();
        assert!((out.get(0, 0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn bilinear_values_stay_in_range() {
        let img = gradient_rgb(16, 16);
        let out = resize_bilinear(&img, 7, 11).unwrap();
        for &v in out.data() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn bilinear_matches_reference_bitwise() {
        let img = gradient_rgb(19, 13);
        for (ow, oh) in [(7, 11), (19, 13), (32, 5), (1, 1)] {
            let got = resize_bilinear(&img, ow, oh).unwrap();
            let want = resize_bilinear_reference(&img, ow, oh).unwrap();
            assert_eq!(got.data(), want.data(), "{ow}x{oh}");
        }
    }

    #[test]
    fn nearest_picks_existing_samples() {
        let img = Image::from_planar(2, 1, ColorMode::Gray, vec![0.25, 0.75]).unwrap();
        let out = resize_nearest(&img, 4, 1).unwrap();
        for &v in out.data() {
            assert!(v == 0.25 || v == 0.75);
        }
    }

    #[test]
    fn resize_rejects_zero_target() {
        let img = gradient_rgb(4, 4);
        assert!(resize_bilinear(&img, 0, 4).is_err());
        assert!(resize_bilinear_reference(&img, 0, 4).is_err());
        assert!(resize_nearest(&img, 4, 0).is_err());
    }

    #[test]
    fn flip_is_involution() {
        let img = gradient_rgb(5, 3);
        let twice = flip_horizontal(&flip_horizontal(&img));
        assert_eq!(img, twice);
    }

    #[test]
    fn flip_mirrors_columns() {
        let img = Image::from_planar(3, 1, ColorMode::Gray, vec![0.1, 0.2, 0.3]).unwrap();
        let f = flip_horizontal(&img);
        assert_eq!(f.data(), &[0.3, 0.2, 0.1]);
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let img = gradient_rgb(8, 8);
        let s = standardize(&img);
        let data = s.data();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        let var: f32 =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn standardize_constant_image_is_zero() {
        let img = Image::from_fn(4, 4, ColorMode::Gray, |_, _, _| 0.7).unwrap();
        let s = standardize(&img);
        assert!(s.data().iter().all(|&v| v == 0.0));
    }
}

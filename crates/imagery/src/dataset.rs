//! Labeled datasets and the paper's split protocol.
//!
//! §V-A: per binary predicate TAHOMA uses 3,000-4,000 labeled images with
//! equal positive/negative counts, split three ways — a *training* set for
//! the model trainer, a *configuration* set for decision-threshold
//! calibration, and an *evaluation* set for cascade accuracy/throughput
//! measurement. §VII-A: training sets are doubled by left-right flips.

use crate::image::Image;
use crate::synth::{ObjectKind, SceneParams, SceneRenderer};
use crate::transform::flip_horizontal;
use std::fmt;
use tahoma_mathx::DetRng;

/// One labeled example.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledImage {
    /// Stable id, unique within its bundle.
    pub id: u64,
    /// Ground-truth: does the image contain the target object?
    pub label: bool,
    /// Intrinsic difficulty in [0, 1] reported by the renderer.
    pub difficulty: f32,
    /// Full-resolution RGB pixels.
    pub image: Image,
}

/// A named collection of labeled examples.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Split name ("train" / "config" / "eval").
    pub name: String,
    /// The examples.
    pub items: Vec<LabeledImage>,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new(name: impl Into<String>) -> Dataset {
        Dataset {
            name: name.into(),
            items: Vec::new(),
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Count of positive examples.
    pub fn positives(&self) -> usize {
        self.items.iter().filter(|i| i.label).count()
    }

    /// Ground-truth labels in item order.
    pub fn labels(&self) -> Vec<bool> {
        self.items.iter().map(|i| i.label).collect()
    }

    /// Per-item difficulties in item order.
    pub fn difficulties(&self) -> Vec<f32> {
        self.items.iter().map(|i| i.difficulty).collect()
    }

    /// Append horizontally flipped copies of every item (the paper's data
    /// augmentation). New ids continue after the current maximum. When the
    /// dataset belongs to a bundle, use [`Dataset::augment_with_flips_from`]
    /// with a bundle-global id counter to keep ids unique across splits.
    pub fn augment_with_flips(&mut self) {
        let next_id = self.items.iter().map(|i| i.id).max().map_or(0, |m| m + 1);
        self.augment_with_flips_from(next_id);
    }

    /// Append flipped copies, assigning ids starting at `next_id`.
    pub fn augment_with_flips_from(&mut self, mut next_id: u64) {
        let flipped: Vec<LabeledImage> = self
            .items
            .iter()
            .map(|item| {
                let li = LabeledImage {
                    id: next_id,
                    label: item.label,
                    difficulty: item.difficulty,
                    image: flip_horizontal(&item.image),
                };
                next_id += 1;
                li
            })
            .collect();
        self.items.extend(flipped);
    }

    /// Deterministically shuffle item order.
    pub fn shuffle(&mut self, seed: u64) {
        let mut rng = DetRng::new(seed);
        rng.shuffle(&mut self.items);
    }
}

/// Specification for generating one predicate's dataset bundle.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Target category.
    pub kind: ObjectKind,
    /// Scene rendering parameters.
    pub params: SceneParams,
    /// Examples in the training split (before flip augmentation).
    pub n_train: usize,
    /// Examples in the configuration (threshold-calibration) split.
    pub n_config: usize,
    /// Examples in the evaluation split.
    pub n_eval: usize,
    /// Root seed; all randomness derives from it.
    pub seed: u64,
    /// Whether to double the training split with flips.
    pub augment: bool,
}

impl DatasetSpec {
    /// Paper-scale defaults: ~3.4k labeled images per predicate, balanced.
    pub fn paper_scale(kind: ObjectKind, seed: u64) -> DatasetSpec {
        DatasetSpec {
            kind,
            params: SceneParams::default(),
            n_train: 2_000,
            n_config: 400,
            n_eval: 1_000,
            seed,
            augment: true,
        }
    }

    /// Small bundle for unit tests and the real-CNN training path. Uses the
    /// easier scene parameters so tiny models can learn from tiny splits.
    pub fn tiny(kind: ObjectKind, size: usize, seed: u64) -> DatasetSpec {
        DatasetSpec {
            kind,
            params: SceneParams::easy(size),
            n_train: 120,
            n_config: 60,
            n_eval: 60,
            seed,
            augment: false,
        }
    }

    /// Render the three splits. Ids are unique across the whole bundle and
    /// labels are balanced within each split (odd counts get the extra
    /// negative).
    pub fn generate(&self) -> DatasetBundle {
        let renderer = SceneRenderer::new(self.kind, self.params, self.seed);
        let mut next_id = 0u64;
        let mut make_split = |name: &str, n: usize| -> Dataset {
            let mut ds = Dataset::new(name);
            ds.items.reserve(n);
            for i in 0..n {
                let label = i % 2 == 0 && i < n - (n % 2); // balanced; odd tail negative
                let (image, difficulty) = renderer.render(next_id, label);
                ds.items.push(LabeledImage {
                    id: next_id,
                    label,
                    difficulty,
                    image,
                });
                next_id += 1;
            }
            ds.shuffle(self.seed ^ 0x5151 ^ n as u64);
            ds
        };
        let mut train = make_split("train", self.n_train);
        let config = make_split("config", self.n_config);
        let eval = make_split("eval", self.n_eval);
        if self.augment {
            // Use the bundle-global counter so flip ids never collide with
            // config/eval ids.
            train.augment_with_flips_from(next_id);
        }
        DatasetBundle {
            kind: self.kind,
            train,
            config,
            eval,
        }
    }
}

/// The three splits for one predicate.
#[derive(Debug, Clone)]
pub struct DatasetBundle {
    /// Target category.
    pub kind: ObjectKind,
    /// Model-training split (possibly flip-augmented).
    pub train: Dataset,
    /// Decision-threshold calibration split.
    pub config: Dataset,
    /// Cascade evaluation split.
    pub eval: Dataset,
}

impl DatasetBundle {
    /// Total example count across splits.
    pub fn total(&self) -> usize {
        self.train.len() + self.config.len() + self.eval.len()
    }

    /// Verify no id appears in two splits (the paper's overfitting guard:
    /// thresholds and accuracy must come from data the models never saw).
    pub fn splits_are_disjoint(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        for ds in [&self.train, &self.config, &self.eval] {
            for item in &ds.items {
                if !seen.insert(item.id) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for DatasetBundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: train={} config={} eval={}",
            self.kind,
            self.train.len(),
            self.config.len(),
            self.eval.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bundle() -> DatasetBundle {
        DatasetSpec::tiny(ObjectKind::Fence, 24, 42).generate()
    }

    #[test]
    fn split_sizes_match_spec() {
        let b = tiny_bundle();
        assert_eq!(b.train.len(), 120);
        assert_eq!(b.config.len(), 60);
        assert_eq!(b.eval.len(), 60);
        assert_eq!(b.total(), 240);
    }

    #[test]
    fn splits_are_balanced() {
        let b = tiny_bundle();
        for ds in [&b.train, &b.config, &b.eval] {
            let pos = ds.positives();
            assert_eq!(pos, ds.len() / 2, "{} not balanced", ds.name);
        }
    }

    #[test]
    fn ids_unique_across_bundle() {
        let b = tiny_bundle();
        assert!(b.splits_are_disjoint());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetSpec::tiny(ObjectKind::Acorn, 24, 7).generate();
        let b = DatasetSpec::tiny(ObjectKind::Acorn, 24, 7).generate();
        assert_eq!(a.eval.items[0].id, b.eval.items[0].id);
        assert_eq!(a.eval.items[0].image, b.eval.items[0].image);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetSpec::tiny(ObjectKind::Acorn, 24, 7).generate();
        let b = DatasetSpec::tiny(ObjectKind::Acorn, 24, 8).generate();
        let same = a
            .eval
            .items
            .iter()
            .zip(&b.eval.items)
            .filter(|(x, y)| x.image == y.image)
            .count();
        assert!(same < a.eval.len() / 2);
    }

    #[test]
    fn augmentation_doubles_training_split() {
        let mut spec = DatasetSpec::tiny(ObjectKind::Cloak, 24, 3);
        spec.augment = true;
        let b = spec.generate();
        assert_eq!(b.train.len(), 240);
        assert_eq!(b.train.positives(), 120);
        assert!(b.splits_are_disjoint());
    }

    #[test]
    fn flip_augmentation_preserves_labels_and_difficulty() {
        let mut ds = Dataset::new("t");
        let (img, d) =
            SceneRenderer::new(ObjectKind::Coho, SceneParams::small(16), 1).render(0, true);
        ds.items.push(LabeledImage {
            id: 0,
            label: true,
            difficulty: d,
            image: img.clone(),
        });
        ds.augment_with_flips();
        assert_eq!(ds.len(), 2);
        assert!(ds.items[1].label);
        assert_eq!(ds.items[1].difficulty, d);
        assert_eq!(ds.items[1].image, flip_horizontal(&img));
    }

    #[test]
    fn shuffle_is_seeded_permutation() {
        let mut a = tiny_bundle().eval;
        let mut b = a.clone();
        a.shuffle(99);
        b.shuffle(99);
        assert_eq!(
            a.items.iter().map(|i| i.id).collect::<Vec<_>>(),
            b.items.iter().map(|i| i.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn labels_and_difficulties_align() {
        let b = tiny_bundle();
        let labels = b.eval.labels();
        let diffs = b.eval.difficulties();
        assert_eq!(labels.len(), b.eval.len());
        assert_eq!(diffs.len(), b.eval.len());
        for (i, item) in b.eval.items.iter().enumerate() {
            assert_eq!(labels[i], item.label);
            assert_eq!(diffs[i], item.difficulty);
        }
    }
}

//! Planar floating-point raster images.
//!
//! Pixels are stored channel-planar (`[c][y][x]`) as `f32` in `[0, 1]`.
//! Planar layout makes channel extraction a `memcpy`, keeps convolution
//! kernels cache-friendly, and matches the layout the `tahoma-nn` tensors
//! use, so feeding a representation into a CNN is a reshape, not a shuffle.

use crate::color::{ColorMode, LUMA_WEIGHTS};
use crate::error::ImageryError;

/// A raster image: `mode.channels()` planes of `width * height` f32 samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    mode: ColorMode,
    data: Vec<f32>,
}

impl Image {
    /// Create a zero-filled image.
    pub fn zeros(width: usize, height: usize, mode: ColorMode) -> Result<Image, ImageryError> {
        Self::validate_dims(width, height)?;
        Ok(Image {
            width,
            height,
            mode,
            data: vec![0.0; width * height * mode.channels()],
        })
    }

    /// Create an image from an existing planar buffer.
    pub fn from_planar(
        width: usize,
        height: usize,
        mode: ColorMode,
        data: Vec<f32>,
    ) -> Result<Image, ImageryError> {
        Self::validate_dims(width, height)?;
        let expected = width * height * mode.channels();
        if data.len() != expected {
            return Err(ImageryError::BufferSizeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Image {
            width,
            height,
            mode,
            data,
        })
    }

    /// Build an image by evaluating `f(channel, y, x)` at every sample.
    pub fn from_fn<F>(
        width: usize,
        height: usize,
        mode: ColorMode,
        mut f: F,
    ) -> Result<Image, ImageryError>
    where
        F: FnMut(usize, usize, usize) -> f32,
    {
        let mut img = Image::zeros(width, height, mode)?;
        for c in 0..mode.channels() {
            for y in 0..height {
                for x in 0..width {
                    let v = f(c, y, x);
                    img.set(c, y, x, v);
                }
            }
        }
        Ok(img)
    }

    fn validate_dims(width: usize, height: usize) -> Result<(), ImageryError> {
        if width == 0 || height == 0 || width.checked_mul(height).is_none() {
            return Err(ImageryError::InvalidDimensions { width, height });
        }
        Ok(())
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Color mode.
    #[inline]
    pub fn mode(&self) -> ColorMode {
        self.mode
    }

    /// Number of channels.
    #[inline]
    pub fn channels(&self) -> usize {
        self.mode.channels()
    }

    /// Total number of scalar input values (`w * h * c`) — the quantity the
    /// paper uses when discussing input-size reduction (§VII-E: 224x224x3 =
    /// 150,528 values vs 30x30x3 = 2,700).
    #[inline]
    pub fn value_count(&self) -> usize {
        self.data.len()
    }

    /// Borrow the full planar buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the full planar buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the image, returning the planar buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Borrow one channel plane.
    #[inline]
    pub fn plane(&self, c: usize) -> &[f32] {
        let n = self.width * self.height;
        &self.data[c * n..(c + 1) * n]
    }

    /// Sample accessor. Debug-asserted bounds; hot paths index planes
    /// directly.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        debug_assert!(c < self.channels() && y < self.height && x < self.width);
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Sample setter.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        debug_assert!(c < self.channels() && y < self.height && x < self.width);
        self.data[(c * self.height + y) * self.width + x] = v;
    }

    /// Clamp all samples into [0, 1] in place.
    pub fn clamp_unit(&mut self) {
        for v in &mut self.data {
            *v = v.clamp(0.0, 1.0);
        }
    }

    /// Mean sample value across all channels.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Mean absolute difference against another image of identical shape.
    /// Returns `None` when shapes differ.
    pub fn mean_abs_diff(&self, other: &Image) -> Option<f32> {
        if self.width != other.width || self.height != other.height || self.mode != other.mode {
            return None;
        }
        let n = self.data.len() as f32;
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / n,
        )
    }

    /// Convert this RGB image's pixel at (y, x) to luma.
    #[inline]
    pub fn luma_at(&self, y: usize, x: usize) -> f32 {
        match self.mode {
            ColorMode::Rgb => {
                LUMA_WEIGHTS[0] * self.get(0, y, x)
                    + LUMA_WEIGHTS[1] * self.get(1, y, x)
                    + LUMA_WEIGHTS[2] * self.get(2, y, x)
            }
            _ => self.get(0, y, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape() {
        let img = Image::zeros(4, 3, ColorMode::Rgb).unwrap();
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.channels(), 3);
        assert_eq!(img.value_count(), 36);
        assert!(img.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(matches!(
            Image::zeros(0, 3, ColorMode::Gray),
            Err(ImageryError::InvalidDimensions { .. })
        ));
        assert!(matches!(
            Image::zeros(3, 0, ColorMode::Gray),
            Err(ImageryError::InvalidDimensions { .. })
        ));
    }

    #[test]
    fn from_planar_checks_length() {
        let err = Image::from_planar(2, 2, ColorMode::Rgb, vec![0.0; 5]).unwrap_err();
        assert!(matches!(
            err,
            ImageryError::BufferSizeMismatch {
                expected: 12,
                actual: 5
            }
        ));
        assert!(Image::from_planar(2, 2, ColorMode::Gray, vec![0.5; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::zeros(5, 4, ColorMode::Rgb).unwrap();
        img.set(2, 3, 4, 0.75);
        assert_eq!(img.get(2, 3, 4), 0.75);
        assert_eq!(img.get(0, 0, 0), 0.0);
    }

    #[test]
    fn from_fn_addresses_correctly() {
        let img = Image::from_fn(3, 2, ColorMode::Gray, |_, y, x| (y * 3 + x) as f32).unwrap();
        assert_eq!(img.get(0, 0, 0), 0.0);
        assert_eq!(img.get(0, 1, 2), 5.0);
    }

    #[test]
    fn plane_slices_are_disjoint_views() {
        let img = Image::from_fn(2, 2, ColorMode::Rgb, |c, _, _| c as f32).unwrap();
        assert!(img.plane(0).iter().all(|&v| v == 0.0));
        assert!(img.plane(1).iter().all(|&v| v == 1.0));
        assert!(img.plane(2).iter().all(|&v| v == 2.0));
    }

    #[test]
    fn mean_abs_diff_detects_shape_mismatch() {
        let a = Image::zeros(2, 2, ColorMode::Gray).unwrap();
        let b = Image::zeros(3, 2, ColorMode::Gray).unwrap();
        assert!(a.mean_abs_diff(&b).is_none());
        let c = Image::from_fn(2, 2, ColorMode::Gray, |_, _, _| 0.5).unwrap();
        assert!((a.mean_abs_diff(&c).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn clamp_unit_clamps() {
        let mut img = Image::from_planar(1, 2, ColorMode::Gray, vec![-0.5, 1.5]).unwrap();
        img.clamp_unit();
        assert_eq!(img.data(), &[0.0, 1.0]);
    }

    #[test]
    fn luma_matches_weights() {
        let img = Image::from_fn(1, 1, ColorMode::Rgb, |c, _, _| match c {
            0 => 1.0,
            1 => 0.5,
            _ => 0.0,
        })
        .unwrap();
        let expected = 0.299 * 1.0 + 0.587 * 0.5;
        assert!((img.luma_at(0, 0) - expected).abs() < 1e-6);
    }
}

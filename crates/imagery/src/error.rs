//! Error type for the image substrate.

use std::fmt;

/// Errors produced by image construction, transformation and codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageryError {
    /// Requested dimensions are zero or would overflow the buffer size.
    InvalidDimensions { width: usize, height: usize },
    /// Pixel buffer length does not match `width * height * channels`.
    BufferSizeMismatch { expected: usize, actual: usize },
    /// A color conversion that is not defined (e.g. grayscale -> red).
    UnsupportedConversion {
        from: &'static str,
        to: &'static str,
    },
    /// Byte stream did not parse as the expected codec format.
    Decode(String),
    /// The operation needs a full-resolution RGB source image.
    NotRgbSource,
    /// The persistent store tier hit an I/O error (message carries the
    /// `std::io::Error` rendering; the io error itself is not `Clone`).
    Io(String),
    /// A *retryable* I/O error: the kind (interrupted syscall, timeout,
    /// short read) suggests the same operation may succeed if repeated.
    /// The fetch layer retries these with bounded jittered backoff before
    /// degrading (see RELIABILITY.md); everything else is permanent.
    TransientIo(String),
}

impl fmt::Display for ImageryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageryError::InvalidDimensions { width, height } => {
                write!(f, "invalid image dimensions {width}x{height}")
            }
            ImageryError::BufferSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "pixel buffer size mismatch: expected {expected}, got {actual}"
                )
            }
            ImageryError::UnsupportedConversion { from, to } => {
                write!(f, "unsupported color conversion: {from} -> {to}")
            }
            ImageryError::Decode(msg) => write!(f, "decode error: {msg}"),
            ImageryError::NotRgbSource => {
                write!(f, "operation requires a full-resolution RGB source image")
            }
            ImageryError::Io(msg) => write!(f, "store i/o error: {msg}"),
            ImageryError::TransientIo(msg) => {
                write!(f, "transient store i/o error: {msg}")
            }
        }
    }
}

impl ImageryError {
    /// Whether retrying the failed operation may succeed. Only
    /// [`ImageryError::TransientIo`] qualifies; corruption, decode
    /// failures, and permanent I/O errors do not.
    pub fn is_transient(&self) -> bool {
        matches!(self, ImageryError::TransientIo(_))
    }
}

impl std::error::Error for ImageryError {}

impl From<std::io::Error> for ImageryError {
    fn from(e: std::io::Error) -> ImageryError {
        use std::io::ErrorKind;
        match e.kind() {
            // Interrupted syscalls, timeouts, and short reads are worth a
            // retry; anything else (NotFound, PermissionDenied, corrupt
            // data, ...) is treated as permanent.
            ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock => {
                ImageryError::TransientIo(e.to_string())
            }
            _ => ImageryError::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ImageryError::InvalidDimensions {
            width: 0,
            height: 5,
        };
        assert!(e.to_string().contains("0x5"));
        let e = ImageryError::BufferSizeMismatch {
            expected: 12,
            actual: 3,
        };
        assert!(e.to_string().contains("12"));
        let e = ImageryError::Decode("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }
}

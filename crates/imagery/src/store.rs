//! Representation store: the ONGOING scenario's ingest-time materialization
//! (paper §III: "video is continually ingested [...] transformed into
//! appropriate representations that are stored on SSD for later queries").
//!
//! On ingest, the store materializes a configured set of representations
//! per frame with the raw codec (one byte per sample, the layout the cost
//! model prices). At query time a model fetches exactly its
//! representation's bytes — no full-frame load, no transform. The store
//! tracks byte totals so storage-amplification tradeoffs (how many
//! representations is it worth pre-computing?) are measurable.
//!
//! Materialization runs through an owned [`TranscodeEngine`] executing a
//! [`TranscodePlan`] built once per source shape (see [`crate::engine`]):
//! the shared luma plane is computed once per frame, single-channel targets
//! resize straight from the source's planes, and resize span tables are
//! reused across frames — this is the per-frame serving cost of the
//! ONGOING scenario, so it gets the engine's full hot-path treatment.

use crate::codec::{Codec, RawCodec};
use crate::engine::{TranscodeCosts, TranscodeEngine, TranscodePlan};
use crate::error::ImageryError;
use crate::image::Image;
use crate::repr::Representation;
use bytes::Bytes;
use std::collections::HashMap;

/// In-memory stand-in for the SSD-backed representation store.
#[derive(Debug, Default)]
pub struct RepresentationStore {
    reps: Vec<Representation>,
    blobs: HashMap<(u64, Representation), Bytes>,
    total_bytes: usize,
    ingested: u64,
    engine: TranscodeEngine,
    /// Lattice plans keyed by source shape — each distinct ingested frame
    /// shape is planned exactly once.
    plans: HashMap<(usize, usize), TranscodePlan>,
    /// Shape of the most recently ingested frame (what
    /// [`RepresentationStore::planned_ingest_cost_s`] prices).
    last_shape: Option<(usize, usize)>,
}

impl RepresentationStore {
    /// Create a store that materializes the given representations on
    /// ingest. Panics on an empty set.
    pub fn new(reps: Vec<Representation>) -> RepresentationStore {
        assert!(!reps.is_empty(), "store needs at least one representation");
        RepresentationStore {
            reps,
            blobs: HashMap::new(),
            total_bytes: 0,
            ingested: 0,
            engine: TranscodeEngine::new(),
            plans: HashMap::new(),
            last_shape: None,
        }
    }

    /// The representations materialized per frame.
    pub fn representations(&self) -> &[Representation] {
        &self.reps
    }

    /// Ingest one full-resolution RGB frame: produce and encode every
    /// configured representation through the engine's lattice plan (shared
    /// luma, borrowed planes, cached resize tables — no per-frame setup).
    pub fn ingest(&mut self, id: u64, full: &Image) -> Result<(), ImageryError> {
        let shape = (full.width(), full.height());
        let reps = &self.reps;
        let plan = self.plans.entry(shape).or_insert_with(|| {
            TranscodePlan::new(shape.0, shape.1, reps, &TranscodeCosts::default())
        });
        self.last_shape = Some(shape);
        let materialized = self.engine.apply_planned(full, plan)?;
        for (&rep, image) in self.reps.iter().zip(&materialized) {
            let bytes = RawCodec.encode(image);
            self.total_bytes += bytes.len();
            self.blobs.insert((id, rep), bytes);
        }
        // Only the encoded bytes are kept; the pixel buffers feed the next
        // frame's materialization instead of the allocator.
        self.engine.recycle(materialized);
        self.ingested += 1;
        Ok(())
    }

    /// Ingest a batch of frames. Equivalent to calling
    /// [`RepresentationStore::ingest`] per frame (one plan and one engine
    /// scratch serve the whole batch either way).
    pub fn ingest_batch<'a>(
        &mut self,
        frames: impl IntoIterator<Item = (u64, &'a Image)>,
    ) -> Result<(), ImageryError> {
        for (id, frame) in frames {
            self.ingest(id, frame)?;
        }
        Ok(())
    }

    /// The cost-model price of one frame's planned materialization under
    /// the given per-unit costs, next to what the naive per-representation
    /// loop would pay. Priced for the most recently ingested frame shape;
    /// `None` before the first ingest fixes one.
    pub fn planned_ingest_cost_s(&self, costs: &TranscodeCosts) -> Option<(f64, f64)> {
        let (w, h) = self.last_shape?;
        let priced = TranscodePlan::new(w, h, &self.reps, costs);
        Some((priced.planned_cost_s(), priced.direct_cost_s()))
    }

    /// Fetch one stored representation, decoding it to pixels. Routed
    /// through [`RepresentationStore::fetch_into`], so repeated fetches of
    /// same-shaped blobs reuse pooled buffers instead of allocating.
    /// `None` when the frame or representation was never ingested.
    pub fn fetch(&mut self, id: u64, rep: Representation) -> Option<Result<Image, ImageryError>> {
        self.fetch_into(id, rep)
    }

    /// Pooled fetch: decode one stored representation into a buffer
    /// recycled from the engine's pool (fresh only on first use per
    /// shape). Together with [`RepresentationStore::recycle`] this makes
    /// steady-state query-time scoring allocation-free, matching the
    /// ingest path's discipline. `None` when the frame or representation
    /// was never ingested.
    pub fn fetch_into(
        &mut self,
        id: u64,
        rep: Representation,
    ) -> Option<Result<Image, ImageryError>> {
        let blob = self.blobs.get(&(id, rep))?;
        let buf = self.engine.take_buffer(rep.value_count());
        Some(RawCodec.decode_into(blob, buf))
    }

    /// Read-only fetch for concurrent serving: like
    /// [`RepresentationStore::fetch_into`], but the store is only borrowed
    /// shared — the decode buffer comes from a caller-owned
    /// [`TranscodeEngine`] instead of the store's. Many query sessions can
    /// decode from one store simultaneously, each with its own engine (and
    /// thus its own buffer pool), because the blob map is never mutated
    /// after ingest.
    pub fn fetch_shared(
        &self,
        id: u64,
        rep: Representation,
        engine: &mut TranscodeEngine,
    ) -> Option<Result<Image, ImageryError>> {
        let blob = self.blobs.get(&(id, rep))?;
        let buf = engine.take_buffer(rep.value_count());
        Some(RawCodec.decode_into(blob, buf))
    }

    /// Hand fetched images back so their buffers feed the next
    /// [`RepresentationStore::fetch_into`] (or the next ingest) instead of
    /// the allocator. Purely an optimization, like
    /// [`TranscodeEngine::recycle`].
    pub fn recycle(&mut self, images: impl IntoIterator<Item = Image>) {
        self.engine.recycle(images);
    }

    /// Raw stored bytes for one representation (what the ONGOING load cost
    /// is proportional to).
    pub fn stored_bytes(&self, id: u64, rep: Representation) -> Option<usize> {
        self.blobs.get(&(id, rep)).map(|b| b.len())
    }

    /// Total bytes across all frames and representations.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Frames ingested.
    pub fn frames(&self) -> u64 {
        self.ingested
    }

    /// Storage amplification vs keeping only the compressed full frame of
    /// `full_frame_bytes` (e.g. the ARCHIVE layout's ~60 KB).
    pub fn amplification_vs(&self, full_frame_bytes: usize) -> f64 {
        if self.ingested == 0 || full_frame_bytes == 0 {
            return 0.0;
        }
        (self.total_bytes as f64 / self.ingested as f64) / full_frame_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::ColorMode;

    fn frame(seed: u64) -> Image {
        Image::from_fn(224, 224, ColorMode::Rgb, |c, y, x| {
            (((c as u64 * 31 + y as u64 * 7 + x as u64 * 3 + seed) % 11) as f32) / 11.0
        })
        .expect("valid dims")
    }

    fn small_reps() -> Vec<Representation> {
        vec![
            Representation::new(30, ColorMode::Gray),
            Representation::new(60, ColorMode::Rgb),
        ]
    }

    #[test]
    fn ingest_then_fetch_roundtrips() {
        let mut store = RepresentationStore::new(small_reps());
        store.ingest(7, &frame(1)).unwrap();
        let rep = Representation::new(30, ColorMode::Gray);
        let img = store.fetch(7, rep).expect("stored").expect("decodes");
        assert_eq!(img.width(), 30);
        assert_eq!(img.mode(), ColorMode::Gray);
        // Stored bytes equal header + one byte per sample.
        assert_eq!(store.stored_bytes(7, rep), Some(13 + 900));
    }

    #[test]
    fn missing_entries_are_none() {
        let mut store = RepresentationStore::new(small_reps());
        store.ingest(1, &frame(2)).unwrap();
        assert!(store.fetch(2, small_reps()[0]).is_none());
        assert!(store
            .fetch(1, Representation::new(120, ColorMode::Red))
            .is_none());
    }

    #[test]
    fn byte_accounting_accumulates() {
        let mut store = RepresentationStore::new(small_reps());
        store.ingest(1, &frame(3)).unwrap();
        let per_frame = store.total_bytes();
        store.ingest(2, &frame(4)).unwrap();
        assert_eq!(store.total_bytes(), per_frame * 2);
        assert_eq!(store.frames(), 2);
        // 30x30 gray (913 B) + 60x60 rgb (10,813 B)
        assert_eq!(per_frame, (13 + 900) + (13 + 60 * 60 * 3));
    }

    #[test]
    fn small_rep_store_is_cheaper_than_archive_frames() {
        // The ONGOING bet: a handful of small representations costs less
        // storage than even one compressed full frame.
        let mut store = RepresentationStore::new(small_reps());
        store.ingest(1, &frame(5)).unwrap();
        let amp = store.amplification_vs(60_000);
        assert!(amp < 0.5, "amplification {amp}");
        // ...but materializing all 20 paper representations is not free.
        let mut all = RepresentationStore::new(Representation::paper_set());
        all.ingest(1, &frame(5)).unwrap();
        assert!(all.amplification_vs(60_000) > amp * 5.0);
    }

    #[test]
    fn ingest_stores_exactly_the_direct_apply_bytes() {
        // The lattice-planned materialization is bitwise identical to the
        // per-representation direct path, so the stored blobs are too.
        let mut store = RepresentationStore::new(Representation::paper_set());
        let f = frame(9);
        store.ingest(3, &f).unwrap();
        for rep in Representation::paper_set() {
            let direct = crate::repr::apply_reference(&f, rep).unwrap();
            let want = RawCodec.encode(&direct);
            let got = store.blobs.get(&(3, rep)).expect("stored");
            assert_eq!(got.as_ref(), want.as_ref(), "{rep}");
        }
    }

    #[test]
    fn ingest_batch_matches_sequential_and_prices_plan() {
        let frames: Vec<Image> = (0..3).map(frame).collect();
        let mut a = RepresentationStore::new(small_reps());
        a.ingest_batch(frames.iter().enumerate().map(|(i, f)| (i as u64, f)))
            .unwrap();
        let mut b = RepresentationStore::new(small_reps());
        for (i, f) in frames.iter().enumerate() {
            b.ingest(i as u64, f).unwrap();
        }
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_eq!(a.frames(), b.frames());
        let (planned, direct) = a
            .planned_ingest_cost_s(&crate::engine::TranscodeCosts::default())
            .expect("shape fixed by ingest");
        assert!(planned <= direct, "planned {planned} > direct {direct}");
        // No plan before any ingest.
        let empty = RepresentationStore::new(small_reps());
        assert!(empty
            .planned_ingest_cost_s(&crate::engine::TranscodeCosts::default())
            .is_none());
    }

    #[test]
    fn pooled_fetch_matches_fresh_decode_and_reuses_buffers() {
        let mut store = RepresentationStore::new(small_reps());
        store.ingest(4, &frame(6)).unwrap();
        store.ingest(5, &frame(7)).unwrap();
        let rep = Representation::new(30, ColorMode::Gray);
        // Pooled decode is value-identical to a fresh decode of the blob.
        let fresh = RawCodec.decode(&store.blobs[&(4, rep)]).unwrap();
        let pooled = store.fetch_into(4, rep).unwrap().unwrap();
        assert_eq!(pooled.data(), fresh.data());
        assert_eq!(pooled.mode(), fresh.mode());
        // Recycled buffer actually comes back: same allocation next fetch.
        let ptr = pooled.data().as_ptr();
        store.recycle([pooled]);
        let again = store.fetch_into(5, rep).unwrap().unwrap();
        assert_eq!(again.data().as_ptr(), ptr, "pooled buffer not reused");
        let direct = RawCodec.decode(&store.blobs[&(5, rep)]).unwrap();
        assert_eq!(again.data(), direct.data());
    }

    #[test]
    #[should_panic]
    fn empty_rep_set_panics() {
        RepresentationStore::new(vec![]);
    }
}

//! Representation store: the ONGOING scenario's ingest-time materialization
//! (paper §III: "video is continually ingested [...] transformed into
//! appropriate representations that are stored on SSD for later queries").
//!
//! On ingest, the store materializes a configured set of representations
//! per frame with the raw codec (one byte per sample, the layout the cost
//! model prices). At query time a model fetches exactly its
//! representation's bytes — no full-frame load, no transform. The store
//! tracks byte totals so storage-amplification tradeoffs (paper §V: how
//! many representations is it worth pre-computing?) are measurable — and,
//! with the persistent tier, *payable*: `tahoma_costmodel::io` prices each
//! lattice node's materialize-vs-transcode-on-demand decision against this
//! store's measured read throughput, which is how a byte budget turns into
//! a concrete representation set for [`RepresentationStore::persistent`].
//!
//! Two storage tiers, one API:
//!
//! * **RAM** ([`RepresentationStore::new`]) — encoded blobs in a hash map,
//!   the fixture/testing layout, and the latency floor the persistent tier
//!   is benchmarked against.
//! * **Persistent** ([`RepresentationStore::persistent`] /
//!   [`RepresentationStore::open`]) — item-id-sharded append-only segment
//!   files with mmap (or pread) read access, crash recovery, and CRC
//!   integrity (see [`crate::segment`]). The corpus no longer has to fit
//!   in RAM, and a process restart [`RepresentationStore::open`]s the
//!   ingested corpus back byte-identically.
//!
//! All reads go through the shared-borrow [`RepresentationStore::fetch`]:
//! the caller supplies the [`TranscodeEngine`] whose buffer pool receives
//! the decode, so many query sessions fetch from one store concurrently,
//! each with its own pool. (The store's own engine is used only at
//! ingest.) Since the continuous-query layer, *writes* share the same
//! borrow: [`RepresentationStore::ingest`] is `&self` and internally
//! synchronized, so live streams ingest through the same `Arc`-shared
//! handle the query sessions fetch from — materialization serializes on
//! the store's engine lock, persistent-tier appends fan out across shard
//! locks, and RAM-tier blobs sit behind one map lock (ranks in
//! `SAFETY.md`).
//!
//! Materialization runs through an owned [`TranscodeEngine`] executing a
//! [`TranscodePlan`] built once per source shape (see [`crate::engine`]):
//! the shared luma plane is computed once per frame, single-channel targets
//! resize straight from the source's planes, and resize span tables are
//! reused across frames — this is the per-frame serving cost of the
//! ONGOING scenario, so it gets the engine's full hot-path treatment.

use crate::codec::{Codec, RawCodec};
use crate::engine::{TranscodeCosts, TranscodeEngine, TranscodePlan};
use crate::error::ImageryError;
use crate::image::Image;
use crate::repr::Representation;
use crate::segment::{AccessMode, RecoveryReport, SegmentStore, RECORD_HEADER_LEN};
use bytes::Bytes;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Store manifest file name (records shard count + representation set so
/// [`RepresentationStore::open`] needs only the directory).
const MANIFEST: &str = "manifest.tsm";
const MANIFEST_HEADER: &str = "tahoma-store v1";

/// Lock a mutex, recovering the data on poison: every blob/plan update is
/// complete before the guard drops, so a panicking peer never leaves a
/// half-written entry behind (same policy as [`crate::segment`]).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// RAM tier: encoded blobs behind one map lock so live streams can ingest
/// through a shared handle while query sessions fetch.
#[derive(Debug, Default)]
struct RamTier {
    // Blob map. Fetches clone the `Bytes` handle (an `Arc` bump) and
    // decode outside the critical section, so the lock is held only for
    // the map probe. Ranked above every serve-layer lock because query
    // threads reach a fetch while holding broker state (see SAFETY.md).
    // LOCK-ORDER: 66
    blobs: Mutex<HashMap<(u64, Representation), Bytes>>,
}

/// Where the encoded blobs live.
#[derive(Debug)]
enum Tier {
    /// Per-process hash map (the fixture layout and the latency floor).
    Ram(RamTier),
    /// Sharded append-only segment files (see [`crate::segment`]).
    Disk(SegmentStore),
}

impl Default for Tier {
    fn default() -> Tier {
        Tier::Ram(RamTier::default())
    }
}

/// Ingest-side state: the store's own transcode engine plus the lattice
/// plans it executes. One lock serializes materialization (the engine's
/// buffer pool is single-threaded scratch); persistent-tier appends then
/// fan out across shard locks (rank 70/71) while this is held.
#[derive(Debug, Default)]
struct IngestState {
    engine: TranscodeEngine,
    /// Lattice plans keyed by source shape — each distinct ingested frame
    /// shape is planned exactly once.
    plans: HashMap<(usize, usize), TranscodePlan>,
    /// Shape of the most recently ingested frame (what
    /// [`RepresentationStore::planned_ingest_cost_s`] prices).
    last_shape: Option<(usize, usize)>,
}

/// Classified result of [`RepresentationStore::fetch_classified`].
#[derive(Debug)]
pub enum Fetched {
    /// Decoded image, in a pooled buffer from the caller's engine.
    Hit(Image),
    /// The record was never ingested — the caller's ordinary fallback
    /// (transcode from a stored source representation) applies.
    Absent,
    /// The record exists but is quarantined — CRC-corrupt, undecodable,
    /// or persistently unreadable after retries. The stored bytes are
    /// never served; callers must fall back to transcode-from-source and
    /// surface the result as degraded (see RELIABILITY.md).
    Quarantined,
}

/// Reliability counters accumulated by the fetch/ingest paths (surfaced
/// through the serve layer's `STATS`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Transient-error retries performed (fetch and ingest).
    pub retries: u64,
    /// Fetches answered `Quarantined` (the caller degraded to a source
    /// transcode instead of the materialized representation).
    pub degraded_fetches: u64,
    /// Records currently quarantined.
    pub quarantined: u64,
}

/// Transient-error retry budget: total attempts per operation (the first
/// try plus bounded retries with jittered backoff).
const MAX_ATTEMPTS: u32 = 4;

/// Deterministic backoff with per-(record, attempt) jitter: exponential
/// base so repeated transients spread out, splitmix-derived jitter so
/// concurrent retriers of different records decorrelate.
fn backoff(id: u64, attempt: u32) {
    let mut z = id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(attempt as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let jitter_us = (z ^ (z >> 31)) % 64;
    let base_us = 32u64 << attempt.min(8);
    std::thread::sleep(std::time::Duration::from_micros(base_us + jitter_us));
}

/// The representation store; see the module docs for the tier layout.
#[derive(Debug, Default)]
pub struct RepresentationStore {
    reps: Vec<Representation>,
    tier: Tier,
    total_bytes: AtomicUsize,
    ingested: AtomicU64,
    // LOCK-ORDER: 65 — ingest-side engine + plans; held across the
    // materialize + append of one frame, below the blob map (66) and the
    // shard locks (70/71), never while any serve-layer lock is wanted.
    ingest_state: Mutex<IngestState>,
    // Quarantined (id, rep) keys: records whose stored bytes must never
    // be served again. Guarded by a length fast path so the fault-free
    // fetch path pays one relaxed load, no lock.
    // LOCK-ORDER: 67 — taken during fetch/verify only, after the blob map
    // (66) is released and before any shard lock (70/71) is wanted.
    quarantine: Mutex<HashSet<(u64, Representation)>>,
    quarantine_len: AtomicUsize,
    retries: AtomicU64,
    degraded_fetches: AtomicU64,
}

impl RepresentationStore {
    /// Create a RAM-tier store that materializes the given representations
    /// on ingest. Panics on an empty set.
    pub fn new(reps: Vec<Representation>) -> RepresentationStore {
        assert!(!reps.is_empty(), "store needs at least one representation");
        RepresentationStore {
            reps,
            ..RepresentationStore::default()
        }
    }

    /// Create a persistent store under `dir` with `shards` segment files
    /// (existing segment data is truncated) using the platform-default
    /// access mode. The manifest written alongside lets
    /// [`RepresentationStore::open`] reconstruct the configuration.
    pub fn persistent(
        reps: Vec<Representation>,
        dir: &Path,
        shards: usize,
    ) -> Result<RepresentationStore, ImageryError> {
        Self::persistent_with_mode(reps, dir, shards, AccessMode::auto())
    }

    /// [`RepresentationStore::persistent`] with an explicit access mode
    /// (benches pin `Mmap` vs `Pread` to measure both read paths).
    pub fn persistent_with_mode(
        reps: Vec<Representation>,
        dir: &Path,
        shards: usize,
        mode: AccessMode,
    ) -> Result<RepresentationStore, ImageryError> {
        assert!(!reps.is_empty(), "store needs at least one representation");
        let seg = SegmentStore::create(dir, shards, mode)?;
        write_manifest(dir, shards, &reps)?;
        Ok(RepresentationStore {
            reps,
            tier: Tier::Disk(seg),
            ..RepresentationStore::default()
        })
    }

    /// Reopen a persistent store from its directory, recovering each shard
    /// to its last complete record (see [`crate::segment`]). Frame and
    /// byte accounting are rebuilt from the recovered indexes.
    pub fn open(dir: &Path) -> Result<(RepresentationStore, RecoveryReport), ImageryError> {
        Self::open_with_mode(dir, AccessMode::auto())
    }

    /// [`RepresentationStore::open`] with an explicit access mode.
    pub fn open_with_mode(
        dir: &Path,
        mode: AccessMode,
    ) -> Result<(RepresentationStore, RecoveryReport), ImageryError> {
        let (shards, reps) = read_manifest(dir)?;
        let (seg, report) = SegmentStore::open(dir, shards, mode)?;
        let ingested = seg.distinct_ids();
        let total_bytes =
            (seg.committed_bytes() - seg.records() * RECORD_HEADER_LEN as u64) as usize;
        Ok((
            RepresentationStore {
                reps,
                tier: Tier::Disk(seg),
                total_bytes: AtomicUsize::new(total_bytes),
                ingested: AtomicU64::new(ingested),
                ..RepresentationStore::default()
            },
            report,
        ))
    }

    /// The representations materialized per frame.
    pub fn representations(&self) -> &[Representation] {
        &self.reps
    }

    /// Ingest one full-resolution RGB frame: produce and encode every
    /// configured representation through the engine's lattice plan (shared
    /// luma, borrowed planes, cached resize tables — no per-frame setup).
    ///
    /// Takes `&self`: the ingest path is internally synchronized so live
    /// streams can feed a store that query sessions are concurrently
    /// fetching from (the serve layer shares one store behind an `Arc`).
    /// Materialization serializes on the store's engine; persistent-tier
    /// appends touch only the shards owning this id.
    pub fn ingest(&self, id: u64, full: &Image) -> Result<(), ImageryError> {
        // FAULT: transient ingest fault upstream of any state change, so
        // the caller's retry re-runs the whole frame cleanly.
        if let Some(e) = tahoma_faults::transient_io(tahoma_faults::site::STORE_INGEST) {
            return Err(e.into());
        }
        let shape = (full.width(), full.height());
        let mut st = lock(&self.ingest_state);
        let st = &mut *st;
        let reps = &self.reps;
        let plan = st.plans.entry(shape).or_insert_with(|| {
            TranscodePlan::new(shape.0, shape.1, reps, &TranscodeCosts::default())
        });
        st.last_shape = Some(shape);
        // Snap the frame to the storage quantizer's u8 grid before any
        // derivation: every stored representation is then a function of
        // exactly what the stored source decodes back to, which is what
        // makes `rederive` (the quarantine degradation rung) bitwise
        // exact (RELIABILITY.md).
        let mut full_q = full.clone();
        crate::codec::quantize_roundtrip(&mut full_q);
        let materialized = st.engine.apply_planned(&full_q, plan)?;
        st.engine.recycle([full_q]);
        let mut added = 0usize;
        for (&rep, image) in self.reps.iter().zip(&materialized) {
            let bytes = RawCodec.encode(image);
            added += bytes.len();
            match &self.tier {
                Tier::Ram(ram) => {
                    lock(&ram.blobs).insert((id, rep), bytes);
                }
                // Bounded retry on transient append errors; re-appending a
                // key is idempotent at the index (last record wins), so a
                // retried write can never serve torn bytes.
                Tier::Disk(seg) => {
                    let mut attempt = 0;
                    loop {
                        match seg.append(id, rep, &bytes) {
                            Ok(()) => break,
                            Err(e) => {
                                let e: ImageryError = e.into();
                                attempt += 1;
                                if !e.is_transient() || attempt >= MAX_ATTEMPTS {
                                    return Err(e);
                                }
                                self.retries.fetch_add(1, Ordering::Relaxed);
                                backoff(id, attempt);
                            }
                        }
                    }
                }
            }
        }
        // Only the encoded bytes are kept; the pixel buffers feed the next
        // frame's materialization instead of the allocator.
        st.engine.recycle(materialized);
        self.total_bytes.fetch_add(added, Ordering::Relaxed);
        self.ingested.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Re-derive one configured representation from a caller-supplied
    /// full-resolution frame by replaying the *same lattice plan* ingest
    /// ran — the recovered pixels are bitwise identical to the stored
    /// record they stand in for (multi-hop plans route through
    /// intermediate representations, so a direct source→rep transcode
    /// would NOT reproduce them). This is the quarantine degradation
    /// rung's compute half: fetch the pinned source, re-derive the input
    /// (RELIABILITY.md).
    ///
    /// A representation the store never materialized has no stored record
    /// to reproduce, so it is transcoded directly — the on-the-fly path
    /// executors use for reps outside the configured set.
    pub fn rederive(&self, full: &Image, rep: Representation) -> Result<Image, ImageryError> {
        let Some(idx) = self.reps.iter().position(|&r| r == rep) else {
            return lock(&self.ingest_state).engine.apply(full, rep);
        };
        let shape = (full.width(), full.height());
        let mut st = lock(&self.ingest_state);
        let st = &mut *st;
        let reps = &self.reps;
        let plan = st.plans.entry(shape).or_insert_with(|| {
            TranscodePlan::new(shape.0, shape.1, reps, &TranscodeCosts::default())
        });
        let mut materialized = st.engine.apply_planned(full, plan)?;
        let mut out = materialized.swap_remove(idx);
        st.engine.recycle(materialized);
        // A normal fetch serves *decoded* pixels (the stored u8 grid), so
        // the stand-in must land on that grid too, not on the
        // full-precision derivation.
        crate::codec::quantize_roundtrip(&mut out);
        Ok(out)
    }

    /// Ingest a batch of frames. Equivalent to calling
    /// [`RepresentationStore::ingest`] per frame (one plan and one engine
    /// scratch serve the whole batch either way).
    pub fn ingest_batch<'a>(
        &self,
        frames: impl IntoIterator<Item = (u64, &'a Image)>,
    ) -> Result<(), ImageryError> {
        for (id, frame) in frames {
            self.ingest(id, frame)?;
        }
        Ok(())
    }

    /// The cost-model price of one frame's planned materialization under
    /// the given per-unit costs, next to what the naive per-representation
    /// loop would pay. Priced for the most recently ingested frame shape;
    /// `None` before the first ingest fixes one.
    pub fn planned_ingest_cost_s(&self, costs: &TranscodeCosts) -> Option<(f64, f64)> {
        let (w, h) = lock(&self.ingest_state).last_shape?;
        let priced = TranscodePlan::new(w, h, &self.reps, costs);
        Some((priced.planned_cost_s(), priced.direct_cost_s()))
    }

    /// Fetch one stored representation, decoding it into a buffer from the
    /// caller's engine pool — the single read path for both tiers. The
    /// store is only borrowed shared, so any number of query sessions
    /// fetch concurrently, each with its own [`TranscodeEngine`] (and thus
    /// its own buffer pool); hand decoded images back to *that* engine's
    /// [`TranscodeEngine::recycle`] and steady-state fetching allocates
    /// nothing. `None` when the frame or representation was never ingested
    /// *or* the record is quarantined — callers that need to distinguish
    /// (and count degradation) use [`RepresentationStore::fetch_classified`].
    pub fn fetch(
        &self,
        id: u64,
        rep: Representation,
        engine: &mut TranscodeEngine,
    ) -> Option<Result<Image, ImageryError>> {
        match self.fetch_classified(id, rep, engine) {
            Fetched::Hit(img) => Some(Ok(img)),
            Fetched::Absent | Fetched::Quarantined => None,
        }
    }

    /// [`RepresentationStore::fetch`] with the miss classified: transient
    /// read errors are retried with bounded jittered backoff; a record
    /// that stays unreadable — or whose bytes are corrupt/undecodable —
    /// is quarantined and reported [`Fetched::Quarantined`] so the caller
    /// degrades to transcode-from-source instead of failing (the
    /// degradation ladder, RELIABILITY.md).
    pub fn fetch_classified(
        &self,
        id: u64,
        rep: Representation,
        engine: &mut TranscodeEngine,
    ) -> Fetched {
        if self.is_quarantined(id, rep) {
            self.degraded_fetches.fetch_add(1, Ordering::Relaxed);
            return Fetched::Quarantined;
        }
        let mut attempt = 0;
        loop {
            // FAULT: transient fetch fault above the tier dispatch (both
            // tiers; the segment layer injects its own below).
            let fetched = match tahoma_faults::transient_io(tahoma_faults::site::STORE_FETCH) {
                Some(e) => Some(Err(e.into())),
                None => self.tier_fetch(id, rep, engine),
            };
            match fetched {
                None => return Fetched::Absent,
                Some(Ok(img)) => return Fetched::Hit(img),
                Some(Err(e)) => {
                    attempt += 1;
                    if e.is_transient() && attempt < MAX_ATTEMPTS {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        backoff(id, attempt);
                        continue;
                    }
                    // Permanent (corrupt/undecodable) or retries exhausted:
                    // never serve these bytes again.
                    self.quarantine_record(id, rep);
                    self.degraded_fetches.fetch_add(1, Ordering::Relaxed);
                    return Fetched::Quarantined;
                }
            }
        }
    }

    /// Fetch a record that must not be reclassified on failure — the
    /// transcode *source* that quarantined model inputs degrade to.
    /// Quarantining here would convert a transient fault into permanent
    /// data loss (the source is the bottom rung of the degradation
    /// ladder), so this path retries twice as hard, retries *every* error
    /// class (under fault pressure even a CRC mismatch can be a one-off
    /// torn read), never quarantines, and surfaces the last error to the
    /// caller instead of hiding it behind [`Fetched::Quarantined`].
    pub fn fetch_pinned(
        &self,
        id: u64,
        rep: Representation,
        engine: &mut TranscodeEngine,
    ) -> Option<Result<Image, ImageryError>> {
        let mut attempt = 0;
        loop {
            // FAULT: same above-tier injection as `fetch_classified`, so
            // pinned reads face the same schedule pressure as normal ones.
            let fetched = match tahoma_faults::transient_io(tahoma_faults::site::STORE_FETCH) {
                Some(e) => Some(Err(e.into())),
                None => self.tier_fetch(id, rep, engine),
            };
            match fetched {
                None => return None,
                Some(Ok(img)) => return Some(Ok(img)),
                Some(Err(e)) => {
                    attempt += 1;
                    if attempt < 2 * MAX_ATTEMPTS {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        backoff(id, attempt);
                        continue;
                    }
                    return Some(Err(e));
                }
            }
        }
    }

    /// One read attempt against the backing tier (no retry, no
    /// quarantine).
    fn tier_fetch(
        &self,
        id: u64,
        rep: Representation,
        engine: &mut TranscodeEngine,
    ) -> Option<Result<Image, ImageryError>> {
        match &self.tier {
            Tier::Ram(ram) => {
                // Clone the Arc-backed handle so the decode runs outside
                // the map lock.
                let blob = lock(&ram.blobs).get(&(id, rep)).cloned()?;
                let buf = engine.take_buffer(rep.value_count());
                Some(RawCodec.decode_into(&blob, buf))
            }
            Tier::Disk(seg) => {
                // The engine's byte scratch serves the pread path; in mmap
                // mode the decode reads straight out of the page cache.
                let mut io_buf = engine.take_io_buf();
                let fetched = seg.with_payload(id, rep, &mut io_buf, |blob| {
                    let buf = engine.take_buffer(rep.value_count());
                    RawCodec.decode_into(blob, buf)
                });
                engine.put_io_buf(io_buf);
                match fetched {
                    Ok(decoded) => decoded,
                    Err(e) => Some(Err(e.into())),
                }
            }
        }
    }

    /// Quarantine one record: its stored bytes are never served again;
    /// fetches answer [`Fetched::Quarantined`] and callers fall back to
    /// transcode-from-source.
    pub fn quarantine_record(&self, id: u64, rep: Representation) {
        let mut q = lock(&self.quarantine);
        if q.insert((id, rep)) {
            self.quarantine_len.store(q.len(), Ordering::Relaxed);
        }
    }

    /// Whether a record is quarantined. One relaxed load when the
    /// quarantine set is empty (the fault-free hot path).
    pub fn is_quarantined(&self, id: u64, rep: Representation) -> bool {
        self.quarantine_len.load(Ordering::Relaxed) > 0
            && lock(&self.quarantine).contains(&(id, rep))
    }

    /// Reliability counters (retries, degraded fetches, quarantine size).
    pub fn reliability_stats(&self) -> ReliabilityStats {
        ReliabilityStats {
            retries: self.retries.load(Ordering::Relaxed),
            degraded_fetches: self.degraded_fetches.load(Ordering::Relaxed),
            quarantined: self.quarantine_len.load(Ordering::Relaxed) as u64,
        }
    }

    /// Run `f` over one stored representation's encoded bytes without
    /// decoding — the byte-identity surface the persistence tests and the
    /// smoke verifier compare tiers through. `Ok(None)` when the record
    /// was never ingested.
    pub fn with_blob<R>(
        &self,
        id: u64,
        rep: Representation,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<Option<R>, ImageryError> {
        match &self.tier {
            Tier::Ram(ram) => Ok(lock(&ram.blobs).get(&(id, rep)).cloned().map(|b| f(&b))),
            Tier::Disk(seg) => {
                let mut scratch = Vec::new();
                Ok(seg.with_payload(id, rep, &mut scratch, f)?)
            }
        }
    }

    /// Raw stored bytes for one representation (what the ONGOING load cost
    /// is proportional to).
    pub fn stored_bytes(&self, id: u64, rep: Representation) -> Option<usize> {
        match &self.tier {
            Tier::Ram(ram) => lock(&ram.blobs).get(&(id, rep)).map(|b| b.len()),
            Tier::Disk(seg) => seg.payload_len(id, rep),
        }
    }

    /// Total bytes across all frames and representations (encoded payload
    /// bytes; the persistent tier's per-record framing overhead is not
    /// counted, so the figure is tier-independent).
    pub fn total_bytes(&self) -> usize {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Frames ingested.
    pub fn frames(&self) -> u64 {
        self.ingested.load(Ordering::Relaxed)
    }

    /// Storage amplification vs keeping only the compressed full frame of
    /// `full_frame_bytes` (e.g. the ARCHIVE layout's ~60 KB).
    pub fn amplification_vs(&self, full_frame_bytes: usize) -> f64 {
        let frames = self.frames();
        if frames == 0 || full_frame_bytes == 0 {
            return 0.0;
        }
        (self.total_bytes() as f64 / frames as f64) / full_frame_bytes as f64
    }

    /// True when backed by segment files.
    pub fn is_persistent(&self) -> bool {
        matches!(self.tier, Tier::Disk(_))
    }

    /// The persistent tier's directory, if any.
    pub fn storage_dir(&self) -> Option<&Path> {
        match &self.tier {
            Tier::Ram(_) => None,
            Tier::Disk(seg) => Some(seg.dir()),
        }
    }

    /// The persistent tier's segment store, if any (bench/diagnostic
    /// surface).
    pub fn segments(&self) -> Option<&SegmentStore> {
        match &self.tier {
            Tier::Ram(_) => None,
            Tier::Disk(seg) => Some(seg),
        }
    }

    /// Persistent tier: truncate preallocation and flush shard files (see
    /// [`SegmentStore::sync`]). No-op for the RAM tier.
    pub fn sync(&self) -> Result<(), ImageryError> {
        match &self.tier {
            Tier::Ram(_) => Ok(()),
            Tier::Disk(seg) => Ok(seg.sync()?),
        }
    }

    /// Deep integrity check: re-scan and CRC-verify every persistent
    /// record against the live index ([`SegmentStore::verify_all`]);
    /// counts blobs for the RAM tier. Returns the number of verified
    /// records.
    pub fn verify(&self) -> Result<u64, ImageryError> {
        match &self.tier {
            Tier::Ram(ram) => Ok(lock(&ram.blobs).len() as u64),
            Tier::Disk(seg) => Ok(seg.verify_all()?),
        }
    }

    /// Startup integrity sweep (serve's `--verify-on-open`): CRC-verify
    /// every persistent record and *quarantine* the unverifiable ones
    /// instead of failing — fetches of a quarantined record degrade to
    /// transcode-from-source. Returns `(verified, quarantined)` record
    /// counts. No-op `(blobs, 0)` for the RAM tier.
    pub fn verify_and_quarantine(&self) -> Result<(u64, usize), ImageryError> {
        match &self.tier {
            Tier::Ram(ram) => Ok((lock(&ram.blobs).len() as u64, 0)),
            Tier::Disk(seg) => {
                let bad = seg.unverifiable_records()?;
                for &(id, rep) in &bad {
                    self.quarantine_record(id, rep);
                }
                Ok((seg.records() - bad.len() as u64, bad.len()))
            }
        }
    }
}

fn write_manifest(dir: &Path, shards: usize, reps: &[Representation]) -> Result<(), ImageryError> {
    let tags: Vec<String> = reps.iter().map(|r| r.tag()).collect();
    let body = format!(
        "{MANIFEST_HEADER}\nshards={shards}\nreps={}\n",
        tags.join(",")
    );
    fs::write(manifest_path(dir), body)?;
    Ok(())
}

fn read_manifest(dir: &Path) -> Result<(usize, Vec<Representation>), ImageryError> {
    let path = manifest_path(dir);
    let body = fs::read_to_string(&path)?;
    let mut shards = None;
    let mut reps = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if i == 0 {
            if line.trim() != MANIFEST_HEADER {
                return Err(ImageryError::Decode(format!(
                    "{}: not a store manifest",
                    path.display()
                )));
            }
            continue;
        }
        if let Some(v) = line.strip_prefix("shards=") {
            shards = v.trim().parse::<usize>().ok();
        } else if let Some(v) = line.strip_prefix("reps=") {
            for tag in v.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                let rep = Representation::from_tag(tag).ok_or_else(|| {
                    ImageryError::Decode(format!("manifest rep tag `{tag}` unparseable"))
                })?;
                reps.push(rep);
            }
        }
    }
    let shards = shards.filter(|&s| s >= 1).ok_or_else(|| {
        ImageryError::Decode(format!("{}: missing/invalid shards=", path.display()))
    })?;
    if reps.is_empty() {
        return Err(ImageryError::Decode(format!(
            "{}: missing/empty reps=",
            path.display()
        )));
    }
    Ok((shards, reps))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::ColorMode;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn frame(seed: u64) -> Image {
        Image::from_fn(224, 224, ColorMode::Rgb, |c, y, x| {
            (((c as u64 * 31 + y as u64 * 7 + x as u64 * 3 + seed) % 11) as f32) / 11.0
        })
        .expect("valid dims")
    }

    fn small_reps() -> Vec<Representation> {
        vec![
            Representation::new(30, ColorMode::Gray),
            Representation::new(60, ColorMode::Rgb),
        ]
    }

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tahoma-store-{tag}-{}-{seq}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn fetch_one(store: &RepresentationStore, id: u64, rep: Representation) -> Option<Image> {
        let mut engine = TranscodeEngine::new();
        store
            .fetch(id, rep, &mut engine)
            .map(|r| r.expect("decodes"))
    }

    #[test]
    fn rederive_from_stored_source_is_bitwise_identical() {
        // The degradation contract: a quarantined model input re-derived
        // from the stored source rep must reproduce the stored bytes
        // exactly. Source rep matches the ingested frame shape (the serve
        // fixture's layout).
        let src_rep = Representation::new(224, ColorMode::Rgb);
        let mut reps = small_reps();
        reps.push(src_rep);
        let store = RepresentationStore::new(reps.clone());
        store.ingest(7, &frame(3)).unwrap();
        let src = fetch_one(&store, 7, src_rep).expect("stored source");
        for rep in [reps[0], reps[1]] {
            let derived = store.rederive(&src, rep).expect("rederives");
            let derived_bytes = RawCodec.encode(&derived);
            let stored = store
                .with_blob(7, rep, |b| b.to_vec())
                .expect("readable")
                .expect("stored");
            assert_eq!(&derived_bytes[..], &stored[..], "rederive({rep}) diverged");
        }
    }

    #[test]
    fn ingest_then_fetch_roundtrips() {
        let store = RepresentationStore::new(small_reps());
        store.ingest(7, &frame(1)).unwrap();
        let rep = Representation::new(30, ColorMode::Gray);
        let img = fetch_one(&store, 7, rep).expect("stored");
        assert_eq!(img.width(), 30);
        assert_eq!(img.mode(), ColorMode::Gray);
        // Stored bytes equal header + one byte per sample.
        assert_eq!(store.stored_bytes(7, rep), Some(13 + 900));
    }

    #[test]
    fn missing_entries_are_none() {
        let store = RepresentationStore::new(small_reps());
        store.ingest(1, &frame(2)).unwrap();
        assert!(fetch_one(&store, 2, small_reps()[0]).is_none());
        assert!(fetch_one(&store, 1, Representation::new(120, ColorMode::Red)).is_none());
    }

    #[test]
    fn byte_accounting_accumulates() {
        let store = RepresentationStore::new(small_reps());
        store.ingest(1, &frame(3)).unwrap();
        let per_frame = store.total_bytes();
        store.ingest(2, &frame(4)).unwrap();
        assert_eq!(store.total_bytes(), per_frame * 2);
        assert_eq!(store.frames(), 2);
        // 30x30 gray (913 B) + 60x60 rgb (10,813 B)
        assert_eq!(per_frame, (13 + 900) + (13 + 60 * 60 * 3));
    }

    #[test]
    fn small_rep_store_is_cheaper_than_archive_frames() {
        // The ONGOING bet: a handful of small representations costs less
        // storage than even one compressed full frame.
        let store = RepresentationStore::new(small_reps());
        store.ingest(1, &frame(5)).unwrap();
        let amp = store.amplification_vs(60_000);
        assert!(amp < 0.5, "amplification {amp}");
        // ...but materializing all 20 paper representations is not free.
        let all = RepresentationStore::new(Representation::paper_set());
        all.ingest(1, &frame(5)).unwrap();
        assert!(all.amplification_vs(60_000) > amp * 5.0);
    }

    #[test]
    fn ingest_stores_exactly_the_direct_apply_bytes() {
        // The lattice-planned materialization is bitwise identical to the
        // per-representation direct path, so the stored blobs are too.
        let store = RepresentationStore::new(Representation::paper_set());
        let f = frame(9);
        store.ingest(3, &f).unwrap();
        // Ingest snaps the frame to the storage quantizer's grid first
        // (the rederive exactness guarantee); mirror it for the reference.
        let mut f_q = f.clone();
        crate::codec::quantize_roundtrip(&mut f_q);
        for rep in Representation::paper_set() {
            let direct = crate::repr::apply_reference(&f_q, rep).unwrap();
            let want = RawCodec.encode(&direct);
            let same = store
                .with_blob(3, rep, |got| got == want.as_ref())
                .unwrap()
                .expect("stored");
            assert!(same, "{rep}");
        }
    }

    #[test]
    fn ingest_batch_matches_sequential_and_prices_plan() {
        let frames: Vec<Image> = (0..3).map(frame).collect();
        let a = RepresentationStore::new(small_reps());
        a.ingest_batch(frames.iter().enumerate().map(|(i, f)| (i as u64, f)))
            .unwrap();
        let b = RepresentationStore::new(small_reps());
        for (i, f) in frames.iter().enumerate() {
            b.ingest(i as u64, f).unwrap();
        }
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_eq!(a.frames(), b.frames());
        let (planned, direct) = a
            .planned_ingest_cost_s(&crate::engine::TranscodeCosts::default())
            .expect("shape fixed by ingest");
        assert!(planned <= direct, "planned {planned} > direct {direct}");
        // No plan before any ingest.
        let empty = RepresentationStore::new(small_reps());
        assert!(empty
            .planned_ingest_cost_s(&crate::engine::TranscodeCosts::default())
            .is_none());
    }

    #[test]
    fn pooled_fetch_matches_fresh_decode_and_reuses_buffers() {
        let store = RepresentationStore::new(small_reps());
        store.ingest(4, &frame(6)).unwrap();
        store.ingest(5, &frame(7)).unwrap();
        let rep = Representation::new(30, ColorMode::Gray);
        let mut engine = TranscodeEngine::new();
        // Pooled decode is value-identical to a fresh decode of the blob.
        let fresh = store
            .with_blob(4, rep, |b| RawCodec.decode(b).unwrap())
            .unwrap()
            .expect("stored");
        let pooled = store.fetch(4, rep, &mut engine).unwrap().unwrap();
        assert_eq!(pooled.data(), fresh.data());
        assert_eq!(pooled.mode(), fresh.mode());
        // Recycled buffer actually comes back: same allocation next fetch.
        let ptr = pooled.data().as_ptr();
        engine.recycle([pooled]);
        let again = store.fetch(5, rep, &mut engine).unwrap().unwrap();
        assert_eq!(again.data().as_ptr(), ptr, "pooled buffer not reused");
        let direct = store
            .with_blob(5, rep, |b| RawCodec.decode(b).unwrap())
            .unwrap()
            .expect("stored");
        assert_eq!(again.data(), direct.data());
    }

    #[test]
    fn persistent_tier_is_byte_identical_to_ram() {
        let dir = tmp_dir("identity");
        let ram = RepresentationStore::new(small_reps());
        let disk = RepresentationStore::persistent(small_reps(), &dir, 3).expect("persistent");
        assert!(disk.is_persistent() && !ram.is_persistent());
        for id in 0..12u64 {
            let f = frame(id);
            ram.ingest(id, &f).unwrap();
            disk.ingest(id, &f).unwrap();
        }
        assert_eq!(ram.total_bytes(), disk.total_bytes());
        let mut engine = TranscodeEngine::new();
        for id in 0..12u64 {
            for &rep in ram.representations() {
                let a = ram.with_blob(id, rep, |b| b.to_vec()).unwrap().unwrap();
                let b = disk.with_blob(id, rep, |b| b.to_vec()).unwrap().unwrap();
                assert_eq!(a, b, "blob mismatch id {id} rep {rep}");
                let ia = ram.fetch(id, rep, &mut engine).unwrap().unwrap();
                let ib = disk.fetch(id, rep, &mut engine).unwrap().unwrap();
                assert_eq!(ia.data(), ib.data(), "decode mismatch id {id} rep {rep}");
                engine.recycle([ia, ib]);
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_store_reopens_byte_identically() {
        let dir = tmp_dir("reopen");
        let mut blobs = Vec::new();
        {
            let store = RepresentationStore::persistent(small_reps(), &dir, 2).expect("persistent");
            for id in 0..8u64 {
                store.ingest(id, &frame(id + 100)).unwrap();
            }
            store.sync().expect("sync");
            for id in 0..8u64 {
                for &rep in small_reps().iter() {
                    blobs.push(store.with_blob(id, rep, |b| b.to_vec()).unwrap().unwrap());
                }
            }
            // Process "drops" here.
        }
        let (store, report) = RepresentationStore::open(&dir).expect("open");
        assert_eq!(report.records, 16);
        assert_eq!(store.frames(), 8);
        assert_eq!(store.representations(), small_reps().as_slice());
        let mut it = blobs.iter();
        for id in 0..8u64 {
            for &rep in small_reps().iter() {
                let got = store.with_blob(id, rep, |b| b.to_vec()).unwrap().unwrap();
                assert_eq!(&got, it.next().unwrap(), "id {id} rep {rep}");
            }
        }
        assert_eq!(store.verify().expect("verify"), 16);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_garbage_manifest() {
        let dir = tmp_dir("badmanifest");
        fs::write(dir.join("manifest.tsm"), "not a manifest\n").unwrap();
        assert!(RepresentationStore::open(&dir).is_err());
        fs::write(
            dir.join("manifest.tsm"),
            "tahoma-store v1\nshards=0\nreps=30x30-gray\n",
        )
        .unwrap();
        assert!(RepresentationStore::open(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_ingest_while_fetching_matches_serial() {
        // The continuous-query contract: writers ingest through `&self`
        // while readers fetch, and the end state is byte-identical to a
        // serial ingest of the same frames.
        let store = std::sync::Arc::new(RepresentationStore::new(small_reps()));
        let serial = RepresentationStore::new(small_reps());
        for id in 0..24u64 {
            serial.ingest(id, &frame(id)).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let store = std::sync::Arc::clone(&store);
                s.spawn(move || {
                    for id in (t * 8)..(t * 8 + 8) {
                        store.ingest(id, &frame(id)).unwrap();
                    }
                });
            }
            // A reader hammers fetch concurrently; every hit must decode.
            let reader = std::sync::Arc::clone(&store);
            s.spawn(move || {
                let mut engine = TranscodeEngine::new();
                let rep = small_reps()[0];
                for id in (0..24u64).cycle().take(2000) {
                    if let Some(r) = reader.fetch(id, rep, &mut engine) {
                        let img = r.expect("decodes");
                        engine.recycle([img]);
                    }
                }
            });
        });
        assert_eq!(store.frames(), 24);
        assert_eq!(store.total_bytes(), serial.total_bytes());
        for id in 0..24u64 {
            for &rep in serial.representations() {
                let a = serial.with_blob(id, rep, |b| b.to_vec()).unwrap().unwrap();
                let b = store.with_blob(id, rep, |b| b.to_vec()).unwrap().unwrap();
                assert_eq!(a, b, "blob mismatch id {id} rep {rep}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_rep_set_panics() {
        RepresentationStore::new(vec![]);
    }
}

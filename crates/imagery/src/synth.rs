//! Synthetic planted-object corpus: the reproduction's stand-in for
//! ImageNet categories and web-scraped evaluation images (DESIGN.md §2).
//!
//! Each of the paper's ten Table II categories is mapped to a distinct
//! geometric glyph with its own color signature. A positive example renders
//! the glyph at a random position/scale/rotation/contrast over a cluttered,
//! noisy background; a negative example renders the same background and
//! clutter without the target. The renderer reports a per-image *difficulty*
//! in `[0, 1]` (small scale, low contrast, heavy clutter, heavy noise are
//! hard) which the surrogate classifier family and the real CNN path both
//! inherit, so hard images are hard for every model — the property that
//! makes cascade early-exit behave realistically.

use crate::color::ColorMode;
use crate::image::Image;
use std::fmt;
use tahoma_mathx::DetRng;

/// The ten object categories (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectKind {
    Acorn,
    Amphibian,
    Cloak,
    Coho,
    Fence,
    Ferret,
    Komondor,
    Pinwheel,
    Scorpion,
    Wallet,
}

impl ObjectKind {
    /// All ten kinds in Table II order.
    pub const ALL: [ObjectKind; 10] = [
        ObjectKind::Acorn,
        ObjectKind::Amphibian,
        ObjectKind::Cloak,
        ObjectKind::Coho,
        ObjectKind::Fence,
        ObjectKind::Ferret,
        ObjectKind::Komondor,
        ObjectKind::Pinwheel,
        ObjectKind::Scorpion,
        ObjectKind::Wallet,
    ];

    /// Lowercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ObjectKind::Acorn => "acorn",
            ObjectKind::Amphibian => "amphibian",
            ObjectKind::Cloak => "cloak",
            ObjectKind::Coho => "coho",
            ObjectKind::Fence => "fence",
            ObjectKind::Ferret => "ferret",
            ObjectKind::Komondor => "komondor",
            ObjectKind::Pinwheel => "pinwheel",
            ObjectKind::Scorpion => "scorpion",
            ObjectKind::Wallet => "wallet",
        }
    }

    /// ImageNet synset id (paper Table II), kept for provenance.
    pub fn imagenet_id(self) -> &'static str {
        match self {
            ObjectKind::Acorn => "n12267677",
            ObjectKind::Amphibian => "n02704792",
            ObjectKind::Cloak => "n03045698",
            ObjectKind::Coho => "n02536864",
            ObjectKind::Fence => "n03930313",
            ObjectKind::Ferret => "n02443484",
            ObjectKind::Komondor => "n02105505",
            ObjectKind::Pinwheel => "n03944341",
            ObjectKind::Scorpion => "n01770393",
            ObjectKind::Wallet => "n04548362",
        }
    }

    /// Parse by lowercase name.
    pub fn from_name(name: &str) -> Option<ObjectKind> {
        ObjectKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Stable small integer for seed derivation.
    pub fn index(self) -> usize {
        ObjectKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind in ALL")
    }

    /// RGB color signature of the glyph (distinct hues so that single-channel
    /// representations carry kind-dependent information).
    fn color(self) -> [f32; 3] {
        match self {
            ObjectKind::Acorn => [0.55, 0.35, 0.12],
            ObjectKind::Amphibian => [0.20, 0.60, 0.25],
            ObjectKind::Cloak => [0.35, 0.15, 0.45],
            ObjectKind::Coho => [0.75, 0.40, 0.35],
            ObjectKind::Fence => [0.60, 0.55, 0.45],
            ObjectKind::Ferret => [0.70, 0.62, 0.50],
            ObjectKind::Komondor => [0.85, 0.83, 0.78],
            ObjectKind::Pinwheel => [0.80, 0.25, 0.55],
            ObjectKind::Scorpion => [0.45, 0.30, 0.15],
            ObjectKind::Wallet => [0.30, 0.22, 0.16],
        }
    }

    /// Membership test for the glyph in object-local coordinates
    /// (`u`, `v` in [-1, 1]); `wobble` adds per-instance shape irregularity.
    fn contains(self, u: f32, v: f32, wobble: f32) -> bool {
        let r2 = u * u + v * v;
        match self {
            ObjectKind::Acorn => {
                // Ellipse body with a triangular cap on top.
                let body = (u * u) / 0.45 + ((v - 0.2) * (v - 0.2)) / 0.55 < 1.0 && v > -0.2;
                let cap = v <= -0.1 && v > -0.75 && u.abs() < 0.55 * (1.0 + (v + 0.1) / 0.65);
                body || cap
            }
            ObjectKind::Amphibian => {
                // Blob body plus four stubby legs.
                let body = (u * u) / 0.7 + (v * v) / 0.35 < 1.0;
                let leg = |cx: f32, cy: f32| (u - cx).abs() < 0.12 && (v - cy).abs() < 0.35;
                body || leg(-0.55, 0.45) || leg(0.55, 0.45) || leg(-0.55, -0.45) || leg(0.55, -0.45)
            }
            ObjectKind::Cloak => {
                // Trapezoid widening downward with a neck notch.
                let half_w = 0.25 + 0.6 * (v + 1.0) / 2.0;
                v > -0.9 && v < 0.9 && u.abs() < half_w && !(v < -0.55 && u.abs() < 0.12)
            }
            ObjectKind::Coho => {
                // Fish: ellipse body + tail triangle.
                let body = (u * u) / 0.55 + (v * v) / 0.18 < 1.0;
                let tail = u > 0.55 && u < 0.95 && v.abs() < (u - 0.55) * 0.9;
                body || tail
            }
            ObjectKind::Fence => {
                // Vertical pickets and two horizontal rails.
                let picket = ((u + 1.0) * 2.5 + wobble).fract().abs() < 0.4 && v.abs() < 0.9;
                let rail = (v - 0.35).abs() < 0.08 || (v + 0.35).abs() < 0.08;
                (picket || (rail && u.abs() < 1.0)) && r2 < 1.6
            }
            ObjectKind::Ferret => {
                // Long low ellipse with a head bump.
                let body = (u * u) / 0.85 + (v * v) / 0.12 < 1.0;
                let head = ((u + 0.8) * (u + 0.8)) / 0.08 + ((v + 0.1) * (v + 0.1)) / 0.08 < 1.0;
                body || head
            }
            ObjectKind::Komondor => {
                // Shaggy disk: radius modulated by angular wobble.
                let theta = v.atan2(u);
                let rim = 0.75 + 0.18 * (theta * 7.0 + wobble * 6.0).sin();
                r2.sqrt() < rim
            }
            ObjectKind::Pinwheel => {
                // Four sail triangles around the hub.
                let theta = v.atan2(u);
                let r = r2.sqrt();
                let sector = ((theta / std::f32::consts::FRAC_PI_2).floor() as i32).rem_euclid(4);
                let local = theta - (sector as f32 + 0.5) * std::f32::consts::FRAC_PI_2;
                let hub = r < 0.15;
                hub || (r < 0.95 && local > -0.55 && local < 0.05 && r > 0.1)
            }
            ObjectKind::Scorpion => {
                // Crescent body with a stinger dot.
                let outer = r2 < 0.85;
                let inner = (u - 0.25) * (u - 0.25) + v * v < 0.42;
                let sting = (u - 0.55) * (u - 0.55) + (v + 0.65) * (v + 0.65) < 0.035;
                (outer && !inner) || sting
            }
            ObjectKind::Wallet => {
                // Rounded rectangle with a horizontal slot.
                let inside = u.abs() < 0.85 && v.abs() < 0.55 && r2 < 1.1;
                let slot = v.abs() < 0.06 && u.abs() < 0.7;
                inside && !slot
            }
        }
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Knobs controlling scene hardness. Defaults match the main experiments.
#[derive(Debug, Clone, Copy)]
pub struct SceneParams {
    /// Square image side in pixels.
    pub size: usize,
    /// Minimum object scale as a fraction of the image side.
    pub min_scale: f32,
    /// Maximum object scale as a fraction of the image side.
    pub max_scale: f32,
    /// Minimum object/background contrast in [0, 1].
    pub min_contrast: f32,
    /// Maximum count of distractor shapes.
    pub max_clutter: usize,
    /// Maximum Gaussian pixel-noise sigma.
    pub max_noise: f32,
}

impl Default for SceneParams {
    fn default() -> Self {
        SceneParams {
            size: 224,
            min_scale: 0.12,
            max_scale: 0.42,
            min_contrast: 0.25,
            max_clutter: 7,
            max_noise: 0.05,
        }
    }
}

impl SceneParams {
    /// A small-image parameter set for fast tests and the real-CNN path.
    pub fn small(size: usize) -> SceneParams {
        SceneParams {
            size,
            ..SceneParams::default()
        }
    }

    /// An easier small-image set: large, high-contrast objects with little
    /// clutter. Used where tiny CNNs must learn from tiny datasets in
    /// seconds (the scaled-down real-training path).
    pub fn easy(size: usize) -> SceneParams {
        SceneParams {
            size,
            min_scale: 0.40,
            max_scale: 0.75,
            min_contrast: 0.55,
            max_clutter: 2,
            max_noise: 0.02,
        }
    }
}

/// Deterministic scene renderer for one object kind.
#[derive(Debug, Clone)]
pub struct SceneRenderer {
    kind: ObjectKind,
    params: SceneParams,
    seed: u64,
}

impl SceneRenderer {
    /// Create a renderer; `seed` controls every random choice.
    pub fn new(kind: ObjectKind, params: SceneParams, seed: u64) -> SceneRenderer {
        SceneRenderer { kind, params, seed }
    }

    /// The kind this renderer plants.
    pub fn kind(&self) -> ObjectKind {
        self.kind
    }

    /// Render scene `id`. Returns the RGB image and its difficulty in [0, 1].
    ///
    /// The same `(seed, id, label)` always produces the same scene.
    pub fn render(&self, id: u64, label: bool) -> (Image, f32) {
        let stream = id.wrapping_mul(2).wrapping_add(label as u64);
        let mut rng = DetRng::from_coords(self.seed ^ ((self.kind.index() as u64) << 48), stream);
        let s = self.params.size;
        let mut img = self.background(&mut rng, s);

        // Clutter: distractor shapes that are never the target glyph.
        let clutter_n = rng.index(self.params.max_clutter + 1);
        for _ in 0..clutter_n {
            self.draw_distractor(&mut rng, &mut img);
        }

        // Target object.
        let (scale_frac, contrast) = if label {
            let scale =
                rng.uniform_in(self.params.min_scale as f64, self.params.max_scale as f64) as f32;
            let contrast = rng.uniform_in(self.params.min_contrast as f64, 1.0) as f32;
            self.draw_target(&mut rng, &mut img, scale, contrast);
            (scale, contrast)
        } else {
            // Negatives draw from the same knob distributions so difficulty
            // is comparable across classes.
            let scale =
                rng.uniform_in(self.params.min_scale as f64, self.params.max_scale as f64) as f32;
            let contrast = rng.uniform_in(self.params.min_contrast as f64, 1.0) as f32;
            (scale, contrast)
        };

        // Pixel noise.
        let sigma = rng.uniform_in(0.005, self.params.max_noise as f64) as f32;
        for v in img.data_mut() {
            *v = (*v + sigma * rng.standard_normal() as f32).clamp(0.0, 1.0);
        }

        let difficulty = self.difficulty(scale_frac, contrast, clutter_n, sigma);
        (img, difficulty)
    }

    /// Difficulty heuristic in [0, 1]; larger is harder.
    fn difficulty(&self, scale: f32, contrast: f32, clutter: usize, sigma: f32) -> f32 {
        let p = &self.params;
        let scale_term = 1.0 - (scale - p.min_scale) / (p.max_scale - p.min_scale).max(1e-6);
        let contrast_term = 1.0 - (contrast - p.min_contrast) / (1.0 - p.min_contrast).max(1e-6);
        let clutter_term = clutter as f32 / p.max_clutter.max(1) as f32;
        let noise_term = sigma / p.max_noise.max(1e-6);
        (0.40 * scale_term + 0.30 * contrast_term + 0.15 * clutter_term + 0.15 * noise_term)
            .clamp(0.0, 1.0)
    }

    fn background(&self, rng: &mut DetRng, s: usize) -> Image {
        // Low-frequency cosine field per channel over a base tone.
        let base = [
            rng.uniform_in(0.25, 0.55) as f32,
            rng.uniform_in(0.25, 0.55) as f32,
            rng.uniform_in(0.25, 0.55) as f32,
        ];
        let mut waves = [[0.0f32; 4]; 3];
        for wave in &mut waves {
            *wave = [
                rng.uniform_in(0.5, 3.0) as f32,
                rng.uniform_in(0.5, 3.0) as f32,
                rng.uniform_in(0.0, std::f64::consts::TAU) as f32,
                rng.uniform_in(0.03, 0.10) as f32,
            ];
        }
        Image::from_fn(s, s, ColorMode::Rgb, |c, y, x| {
            let [fx, fy, phase, amp] = waves[c];
            let u = x as f32 / s as f32;
            let v = y as f32 / s as f32;
            (base[c]
                + amp
                    * (fx * u * std::f32::consts::TAU + fy * v * std::f32::consts::TAU + phase)
                        .cos())
            .clamp(0.0, 1.0)
        })
        .expect("background dims valid")
    }

    fn draw_distractor(&self, rng: &mut DetRng, img: &mut Image) {
        let s = img.width();
        let cx = rng.uniform_in(0.1, 0.9) as f32 * s as f32;
        let cy = rng.uniform_in(0.1, 0.9) as f32 * s as f32;
        let half = (rng.uniform_in(0.02, 0.10) as f32 * s as f32).max(1.0);
        let color = [
            rng.uniform_in(0.1, 0.9) as f32,
            rng.uniform_in(0.1, 0.9) as f32,
            rng.uniform_in(0.1, 0.9) as f32,
        ];
        let alpha = rng.uniform_in(0.3, 0.8) as f32;
        let round = rng.bernoulli(0.5);
        let x0 = (cx - half).max(0.0) as usize;
        let x1 = ((cx + half) as usize).min(s - 1);
        let y0 = (cy - half).max(0.0) as usize;
        let y1 = ((cy + half) as usize).min(s - 1);
        for y in y0..=y1 {
            for x in x0..=x1 {
                let du = x as f32 - cx;
                let dv = y as f32 - cy;
                let inside = if round {
                    du * du + dv * dv < half * half
                } else {
                    du.abs() < half && dv.abs() < half
                };
                if inside {
                    for (c, &tint) in color.iter().enumerate() {
                        let old = img.get(c, y, x);
                        img.set(c, y, x, old * (1.0 - alpha) + tint * alpha);
                    }
                }
            }
        }
    }

    fn draw_target(&self, rng: &mut DetRng, img: &mut Image, scale_frac: f32, contrast: f32) {
        let s = img.width();
        let half = (scale_frac * s as f32 / 2.0).max(2.0);
        let margin = half + 1.0;
        let cx = rng.uniform_in(margin as f64, (s as f32 - margin) as f64) as f32;
        let cy = rng.uniform_in(margin as f64, (s as f32 - margin) as f64) as f32;
        let theta = rng.uniform_in(0.0, std::f64::consts::TAU) as f32;
        let wobble = rng.uniform_in(0.0, 1.0) as f32;
        let (sin_t, cos_t) = theta.sin_cos();
        let base_color = self.kind.color();
        // Per-instance hue jitter keeps the class from being a constant color.
        let jitter = [
            rng.normal(0.0, 0.04) as f32,
            rng.normal(0.0, 0.04) as f32,
            rng.normal(0.0, 0.04) as f32,
        ];
        let x0 = (cx - half).max(0.0) as usize;
        let x1 = ((cx + half) as usize).min(s - 1);
        let y0 = (cy - half).max(0.0) as usize;
        let y1 = ((cy + half) as usize).min(s - 1);
        for y in y0..=y1 {
            for x in x0..=x1 {
                // Rotate into object-local coordinates.
                let du = (x as f32 - cx) / half;
                let dv = (y as f32 - cy) / half;
                let u = du * cos_t + dv * sin_t;
                let v = -du * sin_t + dv * cos_t;
                if self.kind.contains(u, v, wobble) {
                    for c in 0..3 {
                        let old = img.get(c, y, x);
                        let target = (base_color[c] + jitter[c]).clamp(0.0, 1.0);
                        img.set(c, y, x, old * (1.0 - contrast) + target * contrast);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_kinds_with_unique_names_and_ids() {
        let names: std::collections::HashSet<_> =
            ObjectKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 10);
        let ids: std::collections::HashSet<_> =
            ObjectKind::ALL.iter().map(|k| k.imagenet_id()).collect();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn name_roundtrip() {
        for k in ObjectKind::ALL {
            assert_eq!(ObjectKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ObjectKind::from_name("zebra"), None);
    }

    #[test]
    fn render_is_deterministic() {
        let r = SceneRenderer::new(ObjectKind::Fence, SceneParams::small(48), 7);
        let (a, da) = r.render(3, true);
        let (b, db) = r.render(3, true);
        assert_eq!(a, b);
        assert_eq!(da, db);
    }

    #[test]
    fn positive_and_negative_differ() {
        let r = SceneRenderer::new(ObjectKind::Pinwheel, SceneParams::small(48), 9);
        let (pos, _) = r.render(1, true);
        let (neg, _) = r.render(1, false);
        assert!(pos.mean_abs_diff(&neg).unwrap() > 0.0);
    }

    #[test]
    fn positives_contain_visible_object_signal() {
        // Averaged over scenes, positives should differ from negatives more
        // than negatives differ among themselves.
        let r = SceneRenderer::new(ObjectKind::Komondor, SceneParams::small(64), 11);
        let mut cross = 0.0;
        let n = 10;
        for id in 0..n {
            let (pos, _) = r.render(id, true);
            let (neg, _) = r.render(id, false);
            cross += pos.mean_abs_diff(&neg).unwrap();
        }
        assert!(cross / n as f32 > 0.002, "object signal too weak: {cross}");
    }

    #[test]
    fn difficulty_in_unit_interval() {
        for kind in ObjectKind::ALL {
            let r = SceneRenderer::new(kind, SceneParams::small(32), 5);
            for id in 0..20 {
                let (_, d) = r.render(id, id % 2 == 0);
                assert!((0.0..=1.0).contains(&d), "{kind}: difficulty {d}");
            }
        }
    }

    #[test]
    fn pixels_stay_in_unit_range() {
        let r = SceneRenderer::new(ObjectKind::Scorpion, SceneParams::small(40), 13);
        let (img, _) = r.render(0, true);
        for &v in img.data() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn glyphs_are_nonempty_and_distinct() {
        // Rasterize each glyph mask at 64x64 and check it covers a sensible
        // area and differs from every other glyph.
        let mut masks: Vec<(ObjectKind, Vec<bool>)> = Vec::new();
        for kind in ObjectKind::ALL {
            let mut mask = vec![false; 64 * 64];
            let mut count = 0usize;
            for y in 0..64 {
                for x in 0..64 {
                    let u = (x as f32 / 63.0) * 2.0 - 1.0;
                    let v = (y as f32 / 63.0) * 2.0 - 1.0;
                    if kind.contains(u, v, 0.3) {
                        mask[y * 64 + x] = true;
                        count += 1;
                    }
                }
            }
            let frac = count as f32 / (64.0 * 64.0);
            assert!(
                (0.05..0.95).contains(&frac),
                "{kind}: coverage {frac} out of range"
            );
            masks.push((kind, mask));
        }
        for i in 0..masks.len() {
            for j in (i + 1)..masks.len() {
                let diff = masks[i]
                    .1
                    .iter()
                    .zip(&masks[j].1)
                    .filter(|(a, b)| a != b)
                    .count();
                assert!(
                    diff > 64,
                    "glyphs {} and {} nearly identical ({diff} px differ)",
                    masks[i].0,
                    masks[j].0
                );
            }
        }
    }

    #[test]
    fn different_ids_produce_different_scenes() {
        let r = SceneRenderer::new(ObjectKind::Wallet, SceneParams::small(32), 17);
        let (a, _) = r.render(0, true);
        let (b, _) = r.render(1, true);
        assert!(a.mean_abs_diff(&b).unwrap() > 0.0);
    }
}

//! Physical representations: the (resolution, color mode) pairs that define
//! TAHOMA's input transformation space.
//!
//! A [`Representation`] is the unit the whole system reasons about: models
//! declare the representation they consume, the cost model prices producing
//! or loading one, and the cascade evaluator charges each representation
//! *once per image* even when several cascade levels share it (§VII-A:
//! "Data handling costs ... only occur once for a given input").
//!
//! Representations also form the derivation *lattice* the transcode engine
//! plans over (see [`crate::engine`]): when several of them are
//! materialized from one frame, single-channel planes are borrowed from the
//! source and the luma plane is computed once and shared, so
//! [`Representation::apply`] — which routes through the thread-local engine
//! — is only the single-target entry point of that machinery.

use crate::color::ColorMode;
use crate::engine::with_local_engine;
use crate::error::ImageryError;
use crate::image::Image;
use crate::transform::{convert_mode_reference, resize_bilinear_reference};
use std::fmt;

/// The full-resolution source size used throughout the paper's experiments.
pub const FULL_SIZE: usize = 224;

/// The paper's four resolution settings (§VII-A).
pub const PAPER_SIZES: [usize; 4] = [30, 60, 120, 224];

/// A physical input representation: square resolution plus color mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Representation {
    /// Side length in pixels (images are square, as in the paper).
    pub size: usize,
    /// Color depth / channel selection.
    pub mode: ColorMode,
}

impl Representation {
    /// Construct a representation.
    pub const fn new(size: usize, mode: ColorMode) -> Representation {
        Representation { size, mode }
    }

    /// The full-resolution, full-color source representation.
    pub const fn full() -> Representation {
        Representation::new(FULL_SIZE, ColorMode::Rgb)
    }

    /// All 20 representations used in the paper (4 sizes x 5 color modes).
    pub fn paper_set() -> Vec<Representation> {
        let mut out = Vec::with_capacity(PAPER_SIZES.len() * ColorMode::ALL.len());
        for &size in &PAPER_SIZES {
            for &mode in &ColorMode::ALL {
                out.push(Representation::new(size, mode));
            }
        }
        out
    }

    /// Number of scalar input values this representation feeds to a model.
    #[inline]
    pub fn value_count(&self) -> usize {
        self.size * self.size * self.mode.channels()
    }

    /// Bytes occupied when materialized with one byte per sample (the layout
    /// the ONGOING scenario stores on SSD).
    #[inline]
    pub fn stored_bytes(&self) -> usize {
        self.value_count()
    }

    /// Whether producing this representation from a full RGB source is a
    /// no-op (no resize, no color change).
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.size == FULL_SIZE && self.mode == ColorMode::Rgb
    }

    /// Materialize this representation from a full-resolution RGB source.
    ///
    /// Pipeline: color reduction first (cheaper: the resize then reads a
    /// single plane), then bilinear resize. Both operations are linear, so
    /// the result equals the resize-then-reduce order. Runs on the
    /// thread-local [`crate::engine::TranscodeEngine`] (SIMD kernels,
    /// cached resize tables, no intermediate reduced image); bitwise
    /// identical to [`apply_reference`].
    pub fn apply(&self, full: &Image) -> Result<Image, ImageryError> {
        with_local_engine(|e| e.apply(full, *self))
    }

    /// Stable identifier, e.g. `"60x60-gray"`.
    pub fn tag(&self) -> String {
        format!("{0}x{0}-{1}", self.size, self.mode.tag())
    }

    /// Parse a tag produced by [`Representation::tag`].
    pub fn from_tag(tag: &str) -> Option<Representation> {
        let (dims, mode) = tag.split_once('-')?;
        let (w, h) = dims.split_once('x')?;
        if w != h {
            return None;
        }
        Some(Representation::new(
            w.parse().ok()?,
            ColorMode::from_tag(mode)?,
        ))
    }
}

/// Scalar reference for [`Representation::apply`] — the seed pipeline
/// (allocating color reduction, then the direct per-pixel bilinear loop).
/// Property tests pin the engine against this bitwise; the
/// `repr_transform` bench uses it as the baseline.
pub fn apply_reference(full: &Image, rep: Representation) -> Result<Image, ImageryError> {
    if full.mode() != ColorMode::Rgb {
        return Err(ImageryError::NotRgbSource);
    }
    let reduced = convert_mode_reference(full, rep.mode)?;
    if reduced.width() == rep.size && reduced.height() == rep.size {
        return Ok(reduced);
    }
    resize_bilinear_reference(&reduced, rep.size, rep.size)
}

impl fmt::Display for Representation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_has_twenty_entries() {
        let set = Representation::paper_set();
        assert_eq!(set.len(), 20);
        let unique: std::collections::HashSet<_> = set.iter().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn value_counts_match_paper() {
        // §VII-E: 30x30 RGB = 2,700 values; 224x224 RGB = 150,528 values.
        assert_eq!(Representation::new(30, ColorMode::Rgb).value_count(), 2_700);
        assert_eq!(
            Representation::new(224, ColorMode::Rgb).value_count(),
            150_528
        );
        assert_eq!(Representation::new(30, ColorMode::Gray).value_count(), 900);
    }

    #[test]
    fn apply_produces_requested_shape() {
        let full = Image::from_fn(FULL_SIZE, FULL_SIZE, ColorMode::Rgb, |c, y, x| {
            ((c + y + x) % 7) as f32 / 7.0
        })
        .unwrap();
        for rep in Representation::paper_set() {
            let out = rep.apply(&full).unwrap();
            assert_eq!(out.width(), rep.size);
            assert_eq!(out.height(), rep.size);
            assert_eq!(out.mode(), rep.mode);
        }
    }

    #[test]
    fn apply_identity_representation() {
        let full = Image::zeros(FULL_SIZE, FULL_SIZE, ColorMode::Rgb).unwrap();
        let rep = Representation::full();
        assert!(rep.is_identity());
        let out = rep.apply(&full).unwrap();
        assert_eq!(out.value_count(), full.value_count());
    }

    #[test]
    fn apply_requires_rgb_source() {
        let gray = Image::zeros(8, 8, ColorMode::Gray).unwrap();
        let rep = Representation::new(4, ColorMode::Gray);
        assert!(matches!(rep.apply(&gray), Err(ImageryError::NotRgbSource)));
    }

    #[test]
    fn reduce_then_resize_equals_resize_then_reduce() {
        use crate::transform::{convert_mode, resize_bilinear};
        let full = Image::from_fn(32, 32, ColorMode::Rgb, |c, y, x| {
            ((c * 31 + y * 7 + x * 3) % 11) as f32 / 11.0
        })
        .unwrap();
        let a = {
            let reduced = convert_mode(&full, ColorMode::Gray).unwrap();
            resize_bilinear(&reduced, 8, 8).unwrap()
        };
        let b = {
            let resized = resize_bilinear(&full, 8, 8).unwrap();
            convert_mode(&resized, ColorMode::Gray)
                .unwrap()
                .into_owned()
        };
        assert!(a.mean_abs_diff(&b).unwrap() < 1e-5);
    }

    #[test]
    fn apply_matches_reference_bitwise() {
        let full = Image::from_fn(FULL_SIZE, FULL_SIZE, ColorMode::Rgb, |c, y, x| {
            ((c * 31 + y * 7 + x * 3) % 11) as f32 / 11.0
        })
        .unwrap();
        for rep in Representation::paper_set() {
            let fast = rep.apply(&full).unwrap();
            let slow = apply_reference(&full, rep).unwrap();
            assert_eq!(fast.data(), slow.data(), "{rep}");
        }
    }

    #[test]
    fn tag_roundtrip() {
        for rep in Representation::paper_set() {
            assert_eq!(Representation::from_tag(&rep.tag()), Some(rep));
        }
        assert_eq!(Representation::from_tag("bogus"), None);
        assert_eq!(Representation::from_tag("30x60-rgb"), None);
    }
}

//! Image codecs: the on-disk formats behind the deployment scenarios.
//!
//! §VI of the paper argues that load and decode costs are a first-class part
//! of query cost. To keep those costs honest in this reproduction, the
//! storage scenarios are backed by real encoders/decoders with real byte
//! counts:
//!
//! * [`RawCodec`] — one byte per sample, planar (`TAH1`). This is the layout
//!   the ONGOING scenario stores pre-transformed representations in: decode
//!   is a straight dequantization pass.
//! * [`PpmCodec`] — binary PPM (P6) / PGM (P5), for interoperability with
//!   external tools when dumping synthetic corpora.
//! * [`BlockCodec`] — a lossy 8x8 block codec (`TAHB`): per-block mean plus
//!   quality-quantized residuals with zero-run-length coding. It stands in
//!   for JPEG in the ARCHIVE scenario: compressed full-frame storage whose
//!   decode requires real per-pixel work and whose size depends on image
//!   complexity.

use crate::color::ColorMode;
use crate::error::ImageryError;
use crate::image::Image;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A bidirectional image codec.
pub trait Codec {
    /// Codec name for diagnostics and cost-model labels.
    fn name(&self) -> &'static str;
    /// Encode an image into bytes.
    fn encode(&self, img: &Image) -> Bytes;
    /// Decode bytes produced by [`Codec::encode`].
    fn decode(&self, bytes: &[u8]) -> Result<Image, ImageryError>;
}

#[inline]
fn quantize(v: f32) -> u8 {
    (v.clamp(0.0, 1.0) * 255.0).round() as u8
}

#[inline]
fn dequantize(b: u8) -> f32 {
    b as f32 / 255.0
}

/// Quantize-roundtrip every sample through the storage quantizer, in
/// place: afterwards the image is exactly what encoding then decoding it
/// produces (the u8 grid is a fixed point: `quantize(dequantize(b)) == b`).
/// Ingest normalizes frames through this *before* deriving
/// representations, so a representation re-derived from the decoded
/// stored source is bitwise identical to the stored record — the
/// quarantine degradation path's exactness guarantee (RELIABILITY.md).
pub fn quantize_roundtrip(img: &mut Image) {
    for v in img.data_mut() {
        *v = dequantize(quantize(*v));
    }
}

pub(crate) fn mode_code(mode: ColorMode) -> u8 {
    match mode {
        ColorMode::Rgb => 0,
        ColorMode::Red => 1,
        ColorMode::Green => 2,
        ColorMode::Blue => 3,
        ColorMode::Gray => 4,
    }
}

pub(crate) fn mode_from_code(code: u8) -> Result<ColorMode, ImageryError> {
    Ok(match code {
        0 => ColorMode::Rgb,
        1 => ColorMode::Red,
        2 => ColorMode::Green,
        3 => ColorMode::Blue,
        4 => ColorMode::Gray,
        other => return Err(ImageryError::Decode(format!("unknown mode code {other}"))),
    })
}

/// Uncompressed planar u8 codec (`TAH1`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RawCodec;

const RAW_MAGIC: &[u8; 4] = b"TAH1";

/// Byte length of the `TAH1` header (magic + width + height + mode). A raw
/// blob for representation `r` is exactly `RAW_HEADER_LEN +
/// r.value_count()` bytes; the storage-budget planner in `tahoma-costmodel`
/// prices stored bytes with this.
pub const RAW_HEADER_LEN: usize = 13;

impl Codec for RawCodec {
    fn name(&self) -> &'static str {
        "raw"
    }

    fn encode(&self, img: &Image) -> Bytes {
        let mut buf = BytesMut::with_capacity(RAW_HEADER_LEN + img.value_count());
        buf.put_slice(RAW_MAGIC);
        buf.put_u32_le(img.width() as u32);
        buf.put_u32_le(img.height() as u32);
        buf.put_u8(mode_code(img.mode()));
        for &v in img.data() {
            buf.put_u8(quantize(v));
        }
        buf.freeze()
    }

    fn decode(&self, bytes: &[u8]) -> Result<Image, ImageryError> {
        self.decode_into(bytes, Vec::new())
    }
}

impl RawCodec {
    /// Decode into a caller-provided buffer (typically recycled from a
    /// [`crate::engine::TranscodeEngine`] pool), so steady-state decoding
    /// of same-shaped blobs performs no large allocations. `data` is
    /// resized to the payload length and fully overwritten; its previous
    /// contents are irrelevant. The returned [`Image`] owns the buffer —
    /// hand it back to the pool when done to close the loop.
    pub fn decode_into(&self, bytes: &[u8], mut data: Vec<f32>) -> Result<Image, ImageryError> {
        let mut buf = bytes;
        if buf.len() < RAW_HEADER_LEN || &buf[..4] != RAW_MAGIC {
            return Err(ImageryError::Decode("bad TAH1 header".into()));
        }
        buf.advance(4);
        let w = buf.get_u32_le() as usize;
        let h = buf.get_u32_le() as usize;
        let mode = mode_from_code(buf.get_u8())?;
        let expected = w * h * mode.channels();
        if buf.remaining() != expected {
            return Err(ImageryError::Decode(format!(
                "TAH1 payload length {} != expected {expected}",
                buf.remaining()
            )));
        }
        data.clear();
        data.extend(buf.chunk()[..expected].iter().map(|&b| dequantize(b)));
        Image::from_planar(w, h, mode, data)
    }
}

/// Binary PPM (P6 for RGB, P5 for single-channel modes).
///
/// Single-channel modes decode as [`ColorMode::Gray`] — PGM does not carry
/// which primary a plane came from.
#[derive(Debug, Clone, Copy, Default)]
pub struct PpmCodec;

impl Codec for PpmCodec {
    fn name(&self) -> &'static str {
        "ppm"
    }

    fn encode(&self, img: &Image) -> Bytes {
        let rgb = img.mode() == ColorMode::Rgb;
        let header = format!(
            "{}\n{} {}\n255\n",
            if rgb { "P6" } else { "P5" },
            img.width(),
            img.height()
        );
        let mut buf = BytesMut::with_capacity(header.len() + img.value_count());
        buf.put_slice(header.as_bytes());
        // PPM is pixel-interleaved; our layout is planar.
        let (w, h) = (img.width(), img.height());
        for y in 0..h {
            for x in 0..w {
                for c in 0..img.channels() {
                    buf.put_u8(quantize(img.get(c, y, x)));
                }
            }
        }
        buf.freeze()
    }

    fn decode(&self, bytes: &[u8]) -> Result<Image, ImageryError> {
        let header_err = || ImageryError::Decode("bad PPM header".into());
        // Parse "P6\nW H\n255\n" allowing arbitrary whitespace between tokens.
        let mut pos = 0usize;
        let mut next_token = |bytes: &[u8]| -> Result<String, ImageryError> {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            let start = pos;
            while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if start == pos {
                return Err(header_err());
            }
            Ok(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
        };
        let magic = next_token(bytes)?;
        let channels = match magic.as_str() {
            "P6" => 3,
            "P5" => 1,
            _ => return Err(header_err()),
        };
        let w: usize = next_token(bytes)?.parse().map_err(|_| header_err())?;
        let h: usize = next_token(bytes)?.parse().map_err(|_| header_err())?;
        let maxval: usize = next_token(bytes)?.parse().map_err(|_| header_err())?;
        if maxval != 255 {
            return Err(ImageryError::Decode(format!("unsupported maxval {maxval}")));
        }
        // Exactly one whitespace byte separates the header from pixel data.
        pos += 1;
        let expected = w * h * channels;
        if bytes.len() < pos || bytes.len() - pos < expected {
            return Err(ImageryError::Decode("truncated PPM payload".into()));
        }
        let payload = &bytes[pos..pos + expected];
        let mode = if channels == 3 {
            ColorMode::Rgb
        } else {
            ColorMode::Gray
        };
        let mut img = Image::zeros(w, h, mode)?;
        let mut i = 0;
        for y in 0..h {
            for x in 0..w {
                for c in 0..channels {
                    img.set(c, y, x, dequantize(payload[i]));
                    i += 1;
                }
            }
        }
        Ok(img)
    }
}

/// Lossy 8x8 block codec (`TAHB`) standing in for JPEG.
///
/// Per block: the quantized block mean, then residuals quantized by a step
/// derived from `quality` (1..=100), with runs of zero residuals run-length
/// coded. Smooth synthetic scenes compress to a fraction of raw size, and
/// decoding does real per-pixel arithmetic — both properties the ARCHIVE
/// cost scenario depends on.
#[derive(Debug, Clone, Copy)]
pub struct BlockCodec {
    /// Quality 1..=100; higher keeps more residual detail (larger files).
    pub quality: u8,
}

const BLOCK_MAGIC: &[u8; 4] = b"TAHB";
const BLOCK: usize = 8;

impl BlockCodec {
    /// Construct with a clamped quality setting.
    pub fn new(quality: u8) -> BlockCodec {
        BlockCodec {
            quality: quality.clamp(1, 100),
        }
    }

    /// Quantization step in sample units (0..=255 scale).
    fn step(quality: u8) -> f32 {
        // quality 100 -> step 2 (near-lossless); quality 1 -> step 64.
        let q = quality.clamp(1, 100) as f32;
        2.0 + (100.0 - q) * 62.0 / 99.0
    }
}

impl Default for BlockCodec {
    fn default() -> Self {
        BlockCodec::new(75)
    }
}

impl Codec for BlockCodec {
    fn name(&self) -> &'static str {
        "block"
    }

    fn encode(&self, img: &Image) -> Bytes {
        let step = Self::step(self.quality);
        let mut buf = BytesMut::with_capacity(img.value_count() / 3 + 64);
        buf.put_slice(BLOCK_MAGIC);
        buf.put_u32_le(img.width() as u32);
        buf.put_u32_le(img.height() as u32);
        buf.put_u8(mode_code(img.mode()));
        buf.put_u8(self.quality);
        let (w, h) = (img.width(), img.height());
        for c in 0..img.channels() {
            let plane = img.plane(c);
            for by in (0..h).step_by(BLOCK) {
                for bx in (0..w).step_by(BLOCK) {
                    let bh = BLOCK.min(h - by);
                    let bw = BLOCK.min(w - bx);
                    // Block mean.
                    let mut sum = 0.0f32;
                    for y in 0..bh {
                        for x in 0..bw {
                            sum += plane[(by + y) * w + bx + x];
                        }
                    }
                    let mean = sum / (bh * bw) as f32;
                    let mean_q = quantize(mean);
                    buf.put_u8(mean_q);
                    // Residuals, zero-run-length coded.
                    // Token stream: 0x00 <run_len:u8> for zero runs,
                    // else a nonzero i8 residual written as u8 (offset 128).
                    let mut zero_run = 0u8;
                    let flush_zeros = |buf: &mut BytesMut, zero_run: &mut u8| {
                        while *zero_run > 0 {
                            let chunk = *zero_run;
                            buf.put_u8(0);
                            buf.put_u8(chunk);
                            *zero_run -= chunk;
                        }
                    };
                    for y in 0..bh {
                        for x in 0..bw {
                            let v = plane[(by + y) * w + bx + x];
                            let r = ((v - dequantize(mean_q)) * 255.0 / step).round();
                            let r = r.clamp(-127.0, 127.0) as i8;
                            if r == 0 {
                                if zero_run == 255 {
                                    flush_zeros(&mut buf, &mut zero_run);
                                }
                                zero_run += 1;
                            } else {
                                flush_zeros(&mut buf, &mut zero_run);
                                buf.put_u8((r as i16 + 128) as u8);
                            }
                        }
                    }
                    flush_zeros(&mut buf, &mut zero_run);
                }
            }
        }
        buf.freeze()
    }

    fn decode(&self, bytes: &[u8]) -> Result<Image, ImageryError> {
        let mut buf = bytes;
        if buf.len() < 14 || &buf[..4] != BLOCK_MAGIC {
            return Err(ImageryError::Decode("bad TAHB header".into()));
        }
        buf.advance(4);
        let w = buf.get_u32_le() as usize;
        let h = buf.get_u32_le() as usize;
        let mode = mode_from_code(buf.get_u8())?;
        let quality = buf.get_u8();
        let step = Self::step(quality);
        let mut img = Image::zeros(w, h, mode)?;
        for c in 0..mode.channels() {
            for by in (0..h).step_by(BLOCK) {
                for bx in (0..w).step_by(BLOCK) {
                    let bh = BLOCK.min(h - by);
                    let bw = BLOCK.min(w - bx);
                    if !buf.has_remaining() {
                        return Err(ImageryError::Decode("truncated TAHB block".into()));
                    }
                    let mean = dequantize(buf.get_u8());
                    let total = bh * bw;
                    let mut filled = 0usize;
                    while filled < total {
                        if !buf.has_remaining() {
                            return Err(ImageryError::Decode("truncated TAHB residuals".into()));
                        }
                        let tok = buf.get_u8();
                        if tok == 0 {
                            if !buf.has_remaining() {
                                return Err(ImageryError::Decode("truncated zero run".into()));
                            }
                            let run = buf.get_u8() as usize;
                            if run == 0 || filled + run > total {
                                return Err(ImageryError::Decode("invalid zero run".into()));
                            }
                            for _ in 0..run {
                                let y = filled / bw;
                                let x = filled % bw;
                                img.set(c, by + y, bx + x, mean.clamp(0.0, 1.0));
                                filled += 1;
                            }
                        } else {
                            let r = tok as i16 - 128;
                            let v = mean + r as f32 * step / 255.0;
                            let y = filled / bw;
                            let x = filled % bw;
                            img.set(c, by + y, bx + x, v.clamp(0.0, 1.0));
                            filled += 1;
                        }
                    }
                }
            }
        }
        Ok(img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_mathx::DetRng;

    fn noisy_scene(w: usize, h: usize, mode: ColorMode, seed: u64) -> Image {
        let mut rng = DetRng::new(seed);
        Image::from_fn(w, h, mode, |c, y, x| {
            let base =
                0.4 + 0.2 * ((x as f32 / w as f32) + (y as f32 / h as f32)) + c as f32 * 0.05;
            (base + rng.normal(0.0, 0.02) as f32).clamp(0.0, 1.0)
        })
        .unwrap()
    }

    #[test]
    fn raw_roundtrip_is_quantization_exact() {
        let img = noisy_scene(17, 11, ColorMode::Rgb, 1);
        let codec = RawCodec;
        let out = codec.decode(&codec.encode(&img)).unwrap();
        assert_eq!(out.width(), 17);
        assert_eq!(out.mode(), ColorMode::Rgb);
        // error bounded by quantization half-step
        assert!(img.mean_abs_diff(&out).unwrap() < 0.5 / 255.0 + 1e-6);
    }

    #[test]
    fn raw_size_is_header_plus_samples() {
        let img = Image::zeros(10, 10, ColorMode::Gray).unwrap();
        assert_eq!(RawCodec.encode(&img).len(), 13 + 100);
    }

    #[test]
    fn raw_rejects_garbage() {
        assert!(RawCodec.decode(b"nope").is_err());
        assert!(RawCodec.decode(b"TAH1aaaaaaaaaaaaaa").is_err());
    }

    #[test]
    fn raw_rejects_truncated_payload() {
        let img = Image::zeros(4, 4, ColorMode::Gray).unwrap();
        let enc = RawCodec.encode(&img);
        assert!(RawCodec.decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn ppm_roundtrip_rgb() {
        let img = noisy_scene(9, 7, ColorMode::Rgb, 2);
        let out = PpmCodec.decode(&PpmCodec.encode(&img)).unwrap();
        assert_eq!(out.mode(), ColorMode::Rgb);
        assert!(img.mean_abs_diff(&out).unwrap() < 0.5 / 255.0 + 1e-6);
    }

    #[test]
    fn ppm_roundtrip_gray() {
        let img = noisy_scene(8, 8, ColorMode::Gray, 3);
        let out = PpmCodec.decode(&PpmCodec.encode(&img)).unwrap();
        assert_eq!(out.mode(), ColorMode::Gray);
        assert!(img.mean_abs_diff(&out).unwrap() < 0.5 / 255.0 + 1e-6);
    }

    #[test]
    fn ppm_header_is_ascii() {
        let img = Image::zeros(3, 2, ColorMode::Rgb).unwrap();
        let enc = PpmCodec.encode(&img);
        assert!(enc.starts_with(b"P6\n3 2\n255\n"));
    }

    #[test]
    fn ppm_rejects_bad_magic() {
        assert!(PpmCodec.decode(b"P9\n1 1\n255\nxxx").is_err());
    }

    #[test]
    fn block_roundtrip_error_bounded_by_step() {
        let img = noisy_scene(32, 32, ColorMode::Rgb, 4);
        for quality in [25u8, 50, 75, 95] {
            let codec = BlockCodec::new(quality);
            let out = codec.decode(&codec.encode(&img)).unwrap();
            let bound = BlockCodec::step(quality) / 255.0 + 0.5 / 255.0 + 1e-5;
            let mad = img.mean_abs_diff(&out).unwrap();
            assert!(mad < bound, "q={quality}: mad {mad} >= bound {bound}");
        }
    }

    #[test]
    fn block_compresses_smooth_images() {
        // A smooth gradient should compress well below raw size.
        let img = Image::from_fn(64, 64, ColorMode::Rgb, |_, y, x| {
            0.5 + 0.001 * (x as f32) + 0.001 * (y as f32)
        })
        .unwrap();
        let raw = RawCodec.encode(&img).len();
        let block = BlockCodec::new(60).encode(&img).len();
        assert!(
            (block as f64) < raw as f64 * 0.5,
            "block {block} not < half of raw {raw}"
        );
    }

    #[test]
    fn block_quality_monotone_in_size() {
        let img = noisy_scene(64, 64, ColorMode::Rgb, 5);
        let low = BlockCodec::new(20).encode(&img).len();
        let high = BlockCodec::new(95).encode(&img).len();
        assert!(
            low < high,
            "low-q {low} should be smaller than high-q {high}"
        );
    }

    #[test]
    fn block_handles_non_multiple_of_eight() {
        let img = noisy_scene(13, 21, ColorMode::Gray, 6);
        let codec = BlockCodec::default();
        let out = codec.decode(&codec.encode(&img)).unwrap();
        assert_eq!(out.width(), 13);
        assert_eq!(out.height(), 21);
    }

    #[test]
    fn block_rejects_truncation() {
        let img = noisy_scene(16, 16, ColorMode::Gray, 7);
        let codec = BlockCodec::default();
        let enc = codec.encode(&img);
        for cut in [3usize, 13, enc.len() / 2] {
            assert!(codec.decode(&enc[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn codec_names() {
        assert_eq!(RawCodec.name(), "raw");
        assert_eq!(PpmCodec.name(), "ppm");
        assert_eq!(BlockCodec::default().name(), "block");
    }
}
